"""Shared pieces of the ART dump/restart drivers.

Snapshot file layout::

    [index: int64 x (1 + n_segments)]  -- n_segments, then record sizes
    [record 0][record 1]...            -- Fig. 8 records, back to back

The index is what makes the snapshot self-describing at the file level:
restart reads it, prefix-sums the record sizes, and knows every record's
offset without rebuilding any tree. Within a record, the structure arrays
(header, level sizes, flags) describe the value arrays that follow — so
restarting issues exactly the small-array read pattern the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.art.decomposition import ArtWorkload
from repro.art.ftt import FttTree
from repro.art.layout import FttRecordLayout, canonicalize, _HEADER_FIELDS
from repro.util.errors import BenchmarkError

INDEX_ENTRY = 8  # int64 per record size


def index_nbytes(n_segments: int) -> int:
    """Bytes of the snapshot's size-index block."""
    return INDEX_ENTRY * (1 + n_segments)


def record_offsets(sizes: list[int], n_segments: int) -> list[int]:
    """Absolute file offset of each record, given all record sizes."""
    if len(sizes) != n_segments:
        raise BenchmarkError("need one size per segment")
    offsets = []
    pos = index_nbytes(n_segments)
    for s in sizes:
        offsets.append(pos)
        pos += s
    return offsets


@dataclass
class LocalSegments:
    """One rank's share of the workload: built, canonical trees."""

    segments: list[int]
    trees: list[FttTree]
    sizes: list[int]  # serialized record bytes, same order as `segments`

    @property
    def total_bytes(self) -> int:
        """Serialized bytes of this rank's records."""
        return sum(self.sizes)


def build_local_segments(workload: ArtWorkload, rank: int, nranks: int) -> LocalSegments:
    """Build (and canonicalize) this rank's trees; the compute phase."""
    layout = FttRecordLayout()
    segments = workload.segments_of(rank, nranks)
    trees = [canonicalize(workload.build_tree(s)) for s in segments]
    sizes = [layout.record_nbytes(t) for t in trees]
    return LocalSegments(segments=segments, trees=trees, sizes=sizes)


def parse_index(blob: bytes, n_segments: int) -> list[int]:
    """Decode the index block into per-segment record sizes."""
    arr = np.frombuffer(blob, dtype=np.int64)
    if len(arr) != 1 + n_segments or int(arr[0]) != n_segments:
        raise BenchmarkError("corrupt snapshot index")
    return [int(x) for x in arr[1:]]


def header_prefix_nbytes() -> int:
    """Bytes of a record's descriptor header array."""
    return _HEADER_FIELDS * 4


def structure_nbytes(depth: int, total_cells: int) -> int:
    """Bytes of the level-size + flag arrays that follow the header."""
    return depth * 4 + total_cells
