"""The ART application driver: build trees, dump a snapshot, restart.

"In the experiments, we let the simulation first dump the intermediate
data and then restart from this snapshot" (Section V.C). The driver times
the dump and restart phases separately (write/read throughput for
Figs. 9/10) and verifies restart-vs-original tree equality.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.art.decomposition import ArtWorkload
from repro.art import io_mpiio, io_tcio
from repro.art.io_common import build_local_segments, index_nbytes
from repro.cluster.spec import ClusterSpec
from repro.simmpi import collectives
from repro.simmpi.mpi import MpiRunResult, RankEnv, run_mpi
from repro.sim.trace import TraceRecorder


class ArtIoMethod(enum.Enum):
    """Which I/O path the ART driver uses."""
    TCIO = "tcio"
    MPIIO = "mpiio"  # vanilla independent MPI-IO


@dataclass(frozen=True)
class ArtConfig:
    """One ART I/O experiment.

    ``per_array_cost`` charges the application's own marshalling work per
    record array (walking the FTT, computing offsets, staging the array) —
    serial per rank, so it divides across processes and produces the
    rising left side of the paper's strong-scaling throughput curves.
    """

    workload: ArtWorkload = field(default_factory=ArtWorkload)
    method: ArtIoMethod = ArtIoMethod.TCIO
    nprocs: int = 4
    file_name: str = "art_snapshot.dat"
    verify: bool = True
    per_array_cost: float = 0.0

    def with_method(self, method: ArtIoMethod) -> "ArtConfig":
        """A copy of the config with another I/O method."""
        return replace(self, method=method)


@dataclass
class ArtResult:
    """Timings and mechanism counters of one dump+restart run."""

    config: ArtConfig
    dump_seconds: float = 0.0
    restart_seconds: float = 0.0
    snapshot_bytes: int = 0
    dump_stats: dict = field(default_factory=dict)
    restart_stats: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    snapshot_contents: bytes = b""  # the on-disk snapshot (for assertions)

    @property
    def dump_throughput(self) -> float:
        """Snapshot bytes per dump second."""
        return self.snapshot_bytes / self.dump_seconds if self.dump_seconds else 0.0

    @property
    def restart_throughput(self) -> float:
        """Snapshot bytes per restart second."""
        return (
            self.snapshot_bytes / self.restart_seconds if self.restart_seconds else 0.0
        )


def dump_snapshot(env: RankEnv, cfg: ArtConfig):
    """Run the dump phase on one rank; returns (seconds, stats, local bytes)."""
    local = build_local_segments(cfg.workload, env.rank, env.size)
    yield from collectives.barrier(env.comm)
    t0 = env.now
    if cfg.method is ArtIoMethod.TCIO:
        stats = yield from io_tcio.dump(
            env, cfg.workload, local, cfg.file_name, per_array_cost=cfg.per_array_cost
        )
    else:
        stats = yield from io_mpiio.dump(
            env, cfg.workload, local, cfg.file_name, per_array_cost=cfg.per_array_cost
        )
    yield from collectives.barrier(env.comm)
    return env.now - t0, stats, local.total_bytes


def restart_snapshot(env: RankEnv, cfg: ArtConfig):
    """Run the restart phase on one rank; returns (seconds, stats)."""
    yield from collectives.barrier(env.comm)
    t0 = env.now
    if cfg.method is ArtIoMethod.TCIO:
        stats = yield from io_tcio.restart(
            env,
            cfg.workload,
            cfg.file_name,
            verify=cfg.verify,
            per_array_cost=cfg.per_array_cost,
        )
    else:
        stats = yield from io_mpiio.restart(
            env,
            cfg.workload,
            cfg.file_name,
            verify=cfg.verify,
            per_array_cost=cfg.per_array_cost,
        )
    yield from collectives.barrier(env.comm)
    return env.now - t0, stats


def run_art(
    cfg: ArtConfig,
    *,
    cluster: Optional[ClusterSpec] = None,
    trace: Optional[TraceRecorder] = None,
) -> ArtResult:
    """Dump then restart under one simulated job; returns both timings."""
    result = ArtResult(config=cfg)

    def main(env: RankEnv):
        dump_s, dump_stats, local_bytes = yield from dump_snapshot(env, cfg)
        restart_s, restart_stats = yield from restart_snapshot(env, cfg)
        return dump_s, restart_s, dump_stats, restart_stats, local_bytes

    run: MpiRunResult = run_mpi(cfg.nprocs, main, cluster=cluster, trace=trace)
    result.dump_seconds = max(r[0] for r in run.returns)
    result.restart_seconds = max(r[1] for r in run.returns)
    result.dump_stats = run.returns[0][2]
    result.restart_stats = run.returns[0][3]
    result.snapshot_bytes = index_nbytes(cfg.workload.n_segments) + sum(
        r[4] for r in run.returns
    )
    result.counters = run.trace.summary()
    result.snapshot_contents = run.pfs.lookup(cfg.file_name).contents()
    return result
