"""Workload decomposition — Table IV.

"We assume that the lengths of the segments assigned to each process
follows the normal distribution and use the following parameters to
generate 1024 random numbers to represent the lengths of these segments:
Normal, Mu=2048, Sigma=128, Seed=5. These segments are in turn assigned to
the processes in a round-robin fashion."

A *segment* here is one FTT's worth of root-cell work; its length is the
tree's target cell count. ``cell_scale`` shrinks targets for tractable
simulation (DESIGN.md's scaling rule) without changing the distribution's
shape or the round-robin assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.art.ftt import FttTree
from repro.util.errors import BenchmarkError
from repro.util.rng import seeded_rng


def segment_lengths(
    n_segments: int = 1024,
    mu: float = 2048.0,
    sigma: float = 128.0,
    seed: int = 5,
) -> np.ndarray:
    """Table IV's normal segment lengths (clipped to be positive)."""
    if n_segments < 1:
        raise BenchmarkError("need at least one segment")
    rng = np.random.default_rng(seed)
    lengths = rng.normal(mu, sigma, size=n_segments)
    return np.maximum(1.0, lengths)


@dataclass(frozen=True)
class ArtWorkload:
    """The full I/O workload: segments, their trees, and their owners."""

    n_segments: int = 1024
    mu: float = 2048.0
    sigma: float = 128.0
    seed: int = 5
    nvars: int = 2
    oct: int = 8
    cell_scale: int = 32  # divides target cell counts (laptop tractability)

    @cached_property
    def lengths(self) -> np.ndarray:
        """The Table IV normal segment lengths (cached)."""
        return segment_lengths(self.n_segments, self.mu, self.sigma, self.seed)

    def target_cells(self, segment: int) -> int:
        """Scaled tree size of one segment (>= 1 root cell)."""
        return max(1, int(self.lengths[segment] / self.cell_scale))

    def owner(self, segment: int, nranks: int) -> int:
        """Round-robin segment-to-process assignment."""
        if not (0 <= segment < self.n_segments):
            raise BenchmarkError(f"no segment {segment}")
        return segment % nranks

    def segments_of(self, rank: int, nranks: int) -> list[int]:
        """The segments assigned to *rank* (round-robin)."""
        return list(range(rank, self.n_segments, nranks))

    def build_tree(self, segment: int) -> FttTree:
        """The (deterministic) FTT of one segment.

        Any rank can rebuild any segment's tree bit-identically — the
        restart path uses this to verify what it read.
        """
        rng = seeded_rng(self.seed, "art-tree", segment)
        return FttTree.build_random(
            rng, self.nvars, self.target_cells(segment), oct=self.oct
        )
