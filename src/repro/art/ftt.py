"""Fully threaded trees (FTT): the dynamic cell hierarchy of ART.

Each tree starts from one root cell; a refined cell gains 8 children on
the next level (Khokhlov's FTT organizes them as octs with parent/child
threading). Trees are stored level-by-level: per level, per-cell variable
values, refinement flags, and parent links — everything the self-describing
file layout (Fig. 8) records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.util.errors import ReproError

#: children added per refinement (an oct) in real ART
OCT = 8


class FttError(ReproError):
    """Invalid FTT operation."""


@dataclass
class FttLevel:
    """One refinement level of a tree."""

    variables: np.ndarray  # (nvars, ncells) float64
    refined: np.ndarray  # (ncells,) uint8: 1 when the cell has children
    parent: np.ndarray  # (ncells,) int32: index into the previous level (-1 at root)

    @property
    def ncells(self) -> int:
        """Cells on this level."""
        return self.refined.shape[0]

    def copy(self) -> "FttLevel":
        """Deep copy of the level's arrays."""
        return FttLevel(self.variables.copy(), self.refined.copy(), self.parent.copy())


@dataclass
class FttTree:
    """One fully threaded tree rooted at a single root cell.

    ``oct`` is the refinement fan-out: 8 in real ART (an oct of children);
    the paper's Fig. 8 sizing example ({1,2,4,8,16,32} nodes per level)
    implicitly uses 2, so it is configurable.
    """

    nvars: int
    levels: list[FttLevel] = field(default_factory=list)
    oct: int = OCT

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def root_only(cls, nvars: int, oct: int = OCT) -> "FttTree":
        """A tree holding just its (unrefined) root cell."""
        if nvars < 1:
            raise FttError("a tree needs at least one variable")
        if oct < 2:
            raise FttError("refinement fan-out must be >= 2")
        level0 = FttLevel(
            variables=np.zeros((nvars, 1), dtype=np.float64),
            refined=np.zeros(1, dtype=np.uint8),
            parent=np.full(1, -1, dtype=np.int32),
        )
        return cls(nvars=nvars, levels=[level0], oct=oct)

    def refine(self, level: int, cell: int) -> None:
        """Split one leaf cell into an oct of 8 children."""
        if not (0 <= level < self.depth):
            raise FttError(f"no level {level}")
        lv = self.levels[level]
        if not (0 <= cell < lv.ncells):
            raise FttError(f"no cell {cell} on level {level}")
        if lv.refined[cell]:
            raise FttError(f"cell ({level}, {cell}) is already refined")
        lv.refined[cell] = 1
        if level + 1 == self.depth:
            self.levels.append(
                FttLevel(
                    variables=np.zeros((self.nvars, 0), dtype=np.float64),
                    refined=np.zeros(0, dtype=np.uint8),
                    parent=np.zeros(0, dtype=np.int32),
                )
            )
        child = self.levels[level + 1]
        # Children interpolate the parent's variables (enough structure for
        # the reproduction; real ART solves hydrodynamics here).
        parent_vars = lv.variables[:, cell : cell + 1]
        offsets = (np.arange(self.oct, dtype=np.float64) + 1.0) / (self.oct + 1.0)
        new_vars = parent_vars + offsets[np.newaxis, :]
        child.variables = np.concatenate([child.variables, new_vars], axis=1)
        child.refined = np.concatenate(
            [child.refined, np.zeros(self.oct, dtype=np.uint8)]
        )
        child.parent = np.concatenate(
            [child.parent, np.full(self.oct, cell, dtype=np.int32)]
        )

    @classmethod
    def build_random(
        cls,
        rng: np.random.Generator,
        nvars: int,
        target_cells: int,
        oct: int = OCT,
    ) -> "FttTree":
        """Grow a tree by refining random leaves until >= *target_cells*.

        Deterministic given the generator state — how the workload builds
        trees "of different structures and sizes".
        """
        tree = cls.root_only(nvars, oct)
        tree.levels[0].variables[:, 0] = rng.normal(size=nvars)
        while tree.total_cells < target_cells:
            leaves = list(tree.iter_leaves())
            level, cell = leaves[int(rng.integers(len(leaves)))]
            tree.refine(level, cell)
        return tree

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of refinement levels."""
        return len(self.levels)

    @property
    def level_sizes(self) -> list[int]:
        """Cells per level, root first."""
        return [lv.ncells for lv in self.levels]

    @property
    def total_cells(self) -> int:
        """Cells across all levels."""
        return sum(self.level_sizes)

    @property
    def leaf_count(self) -> int:
        """Unrefined cells across all levels."""
        return sum(int((lv.refined == 0).sum()) for lv in self.levels)

    def iter_leaves(self) -> Iterator[tuple[int, int]]:
        """Yield (level, cell) of every unrefined cell."""
        for level, lv in enumerate(self.levels):
            for cell in np.flatnonzero(lv.refined == 0):
                yield level, int(cell)

    def check_invariants(self) -> None:
        """Structural sanity: children counts match refinement flags and
        parents point at refined cells."""
        for level in range(self.depth - 1):
            lv, child = self.levels[level], self.levels[level + 1]
            expected_children = int(lv.refined.sum()) * self.oct
            if child.ncells != expected_children:
                raise FttError(
                    f"level {level + 1} has {child.ncells} cells, "
                    f"expected {expected_children}"
                )
            if child.ncells and not np.all(lv.refined[child.parent] == 1):
                raise FttError(f"level {level + 1} has a parent that is not refined")
        if self.depth and int(self.levels[-1].refined.sum()) != 0:
            raise FttError("deepest level may not contain refined cells")

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FttTree):
            return NotImplemented
        if (
            self.nvars != other.nvars
            or self.depth != other.depth
            or self.oct != other.oct
        ):
            return False
        for a, b in zip(self.levels, other.levels):
            if not (
                np.array_equal(a.variables, b.variables)
                and np.array_equal(a.refined, b.refined)
                and np.array_equal(a.parent, b.parent)
            ):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FttTree depth={self.depth} cells={self.total_cells} sizes={self.level_sizes}>"
