"""ART dump/restart through vanilla (independent) MPI-IO — the Fig. 9/10
baseline: every small array is its own ``write_at``/``read_at``, paying
per-request storage overhead and stripe-lock contention with every other
rank's interleaved records.
"""

from __future__ import annotations

import numpy as np

from repro.art.decomposition import ArtWorkload
from repro.art.ftt import FttTree
from repro.art.io_common import (
    INDEX_ENTRY,
    LocalSegments,
    header_prefix_nbytes,
    index_nbytes,
    parse_index,
    record_offsets,
)
from repro.art.io_tcio import _exchange_sizes, _verify_trees
from repro.art.layout import FttRecordLayout
from repro.mpiio import MpiFile, MODE_CREATE, MODE_RDONLY, MODE_RDWR
from repro.simmpi.mpi import RankEnv


def dump(
    env: RankEnv,
    workload: ArtWorkload,
    local: LocalSegments,
    name: str,
    *,
    per_array_cost: float = 0.0,
) -> dict:
    """Write the snapshot with one independent write per record array."""
    layout = FttRecordLayout()
    all_sizes = yield from _exchange_sizes(env.comm, workload, local)
    offsets = record_offsets(all_sizes, workload.n_segments)

    fh = yield from MpiFile.open(env, name, MODE_RDWR | MODE_CREATE)
    writes = 0
    if env.rank == 0:
        yield from fh.write_at(0, np.array([workload.n_segments], dtype=np.int64))
        writes += 1
    for seg, size in zip(local.segments, local.sizes):
        yield from fh.write_at(INDEX_ENTRY * (1 + seg), np.array([size], dtype=np.int64))
        writes += 1
    for seg, tree in zip(local.segments, local.trees):
        env.compute(per_array_cost * layout.array_count(tree))
        for off, data in layout.iter_write_ops(tree, offsets[seg]):
            yield from fh.write_at(off, data)
            writes += 1
    yield from fh.close()
    return {"write_calls": writes}


def restart(
    env: RankEnv,
    workload: ArtWorkload,
    name: str,
    *,
    verify: bool = True,
    per_array_cost: float = 0.0,
) -> dict:
    """Read records back with per-array independent reads; verify trees."""
    layout = FttRecordLayout()
    fh = yield from MpiFile.open(env, name, MODE_RDONLY)
    reads = 1
    idx = yield from fh.read_at(0, index_nbytes(workload.n_segments))
    sizes = parse_index(idx, workload.n_segments)
    offsets = record_offsets(sizes, workload.n_segments)

    my_segments = workload.segments_of(env.rank, env.comm.size)
    trees: list[FttTree] = []
    for seg in my_segments:
        base = offsets[seg]
        head = yield from fh.read_at(base, header_prefix_nbytes())
        reads += 1
        _magic, _oct, nvars, depth, total_cells = np.frombuffer(head, np.int32)
        struct_len = int(depth) * 4 + int(total_cells)
        struct_buf = yield from fh.read_at(base + len(head), struct_len)
        reads += 1
        values_base = base + len(head) + struct_len
        pieces = []
        pos = values_base
        env.compute(per_array_cost * (3 + int(total_cells) * int(nvars)))
        for _cell in range(int(total_cells)):
            for _v in range(int(nvars)):
                pieces.append((yield from fh.read_at(pos, 8)))
                reads += 1
                pos += 8
        trees.append(layout.parse(head + struct_buf + b"".join(pieces)))
    yield from fh.close()

    if verify:
        _verify_trees(workload, my_segments, trees)
    return {"read_calls": reads}
