"""ART (Adaptive Refinement Tree) — the paper's real-application workload.

A cell-based AMR cosmology code: the 3D volume divides into uniform root
cells; cells refine into 8 children organized as fully threaded trees (FTT)
whose structure changes dynamically, so the serialized form of each tree is
a run of many small adjacent arrays of different types and sizes (Fig. 8) —
the access pattern no single derived datatype can describe, making OCIO
impractical and motivating TCIO.

The physics is replaced by a deterministic refinement driver that produces
the published tree-shape statistics (Table IV's normal segment lengths);
only the I/O behaviour matters for the reproduction.
"""

from repro.art.ftt import FttTree, FttLevel
from repro.art.layout import FttRecordLayout, RecordArray
from repro.art.decomposition import ArtWorkload, segment_lengths
from repro.art.app import ArtConfig, ArtResult, dump_snapshot, restart_snapshot, run_art, ArtIoMethod

__all__ = [
    "FttTree",
    "FttLevel",
    "FttRecordLayout",
    "RecordArray",
    "ArtWorkload",
    "segment_lengths",
    "ArtConfig",
    "ArtResult",
    "run_art",
    "dump_snapshot",
    "restart_snapshot",
    "ArtIoMethod",
]
