"""ART dump/restart through TCIO.

"The only thing that the application needs to do is to output each piece
of data individually and TCIO will handle collective I/O operations
transparently" (Section V.C). The dump seeks to each record and streams its
arrays with plain sequential ``tcio_write``; the restart reads the index,
then each record's structure arrays, then every value array individually —
all recorded lazily and satisfied by ``tcio_fetch``.
"""

from __future__ import annotations

import numpy as np

from repro.art.decomposition import ArtWorkload
from repro.art.ftt import FttTree
from repro.art.io_common import (
    INDEX_ENTRY,
    LocalSegments,
    header_prefix_nbytes,
    index_nbytes,
    parse_index,
    record_offsets,
)
from repro.art.layout import FttRecordLayout
from repro.simmpi import collectives
from repro.simmpi.mpi import RankEnv
from repro.tcio import (
    TCIO_RDONLY,
    TCIO_WRONLY,
    TcioConfig,
    TcioFile,
)
from repro.util.errors import BenchmarkError


def _tcio_config(env: RankEnv, file_bytes: int) -> TcioConfig:
    stripe = env.pfs.spec.stripe_size
    return TcioConfig.sized_for(max(file_bytes, stripe), env.size, stripe)


def dump(
    env: RankEnv,
    workload: ArtWorkload,
    local: LocalSegments,
    name: str,
    *,
    per_array_cost: float = 0.0,
) -> dict:
    """Write the snapshot; returns TCIO stats of this rank's handle.

    ``per_array_cost`` charges the application's marshalling work per
    record array (FTT traversal, offset computation, staging).
    """
    comm = env.comm
    layout = FttRecordLayout()
    all_sizes = yield from _exchange_sizes(comm, workload, local)
    offsets = record_offsets(all_sizes, workload.n_segments)
    total = index_nbytes(workload.n_segments) + sum(all_sizes)

    fh = yield from TcioFile.open(env, name, TCIO_WRONLY, _tcio_config(env, total))
    try:
        if env.rank == 0:
            yield from fh.write_at(0, np.array([workload.n_segments], dtype=np.int64))
        for seg, size in zip(local.segments, local.sizes):
            yield from fh.write_at(
                INDEX_ENTRY * (1 + seg), np.array([size], dtype=np.int64)
            )
        for seg, tree in zip(local.segments, local.trees):
            fh.seek(offsets[seg])
            arrays = layout.arrays(tree)
            env.compute(per_array_cost * len(arrays))
            for array in arrays:
                yield from fh.write(array.data)
    except BaseException:
        fh.abort()
        raise
    yield from fh.close()
    return fh.stats.as_dict()


def restart(
    env: RankEnv,
    workload: ArtWorkload,
    name: str,
    *,
    verify: bool = True,
    per_array_cost: float = 0.0,
) -> dict:
    """Read this rank's records back; optionally verify tree equality."""
    comm = env.comm
    layout = FttRecordLayout()
    pfs_size = env.pfs.lookup(name).size
    fh = yield from TcioFile.open(env, name, TCIO_RDONLY, _tcio_config(env, pfs_size))
    try:
        # Phase 1: the index (sizes of every record).
        idx_buf = bytearray(index_nbytes(workload.n_segments))
        yield from fh.read_at(0, idx_buf)
        yield from fh.fetch()
        sizes = parse_index(bytes(idx_buf), workload.n_segments)
        offsets = record_offsets(sizes, workload.n_segments)

        my_segments = workload.segments_of(env.rank, comm.size)
        trees: list[FttTree] = []
        for seg in my_segments:
            base = offsets[seg]
            # Phase 2: the record's descriptor header.
            head = bytearray(header_prefix_nbytes())
            yield from fh.read_at(base, head)
            yield from fh.fetch()
            magic, oct_, nvars, depth, total_cells = np.frombuffer(
                bytes(head), np.int32
            )
            # Phase 3: level sizes + refinement flags.
            struct_buf = bytearray(int(depth) * 4 + int(total_cells))
            yield from fh.read_at(base + len(head), struct_buf)
            yield from fh.fetch()
            level_sizes = np.frombuffer(bytes(struct_buf[: int(depth) * 4]), np.int32)
            # Phase 4: each value array individually (the paper's small reads).
            values_base = base + len(head) + len(struct_buf)
            value_bufs: list[bytearray] = []
            pos = values_base
            env.compute(per_array_cost * (3 + int(total_cells) * int(nvars)))
            for _cell in range(int(total_cells)):
                for _v in range(int(nvars)):
                    b = bytearray(8)
                    yield from fh.read_at(pos, b)
                    value_bufs.append(b)
                    pos += 8
            yield from fh.fetch()
            # Reassemble and parse the full record.
            blob = (
                bytes(head)
                + bytes(struct_buf)
                + b"".join(bytes(b) for b in value_bufs)
            )
            trees.append(layout.parse(blob))
            del level_sizes, magic, oct_
    except BaseException:
        fh.abort()
        raise
    yield from fh.close()

    if verify:
        _verify_trees(workload, my_segments, trees)
    return fh.stats.as_dict()


def _exchange_sizes(comm, workload: ArtWorkload, local: LocalSegments):
    """Allgather every record's serialized size (rank order -> file order)."""
    mine = list(zip(local.segments, local.sizes))
    gathered = yield from collectives.allgather(comm, mine)
    all_sizes = [0] * workload.n_segments
    for pairs in gathered:
        for seg, size in pairs:
            all_sizes[seg] = size
    if any(s <= 0 for s in all_sizes):
        raise BenchmarkError("a segment has no owner")
    return all_sizes


def _verify_trees(workload: ArtWorkload, segments: list[int], trees: list[FttTree]) -> None:
    from repro.art.layout import canonicalize

    for seg, got in zip(segments, trees):
        expected = canonicalize(workload.build_tree(seg))
        if got != expected:
            raise BenchmarkError(f"segment {seg}: restart mismatch")
