"""The self-describing on-disk layout of one FTT (Fig. 8).

Both variable values and tree-structure information are recorded. One tree
serializes as an ordered run of small adjacent arrays:

* 3 structure arrays — the descriptor header (magic, fan-out, nvars,
  depth, total cells; int32), the per-level cell counts (int32), and the
  concatenated per-level refinement flags (uint8);
* then, cell by cell in canonical (level-major, parent-sorted) order, one
  float64 value array **per variable per cell**.

For the paper's sizing example — two variables, depth 6, level sizes
{1,2,4,8,16,32} (63 cells) — this yields exactly ``3 + 63*2 = 129`` arrays
of different types and sizes, matching Section V.C.

Canonical order: each level's cells sorted stably by parent index. Flags
then fully determine parent links, so structure round-trips without
storing them; :func:`canonicalize` converts any tree to this order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.art.ftt import FttError, FttLevel, FttTree

MAGIC = 0x46545431  # "FTT1"

_HEADER_FIELDS = 5  # magic, oct, nvars, depth, total_cells


@dataclass(frozen=True)
class RecordArray:
    """One array of the record: name, relative offset, raw bytes."""

    name: str
    offset: int
    data: bytes

    @property
    def nbytes(self) -> int:
        """Length of this array's bytes."""
        return len(self.data)


def canonicalize(tree: FttTree) -> FttTree:
    """A copy with every level's cells stably sorted by parent index.

    In canonical order the children of refined cells appear grouped by
    parent, so refinement flags alone reconstruct the parent links.
    """
    out = FttTree(nvars=tree.nvars, levels=[tree.levels[0].copy()], oct=tree.oct)
    # Mapping from old cell index to new cell index on the previous level.
    prev_map = np.zeros(tree.levels[0].ncells, dtype=np.int64)
    for li in range(1, tree.depth):
        lv = tree.levels[li]
        remapped_parent = prev_map[lv.parent] if lv.ncells else lv.parent.astype(np.int64)
        order = np.argsort(remapped_parent, kind="stable")
        out.levels.append(
            FttLevel(
                variables=lv.variables[:, order].copy(),
                refined=lv.refined[order].copy(),
                parent=remapped_parent[order].astype(np.int32),
            )
        )
        inverse = np.empty(lv.ncells, dtype=np.int64)
        inverse[order] = np.arange(lv.ncells)
        prev_map = inverse
    return out


class FttRecordLayout:
    """Serializer/deserializer for the Fig. 8 record format."""

    # ------------------------------------------------------------------
    def arrays(self, tree: FttTree) -> list[RecordArray]:
        """The record's ordered arrays with relative offsets.

        The tree must be in canonical order (see :func:`canonicalize`);
        the dump drivers canonicalize before writing.
        """
        out: list[RecordArray] = []
        offset = 0

        def emit(name: str, data: bytes) -> None:
            nonlocal offset
            out.append(RecordArray(name=name, offset=offset, data=data))
            offset += len(data)

        header = np.array(
            [MAGIC, tree.oct, tree.nvars, tree.depth, tree.total_cells],
            dtype=np.int32,
        )
        emit("header", header.tobytes())
        emit("level_sizes", np.array(tree.level_sizes, dtype=np.int32).tobytes())
        flags = (
            np.concatenate([lv.refined for lv in tree.levels])
            if tree.depth
            else np.zeros(0, dtype=np.uint8)
        )
        emit("refined_flags", flags.tobytes())
        for li, lv in enumerate(tree.levels):
            for cell in range(lv.ncells):
                for v in range(tree.nvars):
                    emit(
                        f"L{li}.c{cell}.v{v}",
                        lv.variables[v, cell : cell + 1].tobytes(),
                    )
        return out

    def array_count(self, tree: FttTree) -> int:
        """O(1) count: 3 structure arrays + nvars per cell."""
        return 3 + tree.total_cells * tree.nvars

    def record_nbytes(self, tree: FttTree) -> int:
        """Serialized size without materializing the arrays."""
        return (
            _HEADER_FIELDS * 4
            + tree.depth * 4
            + tree.total_cells
            + tree.total_cells * tree.nvars * 8
        )

    def serialize(self, tree: FttTree) -> bytes:
        """The whole record as one byte string."""
        return b"".join(a.data for a in self.arrays(tree))

    # ------------------------------------------------------------------
    def parse(self, blob: bytes | memoryview) -> FttTree:
        """Reconstruct a canonical tree from its serialized record."""
        view = memoryview(blob)
        header = np.frombuffer(view[: _HEADER_FIELDS * 4], dtype=np.int32)
        if header[0] != MAGIC:
            raise FttError(f"bad FTT magic 0x{int(header[0]):x}")
        oct_, nvars, depth, total_cells = (int(x) for x in header[1:])
        pos = _HEADER_FIELDS * 4
        sizes = np.frombuffer(view[pos : pos + depth * 4], dtype=np.int32)
        pos += depth * 4
        if int(sizes.sum()) != total_cells:
            raise FttError("level sizes disagree with total cell count")
        flags = np.frombuffer(view[pos : pos + total_cells], dtype=np.uint8)
        pos += total_cells
        values = np.frombuffer(
            view[pos : pos + total_cells * nvars * 8], dtype=np.float64
        )
        pos += total_cells * nvars * 8

        tree = FttTree(nvars=nvars, levels=[], oct=oct_)
        cell_base = 0
        for li in range(depth):
            n = int(sizes[li])
            lv_flags = flags[cell_base : cell_base + n].copy()
            lv_values = (
                values[cell_base * nvars : (cell_base + n) * nvars]
                .reshape(n, nvars)
                .T.copy()
            )
            if li == 0:
                parent = np.full(n, -1, dtype=np.int32)
            else:
                prev = tree.levels[li - 1]
                refined_idx = np.flatnonzero(prev.refined == 1)
                if len(refined_idx) * oct_ != n:
                    raise FttError(
                        f"level {li}: {n} cells but {len(refined_idx)} refined parents"
                    )
                parent = np.repeat(refined_idx, oct_).astype(np.int32)
            tree.levels.append(
                FttLevel(variables=lv_values, refined=lv_flags, parent=parent)
            )
            cell_base += n
        tree.check_invariants()
        return tree

    # ------------------------------------------------------------------
    def iter_write_ops(self, tree: FttTree, base_offset: int) -> Iterator[tuple[int, bytes]]:
        """(absolute file offset, bytes) pairs — what a dump must write."""
        for a in self.arrays(tree):
            yield base_offset + a.offset, a.data
