"""Deterministic fault injection and recovery (see docs/faults.md).

``FaultSpec`` describes rates and knobs, ``FaultPlan`` binds one spec +
seed to one simulated job, ``RetryPolicy`` tunes the bounded-backoff
recovery loop, and ``pfs_retry`` wraps storage calls against lock-grant
timeouts. Pass a plan to :func:`repro.simmpi.run_mpi` (or a spec to
:func:`repro.bench.run_benchmark`) to run a job under faults.
"""

from repro.faults.plan import FaultPlan, FaultSpec, Injection
from repro.faults.retry import RetryPolicy, pfs_retry

__all__ = ["FaultPlan", "FaultSpec", "Injection", "RetryPolicy", "pfs_retry"]
