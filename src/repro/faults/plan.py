"""Deterministic, seeded fault injection for the simulated stack.

A :class:`FaultSpec` says *what can go wrong and how often*; a
:class:`FaultPlan` binds one spec + seed to one simulated job and makes
every injection decision from named RNG streams
(``seeded_rng(seed, "faults", scope, stream)``), so identical seeds
reproduce identical injection timelines event-for-event. The plan also
owns the retry loop (:meth:`FaultPlan.retry_call`) so backoff jitter
draws from the same deterministic streams, and it mirrors every decision
into the observability layer: counters ``faults.injected.<kind>``,
``faults.retries`` and ``faults.fallbacks``, plus ``faults.backoff``
spans in the Chrome trace.

Injection kinds
---------------
``net.drop``     transient message loss; the fabric re-sends after a
                 delivery timeout (the message still arrives, late).
``net.spike``    a per-message latency spike on an inter-node link.
``ost.slow``     an OST chosen at plan-install time serves every request
                 ``slow_factor`` times slower.
``ost.stall``    one request of one OST hangs for ``ost_stall_seconds``.
``lock.timeout`` an extent-lock request expired before its grant.
``rma.put`` / ``rma.get``  a one-sided transfer failed retryably (either
                 probabilistically or because the target rank is in
                 ``unreachable_ranks``).
``crash.rank`` / ``crash.node``  a fail-stop process (or whole-node) crash
                 at a named protocol step; unlike every other kind this is
                 not transient — the job aborts and recovery is offline
                 (see ``repro.crash``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple, Type, TypeVar, Union

from repro.faults.retry import RetryPolicy
from repro.sim.engine import active_process
from repro.util.errors import PfsError, RetryBudgetExceeded
from repro.util.rng import seeded_rng

T = TypeVar("T")


@dataclass(frozen=True)
class FaultSpec:
    """What can fail, how often, and how recovery is tuned.

    All rates are per-decision probabilities in ``[0, 1]``; a rate of 0
    disables that injection point entirely (and, for ``lock_timeout``,
    a value of 0 disables lock expiry).
    """

    # network (netsim/fabric.py)
    drop_rate: float = 0.0
    drop_timeout: float = 5e-4  # retransmission delay of a dropped message
    spike_rate: float = 0.0
    spike_seconds: float = 2e-4
    # storage servers (pfs/ost.py)
    slow_osts: int = 0  # how many OSTs run degraded for the whole job
    slow_factor: float = 8.0
    ost_stall_rate: float = 0.0
    ost_stall_seconds: float = 1e-3
    # lock manager (pfs/lockmgr.py); 0 = never time out
    lock_timeout: float = 0.0
    # one-sided transfers (simmpi/rma.py)
    rma_fail_rate: float = 0.0
    rma_fail_delay: float = 5e-5  # origin-side cost of a failed put/get
    unreachable_ranks: Tuple[int, ...] = ()  # RMA targets that always fail
    # fail-stop process crashes (``crash.rank`` / ``crash.node`` kinds).
    # Targeted mode: crash_rank (or every rank of crash_node) dies at the
    # ``crash_after``-th occurrence of protocol step ``crash_step`` (or of
    # any step when None). Probabilistic mode: ``crash_rate`` rolls the
    # seeded ``crash`` stream at every crash point.
    crash_rank: Optional[int] = None
    crash_node: Optional[int] = None
    crash_step: Optional[str] = None
    crash_after: int = 1  # die at the Nth matching step occurrence (1-based)
    crash_rate: float = 0.0
    # diagnostics / recovery
    audit_locks: bool = False
    retry: RetryPolicy = RetryPolicy()

    def validate(self) -> None:
        for name in ("drop_rate", "spike_rate", "ost_stall_rate", "rma_fail_rate",
                     "crash_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise PfsError(f"{name} must be in [0, 1], got {rate}")
        if self.slow_osts < 0 or self.slow_factor < 1.0:
            raise PfsError("slow_osts must be >= 0 and slow_factor >= 1")
        if min(self.drop_timeout, self.spike_seconds, self.ost_stall_seconds,
               self.lock_timeout, self.rma_fail_delay) < 0:
            raise PfsError("fault durations must be >= 0")
        if self.crash_after < 1:
            raise PfsError(f"crash_after must be >= 1, got {self.crash_after}")
        if self.crash_rank is not None and self.crash_node is not None:
            raise PfsError("crash_rank and crash_node are mutually exclusive")
        self.retry.validate()

    @property
    def crashes_armed(self) -> bool:
        """Whether any fail-stop crash injection is configured."""
        return (
            self.crash_rank is not None
            or self.crash_node is not None
            or self.crash_rate > 0.0
        )

    @classmethod
    def from_rate(cls, rate: float, **overrides) -> "FaultSpec":
        """A uniform spec: every probabilistic injection point runs at *rate*."""
        spec = cls(
            drop_rate=rate,
            spike_rate=rate,
            ost_stall_rate=rate,
            rma_fail_rate=rate,
        )
        return replace(spec, **overrides) if overrides else spec


@dataclass(frozen=True)
class Injection:
    """One injected fault: when, what kind, and the sorted detail items."""

    time: float
    kind: str
    detail: Tuple[Tuple[str, object], ...]


class FaultPlan:
    """One job's bound fault schedule: spec + seed + named RNG streams.

    A plan is single-job state (it accumulates the injection timeline and
    holds per-stream generators); the benchmark harness builds a fresh
    plan per phase with a distinct ``scope`` so the write and read jobs
    draw from independent streams of the same root seed.
    """

    def __init__(self, spec: FaultSpec, seed: int, *, scope: str = "run"):
        spec.validate()
        self.spec = spec
        self.seed = int(seed)
        self.scope = str(scope)
        self.injections: list[Injection] = []
        self.fallbacks: list[Tuple[str, Tuple[Tuple[str, object], ...]]] = []
        #: ``(step, rank) -> occurrences`` of every crash point reached.
        #: Crash campaigns run a crash-free counting pass first and read
        #: this to aim ``crash_after`` at a specific occurrence.
        self.step_hits: Counter = Counter()
        self._crash_matches: Counter = Counter()
        self._streams: dict = {}
        self._engine = None
        self._trace = None
        self._slow_osts: Optional[frozenset] = None

    def bind(self, engine, trace) -> None:
        """Attach the plan to one job's engine (for timestamps) and trace."""
        self._engine = engine
        self._trace = trace

    # ------------------------------------------------------------------
    # deterministic decisions
    # ------------------------------------------------------------------
    def _rng(self, stream: str):
        gen = self._streams.get(stream)
        if gen is None:
            gen = self._streams[stream] = seeded_rng(
                self.seed, "faults", self.scope, stream
            )
        return gen

    def _decide(self, stream: str, rate: float) -> bool:
        return rate > 0.0 and float(self._rng(stream).random()) < rate

    def _now(self) -> float:
        return self._engine.now if self._engine is not None else 0.0

    def record(self, kind: str, **detail) -> None:
        """Append one injection to the timeline and count it."""
        self.injections.append(
            Injection(self._now(), kind, tuple(sorted(detail.items())))
        )
        if self._trace is not None:
            self._trace.count(f"faults.injected.{kind}")

    def timeline(self) -> list[Tuple[float, str, Tuple[Tuple[str, object], ...]]]:
        """The injections so far as comparable tuples (reproducibility checks)."""
        return [(i.time, i.kind, i.detail) for i in self.injections]

    def injected(self, kind: str) -> int:
        """How many injections of *kind* the plan has made."""
        return sum(1 for i in self.injections if i.kind == kind)

    # ------------------------------------------------------------------
    # injection points (called by the instrumented layers)
    # ------------------------------------------------------------------
    def network_penalty(self, src: int, dst: int, nbytes: int) -> float:
        """Extra inter-node delivery delay for one message (0.0 = clean)."""
        spec = self.spec
        extra = 0.0
        if self._decide("net.spike", spec.spike_rate):
            self.record("net.spike", src=src, dst=dst)
            extra += spec.spike_seconds
        if self._decide("net.drop", spec.drop_rate):
            # A dropped message is retransmitted after a delivery timeout:
            # it still arrives (two-sided matching stays deadlock-free),
            # just a retransmission window later.
            self.record("net.drop", src=src, dst=dst, bytes=nbytes)
            extra += spec.drop_timeout
        return extra

    def slow_osts_for(self, n_osts: int) -> frozenset:
        """Which OSTs run degraded (chosen once per plan, recorded)."""
        if self._slow_osts is None:
            k = min(self.spec.slow_osts, n_osts)
            if k > 0:
                picks = self._rng("ost.slow").choice(n_osts, size=k, replace=False)
                chosen = frozenset(int(i) for i in picks)
                for index in sorted(chosen):
                    self.record("ost.slow", ost=index, factor=self.spec.slow_factor)
            else:
                chosen = frozenset()
            self._slow_osts = chosen
        return self._slow_osts

    def ost_stall(self, index: int, write: bool) -> float:
        """Extra service time for one OST request (0.0 = clean)."""
        if self._decide("ost.stall", self.spec.ost_stall_rate):
            self.record("ost.stall", ost=index, write=write)
            return self.spec.ost_stall_seconds
        return 0.0

    def rma_fault(self, op: str, origin: int, target: int) -> bool:
        """Whether this put/get fails retryably (records the injection)."""
        if origin != target and target in self.spec.unreachable_ranks:
            self.record(f"rma.{op}", origin=origin, target=target, unreachable=True)
            return True
        if self._decide(f"rma.{op}", self.spec.rma_fail_rate):
            self.record(f"rma.{op}", origin=origin, target=target, unreachable=False)
            return True
        return False

    def crash_point(self, step: str, rank: int, node: int) -> bool:
        """Whether *rank* dies (fail-stop) at this occurrence of *step*.

        Every call is tallied into :attr:`step_hits` so counting runs can
        enumerate a workload's crashable moments. Targeted specs count only
        *matching* occurrences (right victim, right step) and fire at the
        ``crash_after``-th; probabilistic specs roll the seeded ``crash``
        stream. The caller (``MpiWorld.crash_point``) performs the kill.
        """
        self.step_hits[(step, rank)] += 1
        spec = self.spec
        if not spec.crashes_armed:
            return False
        if spec.crash_rank is not None or spec.crash_node is not None:
            if spec.crash_rank is not None:
                targeted, key = spec.crash_rank == rank, rank
                kind = "crash.rank"
            else:
                targeted, key = spec.crash_node == node, node
                kind = "crash.node"
            if not targeted or (spec.crash_step is not None and spec.crash_step != step):
                return False
            self._crash_matches[key] += 1
            if self._crash_matches[key] != spec.crash_after:
                return False
            self.record(kind, rank=rank, node=node, step=step)
            return True
        if self._decide("crash", spec.crash_rate):
            self.record("crash.rank", rank=rank, node=node, step=step)
            return True
        return False

    def note_lock_timeout(self, owner: int, extent) -> None:
        """A lock acquire expired (the lock manager reports it here)."""
        self.record("lock.timeout", owner=owner, start=extent.start, stop=extent.stop)

    def note_fallback(self, what: str, **detail) -> None:
        """A degradation event: recovery gave up retrying and took the
        independent path. Counted (``faults.fallbacks``), not part of the
        *injection* timeline (it is a response, not a fault)."""
        self.fallbacks.append((what, tuple(sorted(detail.items()))))
        if self._trace is not None:
            self._trace.count("faults.fallbacks")

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def retry_call(
        self,
        op: Callable[[int], T],
        *,
        retry_on: Union[Type[BaseException], Tuple[Type[BaseException], ...]],
        what: str,
    ):
        """Run ``op(attempt)`` under the spec's retry policy (coroutine).

        ``op(attempt)`` may be a plain callable *or* return a coroutine
        (the normal case for storage/RMA operations) — both are driven
        uniformly. Failed attempts sleep a jittered exponential backoff on
        the virtual clock (visible as ``faults.backoff`` spans) and count
        ``faults.retries``; once the budget is spent the last error is
        wrapped in :class:`RetryBudgetExceeded`.

        Observability: every executed attempt counts
        ``faults.retry.attempts``, every backoff sleep adds its virtual
        seconds to ``faults.retry.backoff_total``, and budget exhaustion
        emits a ``faults.retry.exhausted`` span naming the operation —
        the overload-analysis signals for how hard recovery worked.
        """
        from repro.sim.api import run_coroutine

        policy = self.spec.retry
        last = policy.max_attempts - 1
        for attempt in range(policy.max_attempts):
            if self._trace is not None:
                self._trace.count("faults.retry.attempts", 1)
            try:
                return (yield from run_coroutine(op(attempt)))
            except retry_on as exc:
                if attempt == last:
                    if self._trace is not None:
                        with self._trace.span(
                            "faults.retry.exhausted", what=what,
                            attempts=policy.max_attempts,
                        ):
                            pass
                    raise RetryBudgetExceeded(what, policy.max_attempts) from exc
                delay = policy.backoff(attempt, self._rng("retry"))
                if self._trace is not None:
                    self._trace.count("faults.retries")
                    self._trace.count("faults.retry.backoff_total", delay)
                    with self._trace.span("faults.backoff", what=what, attempt=attempt):
                        yield from active_process().sleep(delay)
                else:
                    yield from active_process().sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover
