"""Bounded exponential backoff on the virtual clock.

A :class:`RetryPolicy` describes *how* to retry (attempts, base delay,
growth factor, cap, jitter); the loop that applies it lives on
:meth:`repro.faults.plan.FaultPlan.retry_call` so every backoff sleep is
jittered from the run's named RNG streams and counted/spanned through the
observability layer. :func:`pfs_retry` is the storage-side convenience
used by TCIO's writeback and the two-phase I/O phase: it turns lock-grant
timeouts into bounded retries, with the *last* attempt blocking without a
timeout so a convoy of waiters still completes (the engine's deadlock
detector remains the backstop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.util.errors import LockTimeout, PfsError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of one bounded-exponential-backoff loop.

    Attempt ``k`` (0-based) that fails sleeps
    ``min(max_delay, base_delay * factor**k)`` stretched by up to
    ``jitter`` (uniform, from the plan's ``retry`` RNG stream) before the
    next try; after ``max_attempts`` failures the operation surfaces
    :class:`~repro.util.errors.RetryBudgetExceeded`.
    """

    max_attempts: int = 4
    base_delay: float = 50e-6
    factor: float = 2.0
    max_delay: float = 2e-3
    jitter: float = 0.5

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise PfsError("retry policy needs at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise PfsError("retry delays/jitter must be >= 0")
        if self.factor < 1.0:
            raise PfsError("retry factor must be >= 1")

    def backoff(self, attempt: int, rng) -> float:
        """The sleep before retrying after failed attempt *attempt*."""
        delay = min(self.max_delay, self.base_delay * self.factor**attempt)
        if self.jitter:
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay


def pfs_retry(world, what: str, op: Callable[[Optional[float]], T]):
    """Run storage operation *op* with lock-timeout retries when faults are on.

    Coroutine: ``result = yield from pfs_retry(...)``. ``op(lock_timeout)``
    performs the actual transfer (itself usually a coroutine), passing the
    timeout through to the PFS client. Without an active fault plan (or
    with lock timeouts disabled) this drives ``op(None)`` directly —
    bit-identical to the pre-fault behaviour. Under a plan, timed-out
    acquires back off and retry; the final attempt waits unboundedly so
    the operation always completes once the queue drains.
    """
    from repro.sim.api import run_coroutine

    plan = getattr(world, "faults", None)
    if plan is None or plan.spec.lock_timeout <= 0.0:
        return (yield from run_coroutine(op(None)))
    last = plan.spec.retry.max_attempts - 1
    return (yield from plan.retry_call(
        lambda attempt: op(plan.spec.lock_timeout if attempt < last else None),
        retry_on=LockTimeout,
        what=what,
    ))
