"""The fault-injection smoke runner: ``python -m repro faults <target>``.

Runs the synthetic benchmark with a seeded :class:`FaultPlan` armed —
message drops and latency spikes on the fabric, one slow OST plus
per-request stalls, bounded lock waits, transient RMA failures, and one
unreachable segment owner — then asserts the shared file still verifies
byte-for-byte against :func:`repro.bench.synthetic.reference_file_contents`
(run_benchmark raises on any mismatch). Prints the injection digest per
phase so a run doubles as a quick look at what the plan actually did.
"""

from __future__ import annotations

from collections import Counter

from repro.util.units import MIB, format_time


def run_faulted(
    target: str,
    *,
    seed: int = 1,
    rate: float = 0.05,
    procs: int = 16,
    len_array: int = 256,
    arrays: int = 2,
    type_codes: str = "i,d",
    access: int = 1,
    method: str = "tcio",
    lock_timeout: float = 2e-3,
    aggregation: str = "flat",
) -> int:
    """Run one fault-injected benchmark point; 0 when it verified."""
    from repro.bench import BenchConfig, Method, run_benchmark
    from repro.faults import FaultSpec

    if target != "bench":
        method = target
    cfg = BenchConfig(
        method=Method.parse(method),
        num_arrays=arrays,
        type_codes=type_codes,
        len_array=len_array,
        size_access=access,
        nprocs=procs,
        aggregation=aggregation,
    )
    # Rank 1 owns global segment 1 under TCIO's g % P placement whenever
    # the file spans at least two segments, so making it unreachable
    # exercises the independent-write degradation path.
    spec = FaultSpec.from_rate(
        rate,
        slow_osts=1,
        lock_timeout=lock_timeout,
        unreachable_ranks=(1,) if procs > 1 else (),
        audit_locks=True,
    )
    result = run_benchmark(cfg, faults=spec, fault_seed=seed)
    if result.failed:
        print(f"FAILED: {result.fail_reason}")
        return 1

    print(
        f"faulted {cfg.method.name}: procs={procs} LEN={len_array} "
        f"seed={seed} rate={rate}"
    )
    total_injected = 0
    for phase, plan in sorted(result.fault_plans.items()):
        kinds = Counter(inj.kind for inj in plan.injections)
        digest = " ".join(f"{k}={v}" for k, v in sorted(kinds.items())) or "none"
        retries = result.counters.get(f"{phase}.faults.retries", (0, 0.0))[0]
        fallbacks = len(plan.fallbacks)
        total_injected += len(plan.injections)
        print(
            f"  {phase}: verified OK  injected={len(plan.injections)} "
            f"({digest})  retries={retries}  fallbacks={fallbacks}"
        )
    if result.write_throughput is not None:
        print(
            f"  write: {result.write_throughput / MIB:8.1f} MB/s "
            f"({format_time(result.write_seconds)})"
        )
    if result.read_throughput is not None:
        print(
            f"  read:  {result.read_throughput / MIB:8.1f} MB/s "
            f"({format_time(result.read_seconds)})"
        )
    if rate > 0 and total_injected == 0:
        print("WARNING: nonzero rate but no faults injected (run too small?)")
    return 0
