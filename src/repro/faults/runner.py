"""The fault-injection smoke runner: ``python -m repro faults <target>``.

Runs the synthetic benchmark with a seeded :class:`FaultPlan` armed —
message drops and latency spikes on the fabric, one slow OST plus
per-request stalls, bounded lock waits, transient RMA failures, and one
unreachable segment owner — then asserts the shared file still verifies
byte-for-byte against :func:`repro.bench.synthetic.reference_file_contents`
(run_benchmark raises on any mismatch). Prints the injection digest per
phase so a run doubles as a quick look at what the plan actually did.
"""

from __future__ import annotations

from collections import Counter

from repro.util.units import MIB, format_time


def run_faulted(
    target: str,
    *,
    seed: int = 1,
    rate: float = 0.05,
    procs: int = 16,
    len_array: int = 256,
    arrays: int = 2,
    type_codes: str = "i,d",
    access: int = 1,
    method: str = "tcio",
    lock_timeout: float = 2e-3,
    aggregation: str = "flat",
) -> int:
    """Run one fault-injected benchmark point; 0 when it verified."""
    from repro.bench import BenchConfig, Method, run_benchmark
    from repro.faults import FaultSpec

    if target != "bench":
        method = target
    cfg = BenchConfig(
        method=Method.parse(method),
        num_arrays=arrays,
        type_codes=type_codes,
        len_array=len_array,
        size_access=access,
        nprocs=procs,
        aggregation=aggregation,
    )
    # Rank 1 owns global segment 1 under TCIO's g % P placement whenever
    # the file spans at least two segments, so making it unreachable
    # exercises the independent-write degradation path.
    spec = FaultSpec.from_rate(
        rate,
        slow_osts=1,
        lock_timeout=lock_timeout,
        unreachable_ranks=(1,) if procs > 1 else (),
        audit_locks=True,
    )
    result = run_benchmark(cfg, faults=spec, fault_seed=seed)
    if result.failed:
        print(f"FAILED: {result.fail_reason}")
        return 1

    print(
        f"faulted {cfg.method.name}: procs={procs} LEN={len_array} "
        f"seed={seed} rate={rate}"
    )
    total_injected = 0
    for phase, plan in sorted(result.fault_plans.items()):
        kinds = Counter(inj.kind for inj in plan.injections)
        digest = " ".join(f"{k}={v}" for k, v in sorted(kinds.items())) or "none"
        retries = result.counters.get(f"{phase}.faults.retries", (0, 0.0))[0]
        fallbacks = len(plan.fallbacks)
        total_injected += len(plan.injections)
        print(
            f"  {phase}: verified OK  injected={len(plan.injections)} "
            f"({digest})  retries={retries}  fallbacks={fallbacks}"
        )
    if result.write_throughput is not None:
        print(
            f"  write: {result.write_throughput / MIB:8.1f} MB/s "
            f"({format_time(result.write_seconds)})"
        )
    if result.read_throughput is not None:
        print(
            f"  read:  {result.read_throughput / MIB:8.1f} MB/s "
            f"({format_time(result.read_seconds)})"
        )
    if rate > 0 and total_injected == 0:
        print("WARNING: nonzero rate but no faults injected (run too small?)")
    return 0


def run_crash_campaign(crash_at: str, *, seed: int = 7, procs: int = 4) -> int:
    """``python -m repro faults --crash-at <step|each-step>``.

    Runs the crash-differential matrix (docs/faults.md): kill rank 1 at
    the named protocol step (or every step) in both aggregation modes,
    recover, and compare against a crash-free reference; 0 when every
    cell is byte-identical and fsck-clean.
    """
    from repro.crash import STEPS, run_crash_matrix

    if crash_at != "each-step" and crash_at not in STEPS:
        print(f"unknown crash step {crash_at!r} (choose from {list(STEPS)})")
        return 2
    steps = STEPS if crash_at == "each-step" else (crash_at,)
    matrix = run_crash_matrix(steps=steps, nranks=procs, seed=seed)
    print(matrix.render())
    return 0 if matrix.ok else 1


def run_fsck(
    file_name: str,
    *,
    seed: int = 1,
    rate: float = 0.05,
    procs: int = 16,
    len_array: int = 256,
    journal: str = "epoch",
    aggregation: str = "flat",
) -> int:
    """``python -m repro fsck <file>``: journaled faulted run + verify.

    Runs the TCIO write phase of the synthetic benchmark with the usual
    seeded fault soup armed and ``journal=<mode>``, keeps the simulated
    PFS image, and classifies every byte of *file* with
    :func:`repro.crash.fsck.fsck` (the in-memory segment directory rides
    along as the :class:`~repro.crash.fsck.CrashContext`, so degraded
    direct writes and volatile losses are accounted too). Exit 0 iff the
    image verifies against the reference and fsck reports it clean.
    """
    from repro.bench import BenchConfig, Method
    from repro.bench.synthetic import _tcio_write, reference_file_contents
    from repro.crash import CrashContext, fsck, recover
    from repro.faults import FaultPlan, FaultSpec
    from repro.simmpi import run_mpi

    cfg = BenchConfig(
        method=Method.TCIO,
        len_array=len_array,
        nprocs=procs,
        file_name=file_name,
        aggregation=aggregation,
        journal=journal,
    )
    spec = FaultSpec.from_rate(
        rate,
        slow_osts=1,
        unreachable_ranks=(1,) if procs > 1 else (),
        audit_locks=True,
    )
    plan = FaultPlan(spec, seed, scope="write")
    result = run_mpi(
        cfg.nprocs, lambda env: _tcio_write(env, cfg), faults=plan
    )
    if result.aborted is not None:
        print(f"FAILED: job aborted ({result.aborted})")
        return 1
    written = result.pfs.lookup(file_name).contents()
    verified = written == reference_file_contents(cfg)

    if journal != "off":
        print(recover(result.pfs, file_name).summary())
    report = fsck(
        result.pfs, file_name, context=CrashContext.from_world(result.world, file_name)
    )
    print(report.summary())
    print(
        f"  verify vs reference: {'OK' if verified else 'MISMATCH'}  "
        f"(journal={journal}, seed={seed}, rate={rate}, "
        f"injected={len(plan.injections)})"
    )
    return 0 if verified and report.clean else 1
