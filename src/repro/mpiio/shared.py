"""Shared file pointers and nonblocking independent I/O.

``read_shared``/``write_shared`` implement MPI's shared-file-pointer
operations: all ranks advance one pointer, each call atomically claiming
its region (a common log/append pattern). Nonblocking ``iwrite_at``/
``iread_at`` return a request whose storage work is performed when the
request is waited on — the deferred model real ROMIO uses for independent
nonblocking I/O (it progresses inside MPI calls, which in practice means
at the wait).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.sim.api import run_coroutine
from repro.simmpi.comm import Request
from repro.util.errors import MpiIoError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpiio.file import MpiFile


class _SharedPointer:
    """The per-file shared pointer, kept in the world's shared registry."""

    __slots__ = ("position",)

    def __init__(self) -> None:
        self.position = 0  # in etypes of the (common) view


def _shared_pointer(mf: "MpiFile") -> _SharedPointer:
    key = ("mpiio-shared-ptr", mf.pfs_file.name)
    ptr = mf.env.world.shared.get(key)
    if ptr is None:
        ptr = _SharedPointer()
        mf.env.world.shared[key] = ptr
    return ptr


def write_shared(mf: "MpiFile", data: bytes):
    """Write at the shared pointer; atomically claims the region.

    Coroutine. All ranks must use identical views (MPI's requirement for
    shared pointers); offsets are claimed in arrival order at the
    (zero-cost) pointer, then the write proceeds independently.
    """
    if len(data) % mf.view.etype.size != 0:
        raise MpiIoError("shared write must be a whole number of etypes")
    ptr = _shared_pointer(mf)
    offset = ptr.position
    ptr.position += len(data) // mf.view.etype.size
    yield from mf.write_at(offset, data)
    return offset


def read_shared(mf: "MpiFile", count: int):
    """Read ``count`` etypes at the shared pointer (coroutine); returns
    (offset, data)."""
    ptr = _shared_pointer(mf)
    offset = ptr.position
    ptr.position += count
    data = yield from mf.read_at(offset, count, mf.view.etype)
    return offset, data


# ----------------------------------------------------------------------
# nonblocking independent I/O (deferred-at-wait)
# ----------------------------------------------------------------------


class IoRequest(Request):
    """Request for a nonblocking file operation.

    The operation runs when first waited on (or force-completed via
    :meth:`progress`), matching ROMIO's progression model where
    independent nonblocking I/O advances inside MPI calls.
    """

    __slots__ = ("_thunk", "result")

    def __init__(self, kind: str, thunk):
        super().__init__(kind)
        self._thunk = thunk
        self.result = None

    def progress(self):
        """Run the deferred operation now if it has not run yet (coroutine)."""
        if not self.done:
            self.result = yield from run_coroutine(self._thunk())
            self._complete()

    def wait(self) -> Optional[bytes]:  # type: ignore[override]
        """Run the operation if needed and return its result (coroutine)."""
        yield from self.progress()
        return self.result


def iwrite_at(mf: "MpiFile", offset_etypes: int, data: bytes) -> IoRequest:
    """Nonblocking independent write (deferred-at-wait)."""
    payload = bytes(data)
    return IoRequest("iwrite_at", lambda: mf.write_at(offset_etypes, payload))


def iread_at(mf: "MpiFile", offset_etypes: int, count: int) -> IoRequest:
    """Nonblocking independent read (deferred-at-wait)."""
    return IoRequest("iread_at", lambda: mf.read_at(offset_etypes, count))
