"""MPI-IO on the simulated substrate.

Implements the surface the paper's baselines need:

* **File views** (``MPI_File_set_view`` with displacement/etype/filetype) —
  the machinery OCIO requires applications to write (Program 2).
* **Independent I/O** (``read_at``/``write_at``/``seek``/``read``/``write``)
  with optional data sieving — "vanilla MPI-IO" in Figs. 9/10.
* **Collective two-phase I/O** (``read_at_all``/``write_at_all``) — the
  ROMIO algorithm: file domains from the aggregate min/max offsets,
  all-to-all exchange over nonblocking two-sided messaging, aggregators
  issuing large contiguous accesses. This is the paper's "OCIO".
"""

from repro.mpiio.fileview import FileView
from repro.mpiio.file import MpiFile, MODE_RDONLY, MODE_WRONLY, MODE_RDWR, MODE_CREATE
from repro.mpiio.hints import IoHints

__all__ = [
    "FileView",
    "MpiFile",
    "IoHints",
    "MODE_RDONLY",
    "MODE_WRONLY",
    "MODE_RDWR",
    "MODE_CREATE",
]
