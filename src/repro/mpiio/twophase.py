"""Two-phase collective I/O — the paper's "OCIO" (ROMIO's algorithm).

Write path (Section III.A of the paper):

1. Ranks allgather their min/max accessed file offsets; the aggregate
   ``[gmin, gmax)`` region is divided into equal, disjoint *file domains*,
   one per aggregator ("each region is assigned to a temporary buffer per
   process").
2. **Data exchange phase**: every rank splits its pieces by file domain and
   ships them to the owning aggregators with nonblocking two-sided
   messaging (irecvs first, then isends, then waitall) — the synchronized
   all-to-all whose matching/connection costs grow with process count.
3. **I/O phase**: each aggregator assembles its domain in a temporary
   buffer sized like the whole domain (the memory behaviour behind the
   Fig. 6 OOM) and issues one large contiguous storage access.

The read path runs the phases in reverse: aggregators read their domains,
then scatter requested blocks back to the requesting ranks.
"""

from __future__ import annotations

import bisect
from typing import Optional, TYPE_CHECKING

from repro.faults.retry import pfs_retry
from repro.obs.spans import NULL_TRACER
from repro.simmpi import collectives
from repro.simmpi.comm import CTX_COLL, pack_object, unpack_object, wait_all
from repro.topo import (
    NodeTopology,
    StagingBuffer,
    charge_staging_copy,
    coalesce_blocks,
    split_by_node,
)
from repro.util.errors import MpiIoError
from repro.util.intervals import Extent

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpiio.file import MpiFile


class FileDomains:
    """The equal division of ``[gmin, gmax)`` over the aggregators."""

    def __init__(self, gmin: int, gmax: int, naggs: int, align: int = 1):
        if gmax < gmin:
            raise MpiIoError(f"bad aggregate region [{gmin}, {gmax})")
        if naggs < 1:
            raise MpiIoError("need at least one aggregator")
        self.gmin = gmin
        self.gmax = gmax
        self.naggs = naggs
        total = gmax - gmin
        base, rem = divmod(total, naggs)
        bounds = [gmin]
        for i in range(naggs):
            size = base + (1 if i < rem else 0)
            bounds.append(bounds[-1] + size)
        if align > 1:
            # Ablation: snap interior boundaries up to lock-unit multiples.
            for i in range(1, naggs):
                snapped = -(-(bounds[i] - gmin) // align) * align + gmin
                bounds[i] = min(max(snapped, bounds[i - 1]), gmax)
            bounds[naggs] = gmax
        self.bounds = bounds

    def domain(self, agg: int) -> Extent:
        """Aggregator *agg*'s file domain extent."""
        return Extent(self.bounds[agg], self.bounds[agg + 1])

    def owner_of(self, offset: int) -> int:
        """Aggregator whose domain contains file byte *offset*."""
        if not (self.gmin <= offset < self.gmax):
            raise MpiIoError(f"offset {offset} outside aggregate region")
        idx = bisect.bisect_right(self.bounds, offset) - 1
        return min(idx, self.naggs - 1)

    def split(self, extent: Extent) -> list[tuple[int, Extent]]:
        """Cut *extent* at domain boundaries: (aggregator, piece) pairs."""
        out: list[tuple[int, Extent]] = []
        pos = extent.start
        while pos < extent.stop:
            agg = self.owner_of(pos)
            stop = min(extent.stop, self.bounds[agg + 1])
            out.append((agg, Extent(pos, stop)))
            pos = stop
        return out


def spread_aggregators(topo: NodeTopology, naggs: int) -> list[int]:
    """Topology-aware aggregator placement: round-robin across nodes.

    The flat path puts the ``cb_nodes`` aggregators on ranks
    ``0..naggs-1``, which packs them onto the first few nodes — every
    exchange message then converges on those NICs. Taking the k-th rank
    of each node in turn (leaders first) spreads the aggregators over as
    many nodes as possible, and guarantees one aggregator per node
    whenever ``naggs >= n_nodes``.
    """
    per_node = [topo.ranks_on_node(n) for n in topo.nodes]
    out: list[int] = []
    k = 0
    while len(out) < naggs:
        for members in per_node:
            if k < len(members):
                out.append(members[k])
                if len(out) == naggs:
                    break
        k += 1
    return out


class NodeExchange:
    """Per-handle state of the node-aggregated exchange (``cb_aggregation``).

    The exchange replaces the flat counts-alltoall + rank-to-aggregator
    data pattern with a **fixed, data-independent edge set**:

    * ranks sharing the aggregator's node send to it directly (intra-node);
    * every other node contributes exactly one message, sent by its leader,
      who coalesces the node's staged pieces (``repro.topo``);
    * a node whose leader is in the *down* set (``FaultSpec.
      unreachable_ranks`` — static and globally known, so every rank
      computes the same edges) degrades to flat: its members each send
      directly instead of staging.

    Because the edges are known from topology alone, every edge is always
    sent (possibly empty) and the counts exchange disappears — that
    alltoall alone costs P(P-1) messages regardless of payload.
    """

    def __init__(self, mf: "MpiFile", node_comm):
        comm = mf.comm
        self.comm = comm
        self.topo = NodeTopology.from_comm(comm)
        self.node_comm = node_comm
        self.node = self.topo.node_of_rank(comm.rank)
        self.leader = self.topo.leader_of(self.node)  # comm rank
        self.is_leader = comm.rank == self.leader
        plan = getattr(mf.env.world, "faults", None)
        self.down: set[int] = (
            set(plan.spec.unreachable_ranks) if plan is not None else set()
        )
        self.stage: StagingBuffer = mf.env.world.shared.setdefault(
            ("ocio-stage", comm._comm_id, self.node),
            StagingBuffer(self.node, comm.world_rank(self.leader)),
        )
        self._seq = 0

    @classmethod
    def create(cls, mf: "MpiFile"):
        """Collective construction (coroutine): the node split barriers."""
        topo = NodeTopology.from_comm(mf.comm)
        node_comm = yield from split_by_node(mf.comm, topo)
        return cls(mf, node_comm)

    @property
    def active(self) -> bool:
        """False on a single node — everything is intra-node already."""
        return self.topo.n_nodes > 1

    def next_seq(self) -> int:
        """A per-collective-call staging-key counter (lockstep on all ranks)."""
        self._seq += 1
        return self._seq

    def leader_down(self, node: int) -> bool:
        """True when *node*'s leader is in the static down set."""
        return self.comm.world_rank(self.topo.leader_of(node)) in self.down

    def routes_direct(self, sender: int, agg: int) -> bool:
        """Whether *sender* messages aggregator *agg* itself (comm ranks)."""
        return self.topo.same_node(sender, agg) or self.leader_down(
            self.topo.node_of_rank(sender)
        )

    def senders_for(self, agg: int) -> list[int]:
        """The comm ranks expected to message aggregator *agg* (fixed edges)."""
        out: list[int] = []
        a_node = self.topo.node_of_rank(agg)
        for n in self.topo.nodes:
            members = self.topo.ranks_on_node(n)
            if n == a_node:
                out.extend(r for r in members if r != agg)
            elif self.leader_down(n):
                out.extend(members)
            else:
                out.append(self.topo.leader_of(n))
        return out


def _get_node_exchange(mf: "MpiFile"):
    """The handle's NodeExchange, or None when the flat path applies.

    Coroutine, built lazily at the first collective call (its
    ``split_by_node`` is collective, and every rank reaches this point in
    lockstep).
    """
    if mf.hints.cb_aggregation != "node":
        return None
    if mf._nodex is None:
        mf._nodex = yield from NodeExchange.create(mf)
    return mf._nodex if mf._nodex.active else None


def _setup(mf: "MpiFile", stream_pos: int, nbytes: int):
    """Common prologue (coroutine): pieces, global region, file domains."""
    comm = mf.comm
    pieces = mf.view.map_pieces(stream_pos, nbytes) if nbytes else []
    lo = pieces[0][0].start if pieces else None
    hi = pieces[-1][0].stop if pieces else None
    ranges = yield from collectives.allgather(comm, (lo, hi))
    los = [lo_ for lo_, _ in ranges if lo_ is not None]
    his = [h for _, h in ranges if h is not None]
    if not los:
        return pieces, None
    gmin, gmax = min(los), max(his)
    naggs = mf.hints.cb_nodes or comm.size
    naggs = min(naggs, comm.size)
    align = mf.pfs_file.layout.stripe_size if mf.hints.cb_align_stripes else 1
    domains = FileDomains(gmin, gmax, naggs, align)
    return pieces, domains


def _copy_cost(mf: "MpiFile", nbytes: int) -> None:
    if nbytes > 0:
        mf.env.compute(nbytes / mf.env.world.fabric.spec.memcpy_bandwidth)


def write_all(mf: "MpiFile", stream_pos: int, data: bytes):
    """Collective write of *data* at view stream position *stream_pos*
    (coroutine)."""
    if mf.hints.cb_rounds_buffer is not None:
        return (yield from write_all_rounds(mf, stream_pos, data))
    nx = yield from _get_node_exchange(mf)
    if nx is not None:
        return (yield from _write_all_node(mf, stream_pos, data, nx))
    comm = mf.comm
    rank, size = comm.rank, comm.size
    world = mf.env.world
    tracer = world.trace.tracer if world.trace is not None else NULL_TRACER
    t0 = world.engine.now
    pieces, domains = yield from _setup(mf, stream_pos, len(data))
    if domains is None:
        yield from collectives.barrier(comm)
        return

    # ---- split local pieces by file domain --------------------------
    send_lists: dict[int, list[tuple[int, bytes]]] = {}
    for ext, mem_off in pieces:
        for agg, piece in domains.split(ext):
            block = data[mem_off + (piece.start - ext.start) : mem_off + (piece.stop - ext.start)]
            send_lists.setdefault(agg, []).append((piece.start, block))
    _copy_cost(mf, sum(e.length for e, _ in pieces))  # pack into messages

    # ---- exchange counts, then the data (irecvs first, like ROMIO) --
    out_counts = [0] * size
    for agg, lst in send_lists.items():
        out_counts[agg] = sum(len(b) for _, b in lst)
    in_counts = yield from collectives.alltoall(comm, out_counts)

    tag = collectives._next_tag(comm)
    my_domain: Optional[Extent] = None
    tempbuf = None
    alloc = None
    if rank < domains.naggs:
        my_domain = domains.domain(rank)
        # The aggregator's temporary buffer spans its whole file domain —
        # the allocation that OOMs at the paper's 48 GB point.
        alloc = world.memory.allocate(rank, my_domain.length, "ocio.tempbuf")
        tempbuf = bytearray(my_domain.length)
    recv_reqs = []
    for src in range(size):
        if in_counts[src] > 0 and src != rank:
            req = yield from comm.irecv(src, tag, context=CTX_COLL)
            recv_reqs.append((src, req))
    for agg, lst in send_lists.items():
        if agg != rank:
            yield from comm.isend(pack_object(lst), agg, tag, context=CTX_COLL)

    covered = 0
    if my_domain is not None and tempbuf is not None:
        local = send_lists.get(rank, [])
        with tracer.span("ocio.exchange", peers=len(recv_reqs)):
            yield from wait_all([req for _, req in recv_reqs])
        incoming = [local] + [
            unpack_object(req.payload) for _, req in recv_reqs
        ]
        for lst in incoming:
            for off, block in lst:
                lo = off - my_domain.start
                tempbuf[lo : lo + len(block)] = block
                covered += len(block)
        _copy_cost(mf, covered)

        # ---- I/O phase ------------------------------------------------
        if my_domain.length > 0:
            with tracer.span("ocio.io", bytes=my_domain.length):
                if covered < my_domain.length:
                    # Holes in the domain: read-modify-write preserves them.
                    existing = yield from pfs_retry(
                        world,
                        "ocio.io.read",
                        lambda t: mf.client.read(
                            mf.pfs_file, my_domain.start, my_domain.length,
                            owner=rank, lock_timeout=t,
                        ),
                    )
                    merged = bytearray(existing)
                    for lst in incoming:
                        for off, block in lst:
                            lo = off - my_domain.start
                            merged[lo : lo + len(block)] = block
                    tempbuf = merged
                payload = bytes(tempbuf)
                yield from pfs_retry(
                    world,
                    "ocio.io.write",
                    lambda t: mf.client.write(
                        mf.pfs_file, my_domain.start, payload,
                        owner=rank, lock_timeout=t,
                    ),
                )
        world.memory.free(alloc)
    else:
        with tracer.span("ocio.exchange", peers=len(recv_reqs)):
            yield from wait_all([req for _, req in recv_reqs])

    if world.trace is not None:
        world.trace.count("ocio.write_all", len(data))
        world.trace.complete("ocio.write_all", t0, world.engine.now, bytes=len(data))
    yield from collectives.barrier(comm)


def _write_all_node(
    mf: "MpiFile", stream_pos: int, data: bytes, nx: NodeExchange
):
    """Collective write with node-aggregated exchange (coroutine; see
    NodeExchange)."""
    comm = mf.comm
    rank = comm.rank
    world = mf.env.world
    tracer = world.trace.tracer if world.trace is not None else NULL_TRACER
    t0 = world.engine.now
    pieces, domains = yield from _setup(mf, stream_pos, len(data))
    if domains is None:
        yield from collectives.barrier(comm)
        return
    aggs = spread_aggregators(nx.topo, domains.naggs)
    my_agg = {a: i for i, a in enumerate(aggs)}.get(rank)

    # ---- split local pieces by file domain --------------------------
    send_lists: dict[int, list[tuple[int, bytes]]] = {}
    for ext, mem_off in pieces:
        for di, piece in domains.split(ext):
            block = data[
                mem_off + (piece.start - ext.start) : mem_off + (piece.stop - ext.start)
            ]
            send_lists.setdefault(di, []).append((piece.start, block))
    _copy_cost(mf, sum(e.length for e, _ in pieces))  # pack into messages

    # ---- stage remote-bound pieces with the node leader -------------
    seq = nx.next_seq()
    tag = collectives._next_tag(comm)
    for di, agg in enumerate(aggs):
        lst = send_lists.get(di)
        if not lst or nx.routes_direct(rank, agg):
            continue
        nbytes = sum(len(b) for _, b in lst)
        yield from charge_staging_copy(world, mf.env.rank, nbytes)
        alloc = world.memory.allocate(mf.env.rank, nbytes, "topo.staging")
        nx.stage.deposit(("w", seq, di), lst, nbytes, allocation=alloc)
    yield from collectives.barrier(nx.node_comm)  # deposits visible to leader

    # ---- fixed-edge exchange ----------------------------------------
    my_domain: Optional[Extent] = None
    tempbuf = None
    alloc = None
    recv_reqs = []
    if my_agg is not None:
        my_domain = domains.domain(my_agg)
        alloc = world.memory.allocate(rank, my_domain.length, "ocio.tempbuf")
        tempbuf = bytearray(my_domain.length)
        for src in nx.senders_for(rank):
            req = yield from comm.irecv(src, tag, context=CTX_COLL)
            recv_reqs.append((src, req))
    for di, agg in enumerate(aggs):  # direct edges: always send, even empty
        if agg != rank and nx.routes_direct(rank, agg):
            yield from comm.isend(
                pack_object(send_lists.get(di, [])), agg, tag, context=CTX_COLL
            )
    if nx.is_leader and not nx.leader_down(nx.node):
        # One coalesced message per remote-node aggregator (always sent:
        # the edge set is fixed, so empty drains still close the edge).
        for di, agg in enumerate(aggs):
            if nx.topo.node_of_rank(agg) == nx.node:
                continue
            staged = nx.stage.drain(("w", seq, di))
            nbytes = sum(len(b) for _, b in staged)
            if nbytes:
                yield from charge_staging_copy(world, mf.env.rank, nbytes)
            merged = coalesce_blocks(staged)
            yield from comm.isend(pack_object(merged), agg, tag, context=CTX_COLL)
            for stale in nx.stage.drain_allocs(("w", seq, di)):
                world.memory.free(stale)
            if world.trace is not None:
                world.trace.count("topo.drain.messages")
                world.trace.count("topo.drain.bytes", nbytes)

    # ---- aggregator assembly + I/O phase ----------------------------
    if my_domain is not None and tempbuf is not None:
        local = send_lists.get(my_agg, [])
        with tracer.span("topo.exchange", peers=len(recv_reqs)):
            yield from wait_all([req for _, req in recv_reqs])
        incoming = [local] + [unpack_object(req.payload) for _, req in recv_reqs]
        covered = 0
        for lst in incoming:
            for off, block in lst:
                lo = off - my_domain.start
                tempbuf[lo : lo + len(block)] = block
                covered += len(block)
        _copy_cost(mf, covered)
        if my_domain.length > 0:
            with tracer.span("ocio.io", bytes=my_domain.length):
                if covered < my_domain.length:
                    existing = yield from pfs_retry(
                        world,
                        "ocio.io.read",
                        lambda t: mf.client.read(
                            mf.pfs_file, my_domain.start, my_domain.length,
                            owner=rank, lock_timeout=t,
                        ),
                    )
                    merged_buf = bytearray(existing)
                    for lst in incoming:
                        for off, block in lst:
                            lo = off - my_domain.start
                            merged_buf[lo : lo + len(block)] = block
                    tempbuf = merged_buf
                payload = bytes(tempbuf)
                yield from pfs_retry(
                    world,
                    "ocio.io.write",
                    lambda t: mf.client.write(
                        mf.pfs_file, my_domain.start, payload,
                        owner=rank, lock_timeout=t,
                    ),
                )
        world.memory.free(alloc)

    if world.trace is not None:
        world.trace.count("ocio.write_all", len(data))
        world.trace.complete("ocio.write_all", t0, world.engine.now, bytes=len(data))
    yield from collectives.barrier(comm)


def read_all(mf: "MpiFile", stream_pos: int, nbytes: int):
    """Collective read (coroutine); returns the view-stream bytes."""
    nx = yield from _get_node_exchange(mf)
    if nx is not None:
        return (yield from _read_all_node(mf, stream_pos, nbytes, nx))
    comm = mf.comm
    rank, size = comm.rank, comm.size
    world = mf.env.world
    t0 = world.engine.now
    pieces, domains = yield from _setup(mf, stream_pos, nbytes)
    if domains is None:
        return b""

    # ---- send my requests to the owning aggregators -----------------
    request_lists: dict[int, list[tuple[int, int]]] = {}
    for ext, _mem in pieces:
        for agg, piece in domains.split(ext):
            request_lists.setdefault(agg, []).append((piece.start, piece.length))
    out_reqs = [request_lists.get(agg, []) for agg in range(size)]
    in_reqs = yield from collectives.alltoall(comm, out_reqs)

    # ---- aggregators read their domains and serve --------------------
    tag = collectives._next_tag(comm)
    reply_reqs = []
    for agg in sorted(request_lists):
        if agg != rank:
            req = yield from comm.irecv(agg, tag, context=CTX_COLL)
            reply_reqs.append((agg, req))
    served_local: list[tuple[int, bytes]] = []
    if rank < domains.naggs:
        my_domain = domains.domain(rank)
        needed = any(in_reqs[src] for src in range(size))
        if needed and my_domain.length > 0:
            alloc = world.memory.allocate(rank, my_domain.length, "ocio.tempbuf")
            blob = yield from pfs_retry(
                world,
                "ocio.read.domain",
                lambda t: mf.client.read(
                    mf.pfs_file, my_domain.start, my_domain.length,
                    owner=rank, lock_timeout=t,
                ),
            )
            for src in range(size):
                if not in_reqs[src]:
                    continue
                blocks = [
                    (off, blob[off - my_domain.start : off - my_domain.start + ln])
                    for off, ln in in_reqs[src]
                ]
                _copy_cost(mf, sum(ln for _, ln in in_reqs[src]))
                if src == rank:
                    served_local = blocks
                else:
                    yield from comm.isend(
                        pack_object(blocks), src, tag, context=CTX_COLL
                    )
            world.memory.free(alloc)

    # ---- assemble the local result ------------------------------------
    received: dict[int, list[tuple[int, bytes]]] = {}
    if served_local:
        received[rank] = served_local
    yield from wait_all([req for _, req in reply_reqs])
    for agg, req in reply_reqs:
        received[agg] = unpack_object(req.payload)
    out = bytearray(nbytes)
    by_offset: dict[int, bytes] = {}
    for blocks in received.values():
        for off, block in blocks:
            by_offset[off] = block
    for ext, mem_off in pieces:
        for _agg, piece in domains.split(ext):
            block = by_offset[piece.start]
            lo = mem_off + (piece.start - ext.start)
            out[lo : lo + len(block)] = block
    _copy_cost(mf, sum(e.length for e, _ in pieces))
    if world.trace is not None:
        world.trace.count("ocio.read_all", nbytes)
        world.trace.complete("ocio.read_all", t0, world.engine.now, bytes=nbytes)
    return bytes(out)


def _read_all_node(
    mf: "MpiFile", stream_pos: int, nbytes: int, nx: NodeExchange
):
    """Collective read with node-aggregated requests (coroutine; see
    NodeExchange).

    Requests ride the same fixed edge set as the write exchange — same-node
    ranks ask their aggregator directly, every other node's leader merges
    its members' requests into one message. Request messages are lists of
    ``(src, [(offset, length), ...])`` pairs so the aggregator can reply to
    each requester directly; replies exist only for nonempty requests (the
    requester knows whether it asked, so the edge needs no counts round).
    """
    comm = mf.comm
    rank, size = comm.rank, comm.size
    world = mf.env.world
    t0 = world.engine.now
    pieces, domains = yield from _setup(mf, stream_pos, nbytes)
    if domains is None:
        return b""
    aggs = spread_aggregators(nx.topo, domains.naggs)
    my_agg = {a: i for i, a in enumerate(aggs)}.get(rank)

    request_lists: dict[int, list[tuple[int, int]]] = {}
    for ext, _mem in pieces:
        for di, piece in domains.split(ext):
            request_lists.setdefault(di, []).append((piece.start, piece.length))

    # ---- ship requests over the fixed edges -------------------------
    seq = nx.next_seq()
    tag = collectives._next_tag(comm)  # requests
    tag2 = collectives._next_tag(comm)  # replies
    for di, agg in enumerate(aggs):
        lst = request_lists.get(di)
        if lst and not nx.routes_direct(rank, agg):
            nx.stage.deposit(("r", seq, di), [(rank, lst)], 0)
    yield from collectives.barrier(nx.node_comm)

    req_reqs = []
    if my_agg is not None:
        for src in nx.senders_for(rank):
            req = yield from comm.irecv(src, tag, context=CTX_COLL)
            req_reqs.append((src, req))
    for di, agg in enumerate(aggs):  # direct request edges: always send
        if agg != rank and nx.routes_direct(rank, agg):
            lst = request_lists.get(di)
            yield from comm.isend(
                pack_object([(rank, lst)] if lst else []),
                agg, tag, context=CTX_COLL,
            )
    if nx.is_leader and not nx.leader_down(nx.node):
        for di, agg in enumerate(aggs):
            if nx.topo.node_of_rank(agg) == nx.node:
                continue
            merged = nx.stage.drain(("r", seq, di))
            yield from comm.isend(pack_object(merged), agg, tag, context=CTX_COLL)
            if world.trace is not None:
                world.trace.count("topo.drain.messages")

    # Reply irecvs: one per aggregator this rank asked (nonempty only).
    reply_reqs = []
    for di in sorted(request_lists):
        if aggs[di] != rank:
            req = yield from comm.irecv(aggs[di], tag2, context=CTX_COLL)
            reply_reqs.append((aggs[di], req))

    # ---- aggregators read their domains and serve --------------------
    served_local: list[tuple[int, bytes]] = []
    if my_agg is not None:
        my_domain = domains.domain(my_agg)
        yield from wait_all([req for _, req in req_reqs])
        in_pairs: list[tuple[int, list[tuple[int, int]]]] = []
        local = request_lists.get(my_agg)
        if local:
            in_pairs.append((rank, local))
        for _src, req in req_reqs:
            in_pairs.extend(unpack_object(req.payload))
        if in_pairs and my_domain.length > 0:
            alloc = world.memory.allocate(rank, my_domain.length, "ocio.tempbuf")
            blob = yield from pfs_retry(
                world,
                "ocio.read.domain",
                lambda t: mf.client.read(
                    mf.pfs_file, my_domain.start, my_domain.length,
                    owner=rank, lock_timeout=t,
                ),
            )
            for src, lst in in_pairs:
                blocks = [
                    (off, blob[off - my_domain.start : off - my_domain.start + ln])
                    for off, ln in lst
                ]
                _copy_cost(mf, sum(ln for _, ln in lst))
                if src == rank:
                    served_local = blocks
                else:
                    yield from comm.isend(
                        pack_object(blocks), src, tag2, context=CTX_COLL
                    )
            world.memory.free(alloc)

    # ---- assemble the local result ------------------------------------
    received: dict[int, list[tuple[int, bytes]]] = {}
    if served_local:
        received[rank] = served_local
    yield from wait_all([req for _, req in reply_reqs])
    for agg, req in reply_reqs:
        received[agg] = unpack_object(req.payload)
    out = bytearray(nbytes)
    by_offset: dict[int, bytes] = {}
    for blocks in received.values():
        for off, block in blocks:
            by_offset[off] = block
    for ext, mem_off in pieces:
        for _di, piece in domains.split(ext):
            block = by_offset[piece.start]
            lo = mem_off + (piece.start - ext.start)
            out[lo : lo + len(block)] = block
    _copy_cost(mf, sum(e.length for e, _ in pieces))
    if world.trace is not None:
        world.trace.count("ocio.read_all", nbytes)
        world.trace.complete("ocio.read_all", t0, world.engine.now, bytes=nbytes)
    return bytes(out)


def write_all_rounds(mf: "MpiFile", stream_pos: int, data: bytes):
    """Two-phase write in ROMIO's rounds (coroutine; ``cb_buffer_size``).

    The aggregator's temporary buffer is capped at
    ``hints.cb_rounds_buffer`` bytes: the exchange + I/O phases repeat over
    successive slices of every file domain, bounding memory at the price
    of one synchronized exchange per round — ROMIO's real memory/latency
    trade-off (the paper's memory analysis assumes the whole-domain buffer,
    hence Fig. 6's OOM; this is the ablation counterpart).
    """
    comm = mf.comm
    rank, size = comm.rank, comm.size
    world = mf.env.world
    t0 = world.engine.now
    cap = mf.hints.cb_rounds_buffer
    assert cap is not None
    pieces, domains = yield from _setup(mf, stream_pos, len(data))
    if domains is None:
        yield from collectives.barrier(comm)
        return

    longest = max(domains.domain(a).length for a in range(domains.naggs))
    n_rounds = max(1, -(-longest // cap))
    my_domain = domains.domain(rank) if rank < domains.naggs else None
    alloc = None
    if my_domain is not None and my_domain.length:
        alloc = world.memory.allocate(
            rank, min(cap, my_domain.length), "ocio.round_buffer"
        )

    for rnd in range(n_rounds):
        # This round's slice of every aggregator's domain.
        def round_slice(agg: int) -> Extent:
            d = domains.domain(agg)
            lo = min(d.stop, d.start + rnd * cap)
            hi = min(d.stop, lo + cap)
            return Extent(lo, hi)

        send_lists: dict[int, list[tuple[int, bytes]]] = {}
        sent_bytes = 0
        for ext, mem_off in pieces:
            for agg, piece in domains.split(ext):
                sl = round_slice(agg)
                part = piece.intersect(sl)
                if part.is_empty():
                    continue
                block = data[
                    mem_off + (part.start - ext.start) : mem_off + (part.stop - ext.start)
                ]
                send_lists.setdefault(agg, []).append((part.start, block))
                sent_bytes += len(block)
        _copy_cost(mf, sent_bytes)

        out_counts = [0] * size
        for agg, lst in send_lists.items():
            out_counts[agg] = sum(len(b) for _, b in lst)
        in_counts = yield from collectives.alltoall(comm, out_counts)

        tag = collectives._next_tag(comm)
        recv_reqs = []
        for src in range(size):
            if in_counts[src] > 0 and src != rank:
                req = yield from comm.irecv(src, tag, context=CTX_COLL)
                recv_reqs.append((src, req))
        for agg, lst in send_lists.items():
            if agg != rank:
                yield from comm.isend(pack_object(lst), agg, tag, context=CTX_COLL)
        yield from wait_all([req for _, req in recv_reqs])

        if my_domain is not None:
            sl = round_slice(rank)
            if not sl.is_empty():
                chunk = bytearray(sl.length)
                covered = 0
                incoming = [send_lists.get(rank, [])] + [
                    unpack_object(req.payload) for _, req in recv_reqs
                ]
                for lst in incoming:
                    for off, block in lst:
                        lo = off - sl.start
                        chunk[lo : lo + len(block)] = block
                        covered += len(block)
                _copy_cost(mf, covered)
                if covered < sl.length:
                    existing = yield from pfs_retry(
                        world,
                        "ocio.rounds.read",
                        lambda t, _sl=sl: mf.client.read(
                            mf.pfs_file, _sl.start, _sl.length,
                            owner=rank, lock_timeout=t,
                        ),
                    )
                    merged = bytearray(existing)
                    for lst in incoming:
                        for off, block in lst:
                            lo = off - sl.start
                            merged[lo : lo + len(block)] = block
                    chunk = merged
                payload = bytes(chunk)
                yield from pfs_retry(
                    world,
                    "ocio.rounds.write",
                    lambda t, _sl=sl, _p=payload: mf.client.write(
                        mf.pfs_file, _sl.start, _p, owner=rank, lock_timeout=t
                    ),
                )
    if alloc is not None:
        world.memory.free(alloc)
    if world.trace is not None:
        world.trace.count("ocio.write_all_rounds", len(data))
        world.trace.complete(
            "ocio.write_all_rounds", t0, world.engine.now, bytes=len(data)
        )
    yield from collectives.barrier(comm)
