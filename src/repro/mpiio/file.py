"""``MPI_File``: the handle applications hold.

Mirrors the MPI-IO calls the paper's code listings use:

* ``MPI_File_open`` / ``MPI_File_close`` (collective),
* ``MPI_File_set_view`` (Program 2 step 10),
* ``MPI_File_write_all`` / ``read_all`` — OCIO's collective path,
* ``write_at`` / ``read_at`` / ``seek`` / ``write`` / ``read`` — the
  independent path ("vanilla MPI-IO" in the ART comparison).

Offsets follow MPI semantics: counted in **etypes** of the current view.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mpiio import independent, twophase
from repro.mpiio.fileview import FileView
from repro.mpiio.hints import IoHints
from repro.pfs.file import PfsFile
from repro.pfs.filesystem import PfsClient
from repro.simmpi import collectives
from repro.simmpi.datatypes import BYTE, Datatype
from repro.simmpi.mpi import RankEnv
from repro.util.errors import MpiIoError

MODE_RDONLY = 0x1
MODE_WRONLY = 0x2
MODE_RDWR = 0x4
MODE_CREATE = 0x8


def _coerce_bytes(data: object) -> bytes:
    if isinstance(data, bytes):
        return data
    if isinstance(data, (bytearray, memoryview)):
        return bytes(data)
    if isinstance(data, np.ndarray):
        return np.ascontiguousarray(data).tobytes()
    raise MpiIoError(f"unsupported buffer type {type(data).__name__}")


class MpiFile:
    """One rank's handle on a shared file."""

    def __init__(
        self,
        env: RankEnv,
        pfs_file: PfsFile,
        mode: int,
        hints: IoHints,
    ):
        self.env = env
        self.comm = env.comm.dup()  # library-internal matching context
        self.pfs_file = pfs_file
        self.mode = mode
        self.hints = hints
        self.view = FileView()
        self._position = 0  # individual file pointer, in etypes
        self._closed = False
        self._nodex = None  # lazy NodeExchange (hints.cb_aggregation="node")
        node = env.world.node_of[env.rank]
        self.client: PfsClient = env.pfs.client(node)

    # ------------------------------------------------------------------
    # lifecycle (collective)
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        env: RankEnv,
        name: str,
        mode: int = MODE_RDWR | MODE_CREATE,
        hints: Optional[IoHints] = None,
    ):
        """Collective open (coroutine): ``mf = yield from MpiFile.open(...)``.

        Every rank of the communicator must call it."""
        hints = hints or IoHints()
        hints.validate()
        if not (mode & (MODE_RDONLY | MODE_WRONLY | MODE_RDWR)):
            raise MpiIoError("open mode needs RDONLY, WRONLY or RDWR")
        if mode & MODE_CREATE:
            pfs_file = env.pfs.create(name)
        else:
            pfs_file = env.pfs.lookup(name)
        handle = cls(env, pfs_file, mode, hints)
        yield from collectives.barrier(handle.comm)
        return handle

    def close(self):
        """Collective close (coroutine; synchronizes, like MPI_File_close)."""
        self._check_open()
        yield from collectives.barrier(self.comm)
        self._closed = True

    # ------------------------------------------------------------------
    # views and pointers
    # ------------------------------------------------------------------
    def set_view(
        self,
        displacement: int = 0,
        etype: Datatype = BYTE,
        filetype: Optional[Datatype] = None,
    ):
        """MPI_File_set_view: collective coroutine; resets the pointer."""
        self._check_open()
        self.view = FileView(displacement, etype, filetype)
        self._position = 0
        yield from collectives.barrier(self.comm)

    def seek(self, offset_etypes: int, whence: int = 0) -> None:
        """MPI_File_seek: whence 0=set, 1=cur, 2=end (end in etypes of view)."""
        self._check_open()
        if whence == 0:
            new = offset_etypes
        elif whence == 1:
            new = self._position + offset_etypes
        elif whence == 2:
            new = self.size_etypes() + offset_etypes
        else:
            raise MpiIoError(f"bad seek whence {whence}")
        if new < 0:
            raise MpiIoError(f"seek to negative offset {new}")
        self._position = new

    def tell(self) -> int:
        """The individual file pointer, in etypes."""
        return self._position

    def size_bytes(self) -> int:
        """Current file size in bytes."""
        return self.pfs_file.size

    def size_etypes(self) -> int:
        """File size expressed in view etypes (rounded down)."""
        return self.view.stream_size_for(self.pfs_file.size) // self.view.etype.size

    # ------------------------------------------------------------------
    # independent I/O
    # ------------------------------------------------------------------
    def write_at(self, offset_etypes: int, data: object, count: Optional[int] = None,
                 datatype: Datatype = BYTE):
        """Independent write at an explicit view offset (coroutine);
        returns bytes written."""
        self._check_open(writing=True)
        payload = self._prepare(data, count, datatype)
        yield from independent.write_view(
            self, self.view.byte_offset(offset_etypes), payload
        )
        return len(payload)

    def read_at(self, offset_etypes: int, count: int, datatype: Datatype = BYTE):
        """Independent read at an explicit view offset (coroutine);
        returns raw bytes."""
        self._check_open(reading=True)
        nbytes = count * datatype.size
        return (
            yield from independent.read_view(
                self, self.view.byte_offset(offset_etypes), nbytes
            )
        )

    def write(self, data: object, count: Optional[int] = None, datatype: Datatype = BYTE):
        """Independent write at the individual pointer (coroutine;
        advances it)."""
        self._check_open(writing=True)
        payload = self._prepare(data, count, datatype)
        yield from independent.write_view(
            self, self.view.byte_offset(self._position), payload
        )
        self._advance(len(payload))
        return len(payload)

    def read(self, count: int, datatype: Datatype = BYTE):
        """Independent read at the individual pointer (coroutine;
        advances it)."""
        self._check_open(reading=True)
        nbytes = count * datatype.size
        out = yield from independent.read_view(
            self, self.view.byte_offset(self._position), nbytes
        )
        self._advance(nbytes)
        return out

    # ------------------------------------------------------------------
    # collective I/O (OCIO)
    # ------------------------------------------------------------------
    def write_at_all(self, offset_etypes: int, data: object, count: Optional[int] = None,
                     datatype: Datatype = BYTE):
        """MPI_File_write_at_all: two-phase collective write (coroutine)."""
        self._check_open(writing=True)
        payload = self._prepare(data, count, datatype)
        yield from twophase.write_all(
            self, self.view.byte_offset(offset_etypes), payload
        )
        return len(payload)

    def write_all(self, data: object, count: Optional[int] = None,
                  datatype: Datatype = BYTE):
        """MPI_File_write_all at the individual pointer (coroutine;
        Program 2 step 11)."""
        self._check_open(writing=True)
        payload = self._prepare(data, count, datatype)
        yield from twophase.write_all(
            self, self.view.byte_offset(self._position), payload
        )
        self._advance(len(payload))
        return len(payload)

    def read_at_all(self, offset_etypes: int, count: int, datatype: Datatype = BYTE):
        """MPI_File_read_at_all: two-phase collective read (coroutine)."""
        self._check_open(reading=True)
        nbytes = count * datatype.size
        return (
            yield from twophase.read_all(
                self, self.view.byte_offset(offset_etypes), nbytes
            )
        )

    def read_all(self, count: int, datatype: Datatype = BYTE):
        """MPI_File_read_all at the individual pointer (coroutine;
        advances it)."""
        self._check_open(reading=True)
        nbytes = count * datatype.size
        out = yield from twophase.read_all(
            self, self.view.byte_offset(self._position), nbytes
        )
        self._advance(nbytes)
        return out

    # ------------------------------------------------------------------
    # shared pointers, nonblocking ops, size management
    # ------------------------------------------------------------------
    def write_shared(self, data: object, count: Optional[int] = None,
                     datatype: Datatype = BYTE):
        """MPI_File_write_shared: write at the shared file pointer
        (coroutine).

        Returns the etype offset the write landed at.
        """
        self._check_open(writing=True)
        from repro.mpiio import shared

        return (
            yield from shared.write_shared(
                self, self._prepare(data, count, datatype)
            )
        )

    def read_shared(self, count: int):
        """MPI_File_read_shared: read at the shared pointer (coroutine);
        returns (etype offset, data)."""
        self._check_open(reading=True)
        from repro.mpiio import shared

        return (yield from shared.read_shared(self, count))

    def iwrite_at(self, offset_etypes: int, data: object,
                  count: Optional[int] = None, datatype: Datatype = BYTE):
        """MPI_File_iwrite_at: nonblocking independent write (request)."""
        self._check_open(writing=True)
        from repro.mpiio import shared

        return shared.iwrite_at(self, offset_etypes, self._prepare(data, count, datatype))

    def iread_at(self, offset_etypes: int, count: int):
        """MPI_File_iread_at: nonblocking independent read (request)."""
        self._check_open(reading=True)
        from repro.mpiio import shared

        return shared.iread_at(self, offset_etypes, count)

    def set_size(self, nbytes: int):
        """MPI_File_set_size (collective coroutine): truncate or extend."""
        self._check_open()
        if nbytes < 0:
            raise MpiIoError("negative file size")
        self.pfs_file.truncate(nbytes)
        yield from collectives.barrier(self.comm)

    def preallocate(self, nbytes: int):
        """MPI_File_preallocate (collective coroutine): at least *nbytes*."""
        self._check_open()
        if nbytes < 0:
            raise MpiIoError("negative preallocation")
        if nbytes > self.pfs_file.size:
            self.pfs_file.truncate(nbytes)
        yield from collectives.barrier(self.comm)

    def sync(self):
        """MPI_File_sync: flush (a no-op here: writes commit at their
        simulated completion time) plus the collective synchronization
        (coroutine)."""
        self._check_open()
        yield from collectives.barrier(self.comm)

    # ------------------------------------------------------------------
    def _prepare(self, data: object, count: Optional[int], datatype: Datatype) -> bytes:
        payload = _coerce_bytes(data)
        if count is not None:
            need = count * datatype.size
            if need > len(payload):
                raise MpiIoError(
                    f"buffer of {len(payload)} bytes too small for "
                    f"count={count} x {datatype.size}B"
                )
            payload = payload[:need]
        return payload

    def _advance(self, nbytes: int) -> None:
        if nbytes % self.view.etype.size != 0:
            raise MpiIoError("access is not a whole number of etypes")
        self._position += nbytes // self.view.etype.size

    def _check_open(self, *, writing: bool = False, reading: bool = False) -> None:
        if self._closed:
            raise MpiIoError("file handle is closed")
        if writing and not (self.mode & (MODE_WRONLY | MODE_RDWR)):
            raise MpiIoError("file not opened for writing")
        if reading and not (self.mode & (MODE_RDONLY | MODE_RDWR)):
            raise MpiIoError("file not opened for reading")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MpiFile {self.pfs_file.name!r} rank={self.env.rank}>"
