"""MPI_Info-style hints controlling the I/O paths (ROMIO conventions)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class IoHints:
    """Tunables for independent and collective I/O.

    Attributes
    ----------
    ds_read / ds_write:
        Enable data sieving for noncontiguous independent reads/writes
        (ROMIO's ``romio_ds_read``/``romio_ds_write``).
    ds_hole_threshold:
        Sieve only when useful bytes are at least this fraction of the
        bounding extent (avoids reading mostly-hole regions).
    cb_nodes:
        Number of aggregators for collective I/O; ``None`` means every
        rank aggregates — the paper's description ("each region is
        assigned to a temporary buffer per process").
    cb_align_stripes:
        Align file-domain boundaries to stripe/lock units, as ROMIO's
        lock-boundary file-domain partitioning does (Liao & Choudhary,
        SC'08 — the paper's reference [19]). On by default: unaligned
        domains make neighbouring aggregators contend for boundary lock
        units; in the size-compressed simulation the domains can shrink
        below one lock unit, which would turn that boundary effect into a
        whole-file serialization chain no full-size system exhibits.
        Disable for the ablation benchmark.
    cb_rounds_buffer:
        If set, two-phase runs in rounds with temp buffers capped at this
        many bytes (ROMIO's ``cb_buffer_size``); ``None`` reproduces the
        paper's memory model where the temp buffer holds the whole file
        domain (the Fig. 6 OOM).
    cb_aggregation:
        ``"flat"`` (default, the paper's OCIO) exchanges data rank-to-
        aggregator over the fabric, counts first. ``"node"`` stages
        remote-bound pieces in a per-node buffer and lets one leader per
        node ship a single coalesced message per remote aggregator over a
        fixed, data-independent edge set (no counts exchange), and spreads
        the ``cb_nodes`` aggregators round-robin across nodes instead of
        packing them onto the lowest ranks. See ``docs/topology.md``.
        Incompatible with ``cb_rounds_buffer`` (rounds stay flat-only).
    """

    ds_read: bool = True
    ds_write: bool = True
    ds_hole_threshold: float = 0.4
    cb_nodes: Optional[int] = None
    cb_align_stripes: bool = True
    cb_rounds_buffer: Optional[int] = None
    cb_aggregation: str = "flat"

    def validate(self) -> None:
        """Raise ValueError on out-of-range hints."""
        if not (0.0 <= self.ds_hole_threshold <= 1.0):
            raise ValueError("ds_hole_threshold must be in [0, 1]")
        if self.cb_nodes is not None and self.cb_nodes < 1:
            raise ValueError("cb_nodes must be >= 1")
        if self.cb_rounds_buffer is not None and self.cb_rounds_buffer < 1:
            raise ValueError("cb_rounds_buffer must be >= 1")
        if self.cb_aggregation not in ("flat", "node"):
            raise ValueError("cb_aggregation must be 'flat' or 'node'")
        if self.cb_aggregation == "node" and self.cb_rounds_buffer is not None:
            raise ValueError(
                "cb_aggregation='node' is incompatible with cb_rounds_buffer"
            )
