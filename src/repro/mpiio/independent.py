"""Independent (non-collective) I/O, with ROMIO-style data sieving.

A contiguous-in-view access that is noncontiguous in the file becomes many
small file requests; data sieving instead reads/writes the bounding extent
once and scatters/gathers in memory. For writes the sieve is a
read-modify-write (MPI's nonatomic default: concurrent overlapping writers
are undefined, so the two storage calls need not be atomic together).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.retry import pfs_retry
from repro.util.intervals import Extent

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpiio.file import MpiFile


def _copy_cost(mf: "MpiFile", nbytes: int) -> None:
    """Charge local scatter/gather memcpy time."""
    if nbytes > 0:
        mf.env.compute(nbytes / mf.env.world.fabric.spec.memcpy_bandwidth)


def write_view(mf: "MpiFile", stream_pos: int, data: bytes):
    """Write *data* at view stream position *stream_pos* (coroutine)."""
    if not data:
        return
    pieces = mf.view.map_pieces(stream_pos, len(data))
    rank = mf.env.rank
    world = mf.env.world
    if len(pieces) == 1:
        ext, _ = pieces[0]
        yield from pfs_retry(
            world,
            "mpiio.write",
            lambda t: mf.client.write(
                mf.pfs_file, ext.start, data, owner=rank, lock_timeout=t
            ),
        )
        return
    bounding = Extent(pieces[0][0].start, pieces[-1][0].stop)
    useful = sum(e.length for e, _ in pieces)
    hints = mf.hints
    if hints.ds_write and useful >= hints.ds_hole_threshold * bounding.length:
        # Sieve: read-modify-write under one exclusive lock (the two
        # storage operations must be atomic against other sieving writers
        # whose bounding extents overlap ours).
        _copy_cost(mf, useful)
        sieved = [
            (ext.start, data[mem_off : mem_off + ext.length])
            for ext, mem_off in pieces
        ]
        yield from pfs_retry(
            world,
            "mpiio.sieve_write",
            lambda t: mf.client.write_sieved(
                mf.pfs_file, sieved, owner=rank, lock_timeout=t
            ),
        )
        if world.trace is not None:
            world.trace.count("mpiio.sieve_write", useful)
        return
    for ext, mem_off in pieces:
        yield from pfs_retry(
            world,
            "mpiio.write",
            lambda t, _ext=ext, _off=mem_off: mf.client.write(
                mf.pfs_file,
                _ext.start,
                data[_off : _off + _ext.length],
                owner=rank,
                lock_timeout=t,
            ),
        )


def read_view(mf: "MpiFile", stream_pos: int, nbytes: int):
    """Read *nbytes* of the view stream starting at *stream_pos*
    (coroutine)."""
    if nbytes == 0:
        return b""
    pieces = mf.view.map_pieces(stream_pos, nbytes)
    rank = mf.env.rank
    world = mf.env.world
    if len(pieces) == 1:
        ext, _ = pieces[0]
        return (yield from pfs_retry(
            world,
            "mpiio.read",
            lambda t: mf.client.read(
                mf.pfs_file, ext.start, ext.length, owner=rank, lock_timeout=t
            ),
        ))
    bounding = Extent(pieces[0][0].start, pieces[-1][0].stop)
    useful = sum(e.length for e, _ in pieces)
    out = bytearray(nbytes)
    hints = mf.hints
    if hints.ds_read and useful >= hints.ds_hole_threshold * bounding.length:
        blob = yield from pfs_retry(
            world,
            "mpiio.sieve_read",
            lambda t: mf.client.read(
                mf.pfs_file, bounding.start, bounding.length,
                owner=rank, lock_timeout=t,
            ),
        )
        for ext, mem_off in pieces:
            lo = ext.start - bounding.start
            out[mem_off : mem_off + ext.length] = blob[lo : lo + ext.length]
        _copy_cost(mf, useful)
        if world.trace is not None:
            world.trace.count("mpiio.sieve_read", useful)
    else:
        for ext, mem_off in pieces:
            chunk = yield from pfs_retry(
                world,
                "mpiio.read",
                lambda t, _ext=ext: mf.client.read(
                    mf.pfs_file, _ext.start, _ext.length,
                    owner=rank, lock_timeout=t,
                ),
            )
            out[mem_off : mem_off + ext.length] = chunk
    return bytes(out)
