"""File views: mapping a linear data stream onto noncontiguous file bytes.

A view is ``(displacement, etype, filetype)``: the file appears to the rank
as the concatenation of the *data* bytes of successive filetype tiles,
starting at byte *displacement*. MPI file offsets count **etypes** within
that stream. ``map_extents`` translates a (stream position, byte count)
pair into the absolute file extents it touches — the single primitive both
independent and collective I/O build on.
"""

from __future__ import annotations

import bisect
from typing import Optional

from repro.simmpi.datatypes import BYTE, Datatype
from repro.util.errors import MpiIoError
from repro.util.intervals import Extent


class FileView:
    """An immutable view; create via :meth:`repro.mpiio.file.MpiFile.set_view`."""

    def __init__(
        self,
        displacement: int = 0,
        etype: Datatype = BYTE,
        filetype: Optional[Datatype] = None,
    ):
        if displacement < 0:
            raise MpiIoError(f"negative view displacement {displacement}")
        filetype = etype if filetype is None else filetype
        if etype.size <= 0:
            raise MpiIoError("etype must have positive size")
        if filetype.size % etype.size != 0:
            raise MpiIoError(
                f"filetype size {filetype.size} is not a multiple of etype size {etype.size}"
            )
        if filetype.size == 0:
            raise MpiIoError("filetype must contain data")
        self.displacement = displacement
        self.etype = etype
        self.filetype = filetype
        # Segment table of one filetype tile, with cumulative data offsets.
        self._segments = filetype.segments  # ((file_off, length), ...)
        self._cum = [0]
        for _, length in self._segments:
            self._cum.append(self._cum[-1] + length)
        self._tile_data = self._cum[-1]  # == filetype.size
        self._tile_extent = filetype.extent

    @property
    def is_contiguous(self) -> bool:
        """Whether the view maps the stream to one unbroken byte range."""
        return self.filetype.is_contiguous

    # ------------------------------------------------------------------
    def byte_offset(self, offset_etypes: int) -> int:
        """Stream byte position of an MPI offset (counted in etypes)."""
        if offset_etypes < 0:
            raise MpiIoError(f"negative file offset {offset_etypes}")
        return offset_etypes * self.etype.size

    def map_extents(self, stream_pos: int, nbytes: int) -> list[Extent]:
        """Absolute file extents for stream bytes [stream_pos, +nbytes).

        Extents come back in stream order; adjacent-in-file extents are
        merged. Raises when the byte range straddles a filetype hole in a
        way that MPI forbids (it cannot: the stream skips holes by
        definition — holes simply don't consume stream bytes).
        """
        if stream_pos < 0 or nbytes < 0:
            raise MpiIoError(f"bad view range [{stream_pos}, +{nbytes})")
        out: list[Extent] = []
        remaining = nbytes
        pos = stream_pos
        while remaining > 0:
            tile, within = divmod(pos, self._tile_data)
            # Find the segment containing data offset `within` in the tile.
            seg_idx = bisect.bisect_right(self._cum, within) - 1
            seg_off, seg_len = self._segments[seg_idx]
            into_seg = within - self._cum[seg_idx]
            take = min(remaining, seg_len - into_seg)
            file_start = (
                self.displacement + tile * self._tile_extent + seg_off + into_seg
            )
            ext = Extent(file_start, file_start + take)
            if out and out[-1].stop == ext.start:
                out[-1] = Extent(out[-1].start, ext.stop)
            else:
                out.append(ext)
            pos += take
            remaining -= take
        return out

    def map_pieces(self, stream_pos: int, nbytes: int) -> list[tuple[Extent, int]]:
        """Like :meth:`map_extents` but each extent carries the offset of its
        first byte *within the request's data buffer* — what scatter/gather
        and two-phase splitting need. Merged extents always map contiguous
        buffer ranges, because merging only happens for stream-consecutive
        pieces."""
        if stream_pos < 0 or nbytes < 0:
            raise MpiIoError(f"bad view range [{stream_pos}, +{nbytes})")
        out: list[tuple[Extent, int]] = []
        remaining = nbytes
        pos = stream_pos
        while remaining > 0:
            tile, within = divmod(pos, self._tile_data)
            seg_idx = bisect.bisect_right(self._cum, within) - 1
            seg_off, seg_len = self._segments[seg_idx]
            into_seg = within - self._cum[seg_idx]
            take = min(remaining, seg_len - into_seg)
            file_start = (
                self.displacement + tile * self._tile_extent + seg_off + into_seg
            )
            ext = Extent(file_start, file_start + take)
            if out and out[-1][0].stop == ext.start:
                prev_ext, prev_mem = out[-1]
                out[-1] = (Extent(prev_ext.start, ext.stop), prev_mem)
            else:
                out.append((ext, pos - stream_pos))
            pos += take
            remaining -= take
        return out

    def map_etype_extents(self, offset_etypes: int, count_etypes: int) -> list[Extent]:
        """map_extents with MPI units: offset and count in etypes."""
        return self.map_extents(
            self.byte_offset(offset_etypes), count_etypes * self.etype.size
        )

    def stream_size_for(self, extent_stop: int) -> int:
        """How many stream bytes map below absolute file offset *extent_stop*
        (used to size reads that must cover a view region)."""
        if extent_stop <= self.displacement:
            return 0
        span = extent_stop - self.displacement
        tiles, rem = divmod(span, self._tile_extent) if self._tile_extent else (0, span)
        covered = tiles * self._tile_data
        for (seg_off, seg_len), cum in zip(self._segments, self._cum):
            if seg_off >= rem:
                break
            covered += min(seg_len, rem - seg_off)
        return covered

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FileView disp={self.displacement} etype={self.etype.size}B "
            f"tile={self._tile_data}B/{self._tile_extent}B>"
        )
