"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``      — print the calibrated machine model and scaling factors.
``fig5``      — regenerate Figure 5 (``--smoke`` for the tiny grid).
``fig67``     — regenerate Figures 6 & 7 (the 48 GB OOM).
``fig910``    — regenerate Figures 9 & 10 (ART vs vanilla MPI-IO).
``table3``    — regenerate Table III and the Program 2/3 effort metrics.
``bench``     — run one synthetic-benchmark point and print its result.
``faults``    — rerun the benchmark under seeded fault injection and
                verify byte-correct recovery (see docs/faults.md);
                ``--crash-at`` runs the fail-stop crash-differential
                matrix instead.
``fsck``      — journaled faulted run + per-byte classification of the
                shared file (committed/torn/untracked/fallback/lost).
``topo``      — flat-vs-node aggregation ablation: compare fabric
                message/connection counts (see docs/topology.md).
``ioserver``  — delegate I/O server mode: trace-driven load test,
                delegate-count ablation, server crash matrix
                (see docs/io-server.md).
``tenancy``   — multi-job tenancy: concurrent applications on one shared
                PFS, QoS policies, interference matrix
                (see docs/tenancy.md).
``chaos``     — seeded fault-injection soak: many randomized crash
                scenarios across tenancy / TCIO-FT / delegate-failover
                families, each asserting the survive-and-complete
                invariants (see docs/faults.md).
``trace``     — rerun a scaled-down experiment with span tracing on and
                write Chrome-trace + metrics JSON (see docs/observability.md).
``report``    — run the full campaign and write EXPERIMENTS.md
                (``--jobs N`` fans the points across a process pool).
``perf``      — host-performance tools (see docs/performance.md):
                ``perf profile`` runs a whole-simulation cProfile
                (generator kernel: every rank on one thread),
                ``perf bench`` runs the pinned regression gate,
                ``perf campaign`` pre-runs/caches experiment points.
``campaign``  — campaign analysis platform (see docs/campaigns.md):
                ``campaign run`` executes a declarative sweep spec,
                ``campaign ingest`` imports caches/BENCH/metrics files
                into the result store, ``campaign query`` filters stored
                records, ``campaign report`` renders tables, charts and
                EXPERIMENTS.md sections, ``campaign explore`` bisects a
                crossover frontier adaptively.
"""

from __future__ import annotations

import argparse
import sys

from repro.util.units import MIB, format_size, format_time


def _scale_arg(args) -> "object":
    from repro.experiments.common import FULL, SMOKE

    return SMOKE if args.smoke else FULL


def cmd_info(args) -> int:
    """Print the machine model and scaling factors."""
    from repro.cluster.lonestar import (
        LONESTAR_SCALE,
        LONESTAR_STRIPE_SCALE,
        full_scale_lonestar,
        make_lonestar,
    )

    full, scaled = full_scale_lonestar(), make_lonestar()
    print("Testbed model: TACC Lonestar (IPDPS'13 paper, Section V.A)")
    print(f"  nodes: {full.nodes} x {full.cores_per_node} cores, "
          f"{format_size(full.memory_per_node)}/node")
    print(f"  Lustre: {full.lustre.n_osts} OSTs, "
          f"{format_size(full.lustre.stripe_size)} stripes")
    print(f"Simulation scale: sizes 1/{LONESTAR_SCALE}, "
          f"stripe/lock granularity 1/{LONESTAR_STRIPE_SCALE}")
    print(f"  scaled node memory: {format_size(scaled.memory_per_node)}")
    print(f"  scaled stripe/segment: {format_size(scaled.lustre.stripe_size)}")
    print(f"  calibrated per-event costs: see repro/cluster/lonestar.py")
    return 0


def cmd_fig5(args) -> int:
    """Regenerate Figure 5 and print its tables/charts."""
    from repro.experiments.fig5_scaling import run_fig5

    data = run_fig5(_scale_arg(args), verbose=True)
    print(data.render())
    return 0


def cmd_fig67(args) -> int:
    """Regenerate Figures 6 & 7 and print them."""
    from repro.experiments.fig6_7_filesize import run_fig6_7

    data = run_fig6_7(_scale_arg(args), verbose=True)
    print(data.render())
    return 0


def cmd_fig910(args) -> int:
    """Regenerate Figures 9 & 10 and print them."""
    from repro.experiments.fig9_10_art import run_fig9_10

    data = run_fig9_10(_scale_arg(args), verbose=True)
    print(data.render())
    return 0


def cmd_table3(args) -> int:
    """Regenerate Table III and the effort metrics."""
    from repro.experiments.programs_loc import program_listings
    from repro.experiments.table3_comparison import build_table3

    _sources, _metrics, summary = program_listings()
    _rows, rendered = build_table3()
    print(summary)
    print()
    print(rendered)
    return 0


def cmd_bench(args) -> int:
    """Run one synthetic-benchmark point and print throughputs."""
    from repro.bench import BenchConfig, Method, run_benchmark

    cfg = BenchConfig(
        method=Method.parse(args.method),
        num_arrays=args.arrays,
        type_codes=args.types,
        len_array=args.len,
        size_access=args.access,
        nprocs=args.procs,
        aggregation=args.aggregation,
    )
    result = run_benchmark(cfg)
    if result.failed:
        print(f"FAILED: {result.fail_reason}")
        return 1
    print(
        f"{cfg.method.name}  procs={cfg.nprocs}  LEN={cfg.len_array}  "
        f"file={format_size(cfg.total_bytes)}"
    )
    print(
        f"  write: {result.write_throughput / MIB:8.1f} MB/s "
        f"({format_time(result.write_seconds)})"
    )
    print(
        f"  read:  {result.read_throughput / MIB:8.1f} MB/s "
        f"({format_time(result.read_seconds)})"
    )
    return 0


def cmd_faults(args) -> int:
    """Run one fault-injected benchmark point and verify recovery."""
    from repro.faults.runner import run_crash_campaign, run_faulted

    if args.crash_at is not None:
        if args.ft:
            from repro.crash.harness import STEPS, run_survive_matrix

            steps = STEPS if args.crash_at == "each-step" else (args.crash_at,)
            matrix = run_survive_matrix(
                steps=steps, nranks=args.crash_procs, seed=args.seed
            )
            print(matrix.render())
            return 0 if matrix.ok else 1
        return run_crash_campaign(
            args.crash_at, seed=args.seed, procs=args.crash_procs
        )
    return run_faulted(
        args.target,
        seed=args.seed,
        rate=args.rate,
        procs=args.procs,
        len_array=args.len,
        method=args.method,
        lock_timeout=args.lock_timeout,
        aggregation=args.aggregation,
    )


def cmd_fsck(args) -> int:
    """Journaled faulted run + per-byte verification of the shared file."""
    from repro.faults.runner import run_fsck

    return run_fsck(
        args.file,
        seed=args.seed,
        rate=args.rate,
        procs=args.procs,
        len_array=args.len,
        journal=args.journal,
        aggregation=args.aggregation,
    )


def cmd_topo(args) -> int:
    """Run the flat-vs-node aggregation ablation and check the reduction."""
    from repro.experiments.topo_ablation import run_topo_ablation

    data = run_topo_ablation(
        procs=args.procs,
        cores_per_node=args.cores_per_node,
        len_array=args.len,
    )
    print(data.render())
    return 0 if data.check() else 1


def cmd_ioserver(args) -> int:
    """Trace-driven load test of the delegate I/O servers."""
    from repro.ioserver import (
        IoServerConfig,
        expected_image,
        generate_trace,
        load_trace,
        replay_direct,
        run_ioserver,
        save_trace,
    )

    if args.crash_step is not None:
        from repro.crash.harness import (
            SERVER_STEPS,
            run_server_crash_matrix,
            run_server_survive_matrix,
        )

        steps = (
            SERVER_STEPS if args.crash_step == "each-step" else (args.crash_step,)
        )
        if args.failover:
            matrix = run_server_survive_matrix(steps=steps, seed=args.seed)
        else:
            matrix = run_server_crash_matrix(steps=steps, seed=args.seed)
        print(matrix.render())
        return 0 if matrix.ok else 1

    if args.trace_in:
        trace = load_trace(args.trace_in)
    else:
        clients = 8 if args.smoke else args.clients
        epochs = 2 if args.smoke else args.epochs
        trace = generate_trace(
            args.seed,
            clients,
            epochs=epochs,
            writes_per_epoch=args.writes_per_epoch,
            reads_per_client=args.reads,
        )
    if args.trace_out:
        save_trace(trace, args.trace_out)
        print(f"wrote {args.trace_out} ({len(trace.ops)} ops)")

    if args.ablate_delegates:
        import json

        from repro.ioserver.ablation import delegate_ablation, render_ablation

        counts = tuple(
            c if c == "leaders" else int(c)
            for c in args.ablate_delegates.split(",")
        )
        report = delegate_ablation(
            trace,
            seed=args.seed,
            nranks=args.ranks,
            cores_per_node=args.cores_per_node,
            counts=counts,
        )
        print(render_ablation(report))
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=1, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.metrics_out}")
        return 0

    config = IoServerConfig(
        delegates="leaders" if not args.delegates
        else tuple(int(r) for r in args.delegates.split(",")),
        queue_depth=args.queue_depth,
    )
    result = run_ioserver(
        trace,
        nranks=args.ranks,
        cores_per_node=args.cores_per_node,
        config=config,
    )
    if result.aborted is not None:
        print(f"ABORTED: {result.aborted}")
        return 1
    print(result.summary())
    if args.metrics_out:
        result.write_metrics(args.metrics_out)
        print(f"wrote {args.metrics_out}")
    if not args.no_verify:
        expected = expected_image(trace)
        direct = replay_direct(
            trace, "tcio", nranks=min(4, trace.nclients), cores_per_node=2
        )
        ok = result.image == expected == direct.image
        print(
            "differential vs analytic image + direct TCIO replay: "
            + ("byte-identical" if ok else "MISMATCH")
        )
        if not ok:
            return 1
    return 0


def cmd_tenancy(args) -> int:
    """Multi-job tenancy: concurrent applications sharing one PFS."""
    import json

    from repro.tenancy import (
        interference_matrix,
        parse_scenario,
        run_scenario,
        two_job_scenario,
    )

    if args.jobs:
        scenario = parse_scenario(
            args.jobs.split(),
            seed=args.seed,
            jitter=args.jitter,
            cores_per_node=args.cores_per_node,
        )
    else:
        scenario = two_job_scenario(
            seed=args.seed,
            nranks=2 if args.smoke else 4,
            len_array=256 if args.smoke else 512,
            jitter=args.jitter,
        )

    if args.matrix:
        report = interference_matrix(scenario, qos=args.qos)
        payload = report.to_json()
        print(
            f"interference matrix ({len(scenario.jobs)} jobs, qos={args.qos}): "
            f"bytes {'identical' if report.all_identical else 'MISMATCH'}, "
            f"fsck {'clean' if report.all_clean else 'DIRTY'}"
        )
        for name, cell in sorted(payload["jobs"].items()):
            slow = cell["slowdown"]
            print(
                f"  {name}: solo {cell['solo_elapsed'] * 1e3:.3f} ms, "
                f"shared {cell['shared_elapsed'] * 1e3:.3f} ms, "
                f"slowdown {slow:.3f}" if slow is not None else f"  {name}: aborted"
            )
        print(f"  Jain fairness index: {payload['jain_index']:.4f}")
    else:
        result = run_scenario(scenario, qos=args.qos)
        payload = result.metrics_json()
        print(
            f"tenancy: {len(scenario.jobs)} jobs shared one PFS "
            f"(qos={args.qos}, seed={scenario.seed})"
        )
        for name, cell in sorted(payload["jobs"].items()):
            state = "ABORTED" if cell["aborted"] else "ok"
            print(
                f"  {name} ({cell['workload']} x{cell['nranks']}): "
                f"arrival {cell['arrival'] * 1e3:.3f} ms, "
                f"elapsed {cell['elapsed'] * 1e3:.3f} ms [{state}]"
            )
        jain = payload["fairness"]["jain_index"]
        if jain is not None:
            print(f"  Jain fairness index: {jain:.4f}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.metrics_out}")
    return 0


def cmd_chaos(args) -> int:
    """Seeded soak: randomized crash scenarios, zero tolerated violations."""
    from repro.chaos import ChaosConfig, ChaosError, run_soak

    families = (
        tuple(args.families.split(",")) if args.families else None
    )
    try:
        config = (
            ChaosConfig(iterations=args.iterations, seed=args.seed)
            if families is None
            else ChaosConfig(
                iterations=args.iterations, seed=args.seed, families=families
            )
        )
        if not args.quiet:
            print(
                f"chaos soak: {config.iterations} iterations, "
                f"seed {config.seed}"
            )
        report = run_soak(
            config,
            progress=(
                None if args.quiet
                else lambda it: print(
                    f"  [{it.index:>3}] {'ok  ' if it.ok else 'FAIL'} "
                    f"{it.family:<16} {it.detail}"
                )
            ),
        )
    except ChaosError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.quiet:
        print(
            f"chaos soak: {len(report.iterations)} iterations, "
            f"seed {config.seed}, "
            + (
                "zero invariant violations" if report.ok
                else f"{len(report.violations)} VIOLATION(S)"
            )
        )
    else:
        print(
            "  => "
            + (
                "zero invariant violations" if report.ok
                else f"{len(report.violations)} VIOLATION(S)"
            )
        )
    if args.metrics_out:
        report.write_metrics(args.metrics_out)
        print(f"wrote {args.metrics_out}")
    return 0 if report.ok else 1


def cmd_trace(args) -> int:
    """Run one scaled-down experiment with tracing; write trace/metrics."""
    from repro.obs.runner import run_traced

    run_traced(args.target, procs=args.procs, out=args.out, tiny=args.tiny)
    return 0


def cmd_report(args) -> int:
    """Run the full campaign and write EXPERIMENTS.md."""
    from repro.experiments import report

    argv = ["--output", args.output]
    if args.smoke:
        argv.append("--smoke")
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.cache_dir is not None:
        argv += ["--cache-dir", args.cache_dir]
    if args.no_cache:
        argv.append("--no-cache")
    return report.main(argv)


def cmd_perf_profile(args) -> int:
    """Profile one target across the engine and every rank thread."""
    from repro.perf.profile import run_profile

    run_profile(
        args.target,
        method=args.method,
        procs=args.procs,
        len_array=args.len,
        sort=args.sort,
        limit=args.limit,
        out=args.out,
    )
    return 0


def cmd_perf_bench(args) -> int:
    """Run the pinned host-performance gate; compare against a baseline."""
    from repro.perf import hostbench

    report = hostbench.run_hostbench(
        names=args.points or None,
        repeat=args.repeat,
        fresh_process=not args.in_process,
    )
    if args.out:
        hostbench.write_report(report, args.out)
        print(f"wrote {args.out}")
    if args.baseline:
        baseline = hostbench.load_report(args.baseline)
        problems = hostbench.compare_reports(
            baseline, report, tolerance=args.tolerance
        )
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}")
            return 1
        print(f"no regressions vs {args.baseline} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def cmd_perf_campaign(args) -> int:
    """Run (and cache) experiment point grids through the pool runner."""
    from repro.perf.cache import ResultCache
    from repro.perf.campaign import CampaignRunner
    from repro.perf.points import EXPERIMENTS, all_points

    experiments = (
        tuple(args.experiments.split(",")) if args.experiments else EXPERIMENTS
    )
    unknown = [e for e in experiments if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown} (choose from {list(EXPERIMENTS)})")
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    jobs = None if args.jobs in (None, 0) else args.jobs
    runner = CampaignRunner(jobs, cache=cache, verbose=True)
    runner.run(all_points(_scale_arg(args), experiments))
    return 0


def _campaign_errors(fn):
    """Expected campaign failures (bad spec, missing results) exit
    cleanly with the message instead of a traceback."""
    import functools

    @functools.wraps(fn)
    def wrapper(args) -> int:
        from repro.util.errors import ReproError

        try:
            return fn(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    return wrapper


def _parse_where(items) -> dict:
    """``k=v`` pairs -> a parameter filter with spec scalar coercion."""
    from repro.campaign.spec import _parse_scalar

    out = {}
    for item in items or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad --where filter {item!r} (expected key=value)")
        out[key] = _parse_scalar(value)
    return out


@_campaign_errors
def cmd_campaign_run(args) -> int:
    """Execute one declarative sweep spec into the result store."""
    from repro.campaign import CampaignStore, load_spec, run_sweep

    spec = load_spec(args.spec)
    store = CampaignStore(args.store)
    cache = None
    if not args.no_cache and (args.jobs is not None or args.cache_dir):
        from repro.perf.cache import ResultCache

        cache = ResultCache(args.cache_dir)
    jobs = None if args.jobs in (None, 0) else args.jobs
    results = run_sweep(
        spec, store=store, jobs=jobs, cache=cache, verbose=True
    )
    print(
        f"sweep '{spec.name}': ran {len(results)} {spec.experiment} "
        f"point(s); store {store.root} now holds {len(store)} record(s)"
    )
    return 0


@_campaign_errors
def cmd_campaign_ingest(args) -> int:
    """Import caches, BENCH baselines and metrics files into the store."""
    from repro.campaign import CampaignStore

    store = CampaignStore(args.store)
    total = 0
    if args.cache_dir or not (args.bench or args.metrics):
        count = store.ingest_cache(args.cache_dir)
        print(f"ingested {count} cache entr(ies)")
        total += count
    for path in args.bench or []:
        count = store.ingest_bench(path)
        print(f"ingested {count} hostbench point(s) from {path}")
        total += count
    for path in args.metrics or []:
        store.ingest_metrics(path)
        print(f"ingested metrics snapshot {path}")
        total += 1
    print(f"store {store.root}: {len(store)} record(s)")
    return 0 if total else 1


@_campaign_errors
def cmd_campaign_query(args) -> int:
    """Filter and print stored records (or one parameter's values)."""
    import json

    from repro.campaign import CampaignStore

    store = CampaignStore(args.store)
    if args.distinct:
        for value in store.distinct(args.distinct, args.experiment):
            print(value)
        return 0
    records = store.query(
        args.experiment, source=args.source, where=_parse_where(args.where)
    )
    if args.json:
        print(json.dumps([r.to_json() for r in records], indent=1,
                         sort_keys=True))
        return 0
    for record in records:
        params = ", ".join(f"{k}={v}" for k, v in record.params)
        metrics = json.dumps(record.metrics, sort_keys=True)
        print(f"{record.source}:{record.experiment}({params}) {metrics}")
    print(f"-- {len(records)} record(s) of {len(store)} in {store.root}")
    return 0


@_campaign_errors
def cmd_campaign_report(args) -> int:
    """Render tables/charts or EXPERIMENTS.md sections from the store."""
    from repro.campaign import (
        CampaignStore,
        experiments_section,
        scaling_report,
        store_svg_chart,
    )

    if args.smoke:
        body = _smoke_report(args)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(body)
            print(f"wrote {args.out}")
        else:
            print(body, end="")
        return 0
    store = CampaignStore(args.store)
    if args.section:
        from repro.experiments.common import FULL, SMOKE

        scale = SMOKE if args.scale == "smoke" else FULL
        body = experiments_section(store, args.section, scale)
        print(body)
        return 0
    if not (args.experiment and args.x and args.y):
        raise SystemExit(
            "campaign report needs --smoke, --section NAME, or "
            "--experiment/-x/-y"
        )
    if args.svg:
        chart = store_svg_chart(
            store, args.experiment, x=args.x, y=args.y,
            group_by=args.group_by, where=_parse_where(args.where),
            log_y=args.log_y,
        )
        with open(args.svg, "w", encoding="utf-8") as fh:
            fh.write(chart)
        print(f"wrote {args.svg}")
    print(scaling_report(
        store, args.experiment, x=args.x, y=args.y,
        group_by=args.group_by, where=_parse_where(args.where),
        log_y=args.log_y,
    ))
    return 0


def _smoke_report(args) -> str:
    """The deterministic two-point smoke report (CI runs it twice, cmp)."""
    import json
    import tempfile

    from repro.campaign import scaling_report, smoke_store, store_svg_chart

    cache = None
    if not args.no_cache:
        from repro.perf.cache import ResultCache

        cache = ResultCache(args.cache_dir)
    with tempfile.TemporaryDirectory() as tmp:
        store = smoke_store(args.store or f"{tmp}/store", cache=cache)
        table = scaling_report(
            store, "fig5", x="method", y="write_throughput",
            title="smoke sweep: fig5 write throughput by method",
        )
        svg = store_svg_chart(
            store, "fig5", x="method", y="write_throughput",
            title="fig5 write throughput by method",
        )
        summary = json.dumps(store.summary(), indent=1, sort_keys=True)
    return (
        "campaign smoke report (deterministic)\n\n"
        f"{summary}\n\n{table}\n\n{svg}"
    )


@_campaign_errors
def cmd_campaign_explore(args) -> int:
    """Adaptively locate the flat-vs-node aggregation crossover."""
    from repro.campaign import CampaignStore, aggregation_crossover

    runner = None
    if args.cache_dir:
        from repro.perf.cache import ResultCache
        from repro.perf.campaign import CampaignRunner

        runner = CampaignRunner(1, cache=ResultCache(args.cache_dir))
    store = CampaignStore(args.store) if args.store else None
    kwargs = dict(
        method=args.search, collective=args.collective,
        runner=runner, store=store,
    )
    if args.candidates:
        candidates = tuple(int(c) for c in args.candidates.split(","))
        report = aggregation_crossover(candidates, **kwargs)
    else:
        report = aggregation_crossover(**kwargs)
    print(report.render())
    saved = len(report.candidates) - report.evaluations
    print(
        f"adaptive saving: {saved} evaluation(s) skipped vs the "
        f"exhaustive grid" if report.method == "bisect"
        else "exhaustive grid baseline"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the machine model").set_defaults(fn=cmd_info)

    for name, fn, doc in (
        ("fig5", cmd_fig5, "Figure 5: throughput vs processes"),
        ("fig67", cmd_fig67, "Figures 6/7: throughput vs file size + OOM"),
        ("fig910", cmd_fig910, "Figures 9/10: ART, TCIO vs vanilla MPI-IO"),
    ):
        p = sub.add_parser(name, help=doc)
        p.add_argument("--smoke", action="store_true", help="tiny grid")
        p.set_defaults(fn=fn)

    sub.add_parser("table3", help="Table III + effort metrics").set_defaults(fn=cmd_table3)

    p = sub.add_parser("bench", help="run one synthetic benchmark point")
    p.add_argument("--method", default="tcio", help="ocio | tcio | mpiio (or 0|1|2)")
    p.add_argument("--procs", type=int, default=16)
    p.add_argument("--len", type=int, default=512, help="LENarray (elements)")
    p.add_argument("--arrays", type=int, default=2, help="NUMarray")
    p.add_argument("--types", default="i,d", help="TYPEarray codes")
    p.add_argument("--access", type=int, default=1, help="SIZEaccess")
    p.add_argument(
        "--aggregation", choices=["flat", "node"], default="flat",
        help="intra-node aggregation mode (docs/topology.md)",
    )
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "faults", help="benchmark under seeded fault injection + verification"
    )
    p.add_argument(
        "target", nargs="?", default="bench",
        choices=["bench", "ocio", "tcio", "mpiio"],
        help="'bench' uses --method; a method name runs that method",
    )
    p.add_argument(
        "--crash-at", default=None, metavar="STEP",
        help="run the crash-differential matrix instead: kill rank 1 at "
             "this protocol step ('each-step' runs all five; docs/faults.md)",
    )
    p.add_argument(
        "--crash-procs", type=int, default=4,
        help="ranks for the crash matrix (only with --crash-at)",
    )
    p.add_argument(
        "--ft", action="store_true",
        help="with --crash-at: run the survive column instead — TCIO FT on, "
             "the job must complete degraded (docs/faults.md)",
    )
    p.add_argument("--seed", type=int, default=1, help="fault plan seed")
    p.add_argument("--rate", type=float, default=0.05, help="injection rate")
    p.add_argument("--procs", type=int, default=16)
    p.add_argument("--len", type=int, default=256, help="LENarray (elements)")
    p.add_argument("--method", default="tcio", help="ocio | tcio | mpiio")
    p.add_argument(
        "--lock-timeout", type=float, default=2e-3,
        help="extent-lock wait bound (simulated seconds)",
    )
    p.add_argument(
        "--aggregation", choices=["flat", "node"], default="flat",
        help="intra-node aggregation mode (docs/topology.md)",
    )
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "fsck", help="journaled faulted run + per-byte file verification"
    )
    p.add_argument("file", help="shared file name inside the simulated PFS")
    p.add_argument("--seed", type=int, default=1, help="fault plan seed")
    p.add_argument("--rate", type=float, default=0.05, help="injection rate")
    p.add_argument("--procs", type=int, default=16)
    p.add_argument("--len", type=int, default=256, help="LENarray (elements)")
    p.add_argument(
        "--journal", choices=["off", "epoch"], default="epoch",
        help="TCIO durability mode (docs/faults.md)",
    )
    p.add_argument(
        "--aggregation", choices=["flat", "node"], default="flat",
        help="intra-node aggregation mode (docs/topology.md)",
    )
    p.set_defaults(fn=cmd_fsck)

    p = sub.add_parser(
        "topo", help="flat-vs-node aggregation ablation (message counts)"
    )
    p.add_argument("--procs", type=int, default=64)
    p.add_argument(
        "--cores-per-node", type=int, default=4, help="simulated ranks per node"
    )
    p.add_argument("--len", type=int, default=1024, help="LENarray (elements)")
    p.set_defaults(fn=cmd_topo)

    p = sub.add_parser(
        "ioserver",
        help="delegate I/O servers: trace-driven load test (docs/io-server.md)",
    )
    p.add_argument("--smoke", action="store_true", help="small CI-sized run")
    p.add_argument("--seed", type=int, default=11, help="trace seed")
    p.add_argument("--clients", type=int, default=64, help="logical clients")
    p.add_argument("--epochs", type=int, default=3, help="write epochs")
    p.add_argument(
        "--writes-per-epoch", type=int, default=3, help="writes per client epoch"
    )
    p.add_argument(
        "--reads", type=int, default=2, help="read-phase fetches per client"
    )
    p.add_argument("--ranks", type=int, default=6, help="simulated ranks")
    p.add_argument(
        "--cores-per-node", type=int, default=3, help="simulated ranks per node"
    )
    p.add_argument(
        "--queue-depth", type=int, default=8,
        help="per-delegate admitted-request queue bound",
    )
    p.add_argument(
        "--delegates", default=None,
        help="comma-separated delegate ranks (default: node leaders)",
    )
    p.add_argument("--trace-in", default=None, help="replay this saved trace")
    p.add_argument("--trace-out", default=None, help="save the trace JSON here")
    p.add_argument(
        "--metrics-out", default=None, help="write the metrics JSON here"
    )
    p.add_argument(
        "--no-verify", action="store_true",
        help="skip the byte-differential vs direct TCIO",
    )
    p.add_argument(
        "--crash-step", default=None, metavar="STEP",
        help="run the server-mode crash matrix instead: kill a delegate at "
             "this service-loop step ('each-step' runs all six)",
    )
    p.add_argument(
        "--failover", action="store_true",
        help="with --crash-step: run the survive column instead — delegate "
             "failover on, the session must complete with zero loss",
    )
    p.add_argument(
        "--ablate-delegates", default=None, metavar="COUNTS",
        help="sweep delegate counts over one fixed trace instead of a "
             "single run: comma-separated counts and/or 'leaders' "
             "(e.g. '1,2,4,leaders')",
    )
    p.set_defaults(fn=cmd_ioserver)

    p = sub.add_parser(
        "tenancy",
        help="multi-job tenancy: concurrent apps on one PFS (docs/tenancy.md)",
    )
    p.add_argument("--smoke", action="store_true", help="small CI-sized run")
    p.add_argument("--seed", type=int, default=3, help="scenario seed")
    p.add_argument(
        "--jobs", default=None, metavar="SPECS",
        help="space-separated job specs 'name:workload:nranks[:len]' "
             "(default: the canonical 2-job tcio+mpiio scenario)",
    )
    p.add_argument(
        "--qos", default="fifo", choices=("fifo", "fair"),
        help="OST token-issue policy",
    )
    p.add_argument(
        "--jitter", type=float, default=0.0, help="seeded arrival jitter (s)"
    )
    p.add_argument(
        "--cores-per-node", type=int, default=4, help="simulated ranks per node"
    )
    p.add_argument(
        "--matrix", action="store_true",
        help="run the full interference matrix (each job solo, then shared) "
             "and enforce byte identity + fsck cleanliness",
    )
    p.add_argument(
        "--metrics-out", default=None, help="write the metrics JSON here"
    )
    p.set_defaults(fn=cmd_tenancy)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection soak over crash scenarios (docs/faults.md)",
    )
    p.add_argument(
        "--iterations", type=int, default=50, help="scenarios to run"
    )
    p.add_argument("--seed", type=int, default=0, help="campaign seed")
    p.add_argument(
        "--families", default=None, metavar="F1,F2",
        help="comma-separated subset of tenancy,tcio-survive,server-failover "
             "(default: all three)",
    )
    p.add_argument(
        "--metrics-out", default=None,
        help="write the deterministic soak JSON here (same seed -> same bytes)",
    )
    p.add_argument(
        "--quiet", action="store_true",
        help="suppress per-iteration progress; print the full report at the end",
    )
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "trace", help="scaled-down experiment with tracing -> Chrome trace JSON"
    )
    p.add_argument(
        "target", choices=["fig5", "fig67", "fig910", "bench"],
        help="which experiment to rerun traced",
    )
    p.add_argument("--procs", type=int, default=None, help="simulated ranks")
    p.add_argument("--out", default="trace_out", help="output directory")
    p.add_argument("--tiny", action="store_true", help="smallest possible run")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("report", help="full campaign -> EXPERIMENTS.md")
    p.add_argument("--output", default="EXPERIMENTS.md")
    p.add_argument("--smoke", action="store_true")
    p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan points across N worker processes (0 = one per CPU)",
    )
    p.add_argument("--cache-dir", default=None, help="result cache directory")
    p.add_argument("--no-cache", action="store_true", help="disable the cache")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("perf", help="host-performance tools (docs/performance.md)")
    perf_sub = p.add_subparsers(dest="perf_command", required=True)

    pp = perf_sub.add_parser(
        "profile", help="cProfile a target, merged across all rank threads"
    )
    pp.add_argument(
        "target", choices=["bench", "fig5", "fig67", "fig910", "topo"],
        help="'bench' profiles one point; figures profile their SMOKE grid",
    )
    pp.add_argument("--method", default="tcio", help="ocio | tcio | mpiio")
    pp.add_argument("--procs", type=int, default=None, help="simulated ranks")
    pp.add_argument("--len", type=int, default=None, help="LENarray (elements)")
    pp.add_argument("--sort", default="tottime", help="pstats sort key")
    pp.add_argument("--limit", type=int, default=25, help="rows to print")
    pp.add_argument("--out", default=None, help="dump raw pstats here")
    pp.set_defaults(fn=cmd_perf_profile)

    pb = perf_sub.add_parser(
        "bench", help="pinned host-perf gate -> BENCH_*.json (+ comparison)"
    )
    pb.add_argument("--out", default=None, help="write the report JSON here")
    pb.add_argument(
        "--baseline", default=None,
        help="compare against this committed BENCH_*.json; exit 1 on regression",
    )
    pb.add_argument(
        "--tolerance", type=float, default=0.25,
        help="relative wall-clock slack vs the baseline (default 0.25)",
    )
    pb.add_argument(
        "--repeat", type=int, default=1, help="keep the fastest of N runs"
    )
    pb.add_argument(
        "--in-process", action="store_true",
        help="measure in this process (no spawn; RSS covers the parent)",
    )
    pb.add_argument(
        "--points", nargs="*", default=None, help="subset of pinned point names"
    )
    pb.set_defaults(fn=cmd_perf_bench)

    pc = perf_sub.add_parser(
        "campaign", help="run/cache experiment point grids via the pool runner"
    )
    pc.add_argument("--smoke", action="store_true", help="tiny grids")
    from repro.perf.points import EXPERIMENTS

    pc.add_argument(
        "--experiments", default=None,
        help=f"comma-separated subset of {','.join(EXPERIMENTS)}",
    )
    pc.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default/0: one per CPU)",
    )
    pc.add_argument("--cache-dir", default=None, help="result cache directory")
    pc.add_argument("--no-cache", action="store_true", help="disable the cache")
    pc.set_defaults(fn=cmd_perf_campaign)

    p = sub.add_parser(
        "campaign",
        help="campaign analysis platform: sweeps, store, reports, explorer "
             "(docs/campaigns.md)",
    )
    camp_sub = p.add_subparsers(dest="campaign_command", required=True)

    cr = camp_sub.add_parser(
        "run", help="execute a declarative sweep spec into the result store"
    )
    cr.add_argument("spec", help="sweep spec file (YAML subset; docs/campaigns.md)")
    cr.add_argument("--store", default=None, help="result store directory")
    cr.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: serial; 0 = one per CPU)",
    )
    cr.add_argument("--cache-dir", default=None, help="result cache directory")
    cr.add_argument("--no-cache", action="store_true", help="disable the cache")
    cr.set_defaults(fn=cmd_campaign_run)

    ci = camp_sub.add_parser(
        "ingest", help="import caches / BENCH_*.json / metrics.json files"
    )
    ci.add_argument("--store", default=None, help="result store directory")
    ci.add_argument(
        "--cache-dir", default=None,
        help="perf result cache to import (default cache when no sources "
             "are given)",
    )
    ci.add_argument(
        "--bench", action="append", default=None, metavar="FILE",
        help="a BENCH_*.json host baseline to import (repeatable)",
    )
    ci.add_argument(
        "--metrics", action="append", default=None, metavar="FILE",
        help="a *.metrics.json snapshot to import (repeatable)",
    )
    ci.set_defaults(fn=cmd_campaign_ingest)

    cq = camp_sub.add_parser("query", help="filter and print stored records")
    cq.add_argument("--store", default=None, help="result store directory")
    cq.add_argument(
        "--experiment", default=None, help="filter to one experiment"
    )
    cq.add_argument(
        "--source", default=None,
        help="filter to one source (campaign | hostbench | metrics)",
    )
    cq.add_argument(
        "--where", action="append", default=None, metavar="K=V",
        help="parameter equality filter (repeatable)",
    )
    cq.add_argument(
        "--distinct", default=None, metavar="PARAM",
        help="print the distinct values of one parameter instead",
    )
    cq.add_argument("--json", action="store_true", help="full records as JSON")
    cq.set_defaults(fn=cmd_campaign_query)

    cp = camp_sub.add_parser(
        "report",
        help="render tables/charts or EXPERIMENTS.md sections from the store",
    )
    cp.add_argument("--store", default=None, help="result store directory")
    cp.add_argument(
        "--smoke", action="store_true",
        help="build the two-point smoke store and print the deterministic "
             "smoke report (the CI bit-determinism check)",
    )
    cp.add_argument(
        "--out", default=None, help="write the smoke report here"
    )
    cp.add_argument(
        "--section", default=None,
        help="regenerate one EXPERIMENTS.md section from stored results "
             "(header, table3, fig5, fig67, fig910)",
    )
    cp.add_argument(
        "--scale", choices=("full", "smoke"), default="full",
        help="campaign scale the --section replay renders at",
    )
    cp.add_argument("--experiment", default=None, help="experiment to chart")
    cp.add_argument("-x", default=None, help="swept parameter (x axis)")
    cp.add_argument("-y", default=None, help="result metric (y axis)")
    cp.add_argument(
        "--group-by", default=None, help="one series per value of this parameter"
    )
    cp.add_argument(
        "--where", action="append", default=None, metavar="K=V",
        help="parameter equality filter (repeatable)",
    )
    cp.add_argument("--svg", default=None, metavar="FILE", help="also write an SVG chart")
    cp.add_argument("--log-y", action="store_true", help="log-scale y axis")
    cp.add_argument("--cache-dir", default=None, help="result cache directory (--smoke)")
    cp.add_argument("--no-cache", action="store_true", help="disable the cache (--smoke)")
    cp.set_defaults(fn=cmd_campaign_report)

    ce = camp_sub.add_parser(
        "explore",
        help="adaptively bisect the flat-vs-node aggregation crossover",
    )
    ce.add_argument("--store", default=None, help="record evaluated pairs here")
    ce.add_argument(
        "--search", choices=("bisect", "grid"), default="bisect",
        help="adaptive bisection or the exhaustive baseline",
    )
    ce.add_argument(
        "--collective", choices=("TCIO", "OCIO"), default="TCIO",
        help="which collective method's frontier to search",
    )
    ce.add_argument(
        "--candidates", default=None, metavar="P1,P2,...",
        help="ordered process-count axis (default 8,12,16,24,32,48,64,96)",
    )
    ce.add_argument("--cache-dir", default=None, help="result cache directory")
    ce.set_defaults(fn=cmd_campaign_explore)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
