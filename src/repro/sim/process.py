"""Simulated processes: stackless generator coroutines on the engine.

A rank program is a generator function; every simulated-blocking
operation is itself a generator, and callers chain with ``yield from``
down to :meth:`SimProcess.block`, which yields a wait-reason string to
the kernel. The kernel parks the coroutine until an engine action wakes
it (``gen.send``) or interrupts it (``gen.throw``). Plain callables that
never block are also accepted: they run to completion at activation.

There are no OS threads anywhere in the kernel; teardown is
``gen.close()`` (GeneratorExit runs the coroutine's ``finally`` blocks),
and a fail-stop crash is :class:`ProcessCrashed` thrown at the wait
point.
"""

from __future__ import annotations

import warnings
from types import GeneratorType
from typing import Any, Callable, Optional

from repro.sim import engine as _engine_mod
from repro.util.errors import SimulationError

# Re-exported: the crash signal lives beside the engine but is raised
# through processes, so both import paths are natural.
ProcessCrashed = _engine_mod.ProcessCrashed


def set_thread_hook(hook: Optional[Callable[["SimProcess"], Any]]) -> None:
    """Deprecated no-op (thread-per-rank era).

    The generator kernel runs every rank coroutine on the caller's
    thread, so per-rank thread hooks are meaningless: profile the engine
    loop directly (see ``repro.perf.profile``).
    """
    warnings.warn(
        "set_thread_hook() is deprecated and has no effect: the generator "
        "kernel runs all ranks on one thread — profile the engine loop "
        "directly",
        DeprecationWarning,
        stacklevel=2,
    )


class SimProcess:
    """One simulated process: a coroutine driven by the engine.

    The public construction path is :meth:`spawn` (or
    ``Engine.spawn``); direct construction plus ``Engine.add_process``
    remains supported for tests that build processes before the run.
    """

    def __init__(self, engine: "_engine_mod.Engine", name: str, target: Callable[[], object]):
        self.engine = engine
        self.name = name
        self.target = target
        self._gen: Optional[GeneratorType] = None
        self._blocked = False
        self._pending_wake: Optional[_engine_mod.Timer] = None
        self._pending_delay = 0.0  # lazily accrued charge() time
        self.alive = False
        self.crashed = False
        self.wait_reason: Optional[str] = None
        self.start_time = 0.0
        self.end_time: Optional[float] = None

    @classmethod
    def spawn(
        cls, engine: "_engine_mod.Engine", name: str, target: Callable[[], object]
    ) -> "SimProcess":
        """Create *and register* a process on *engine* (starts at time 0)."""
        proc = cls(engine, name, target)
        engine.add_process(proc)
        return proc

    def __repr__(self) -> str:  # pragma: no cover
        state = (
            "crashed" if self.crashed
            else "blocked" if self._blocked
            else "alive" if self.alive
            else "done"
        )
        return f"<SimProcess {self.name} {state}>"

    # ------------------------------------------------------------------
    # lifecycle (engine side)
    # ------------------------------------------------------------------
    def _start(self) -> None:
        """Arm the process: activation is the first heap event at t=0."""
        self.alive = True
        self.start_time = self.engine.now
        self.engine.schedule(0.0, self._activate)

    def _activate(self) -> None:
        if not self.alive:
            raise SimulationError(f"{self.name}: activated after termination")
        prev = _engine_mod._active
        _engine_mod._active = self
        try:
            result = self.target()
        except ProcessCrashed:
            self._finish(crashed=True)
            return
        except BaseException:
            self._finish(crashed=False)
            raise
        finally:
            _engine_mod._active = prev
        if isinstance(result, GeneratorType):
            self._gen = result
            self._step(result.send, None)
        else:
            # A plain callable that never blocks: it already ran.
            self._finish(crashed=False)

    def _step(self, resume: Callable[[Any], Any], value: Any) -> None:
        """Advance the coroutine one hop: to its next block or its end."""
        prev = _engine_mod._active
        _engine_mod._active = self
        try:
            yielded = resume(value)
        except StopIteration:
            self._finish(crashed=False)
            return
        except ProcessCrashed:
            self._finish(crashed=True)
            return
        except BaseException:
            self._finish(crashed=False)
            raise
        finally:
            _engine_mod._active = prev
        if not self._blocked:  # pragma: no cover - kernel invariant
            raise SimulationError(
                f"{self.name}: yielded {yielded!r} without blocking "
                "(missing `yield from` on a simulated operation?)"
            )

    def _finish(self, *, crashed: bool) -> None:
        self.crashed = self.crashed or crashed
        self.alive = False
        self.end_time = self.engine.now
        self._blocked = False
        self.wait_reason = None
        self._gen = None

    def _kill(self) -> None:
        """Tear the coroutine down (engine reap after error/deadlock)."""
        gen, self._gen = self._gen, None
        self.alive = False
        if self.end_time is None:
            self.end_time = self.engine.now
        self._blocked = False
        if gen is not None:
            prev = _engine_mod._active
            _engine_mod._active = self
            try:
                gen.close()
            finally:
                _engine_mod._active = prev

    # ------------------------------------------------------------------
    # blocking protocol (process side; generators)
    # ------------------------------------------------------------------
    def block(self, reason: str):
        """Park until another action calls :meth:`wake` (or interrupts).

        Returns the value passed to ``wake``. This is a generator: the
        caller (transitively, the rank coroutine) must ``yield from`` it.
        """
        if _engine_mod._active is not self:
            raise SimulationError("a process may only block itself")
        self._blocked = True
        self.wait_reason = reason
        value = yield reason
        return value

    def wake(self, value: Any = None, *, delay: float = 0.0) -> None:
        """Schedule this blocked process to resume (with *value*)."""

        def resume() -> None:
            self._pending_wake = None
            if not self._blocked:
                raise SimulationError(f"{self.name}: woken while not blocked")
            self._blocked = False
            self.wait_reason = None
            self._step(self._gen.send, value)

        self._pending_wake = self.engine.schedule(delay, resume)

    def interrupt(self, exc: BaseException, *, delay: float = 0.0) -> None:
        """Deliver *exc* at the wait point of this parked process.

        Delivery is dropped if the process already terminated or is not
        blocked when the event fires (it won the race); a pending wake is
        cancelled so the process does not resume twice.
        """

        def resume() -> None:
            if not self.alive or not self._blocked:
                return
            if self._pending_wake is not None:
                self._pending_wake.cancel()
                self._pending_wake = None
            self._blocked = False
            self.wait_reason = None
            self._step(self._gen.throw, exc)

        self.engine.schedule(delay, resume)

    # ------------------------------------------------------------------
    # time (process side)
    # ------------------------------------------------------------------
    def sleep(self, duration: float):
        """Occupy this process for *duration* simulated seconds (generator)."""
        if duration < 0:
            raise SimulationError(f"cannot sleep a negative duration ({duration})")
        if duration == 0:
            return
        self.wake(delay=duration)
        yield from self.block(f"sleep({duration:g})")

    def charge(self, duration: float) -> None:
        """Accrue *duration* seconds of lazily-settled busy time.

        Non-blocking: cost models call this from engine context or rank
        context alike; the owed time materializes at the next
        :meth:`settle` (or blocking operation that settles) of this
        process.
        """
        if duration < 0:
            raise SimulationError(f"cannot charge a negative duration ({duration})")
        self._pending_delay += duration

    def settle(self):
        """Pay any accrued charge by sleeping it off (generator)."""
        if self._pending_delay > 0:
            delay, self._pending_delay = self._pending_delay, 0.0
            yield from self.sleep(delay)
