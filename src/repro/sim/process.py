"""Cooperative simulated processes (one per MPI rank).

A :class:`SimProcess` wraps a user callable in an OS thread that only runs
while it holds the engine's baton. The callable blocks by calling
:meth:`SimProcess.block`, and anything holding a reference can resume it by
scheduling :meth:`SimProcess.wake` on the engine — never directly, so every
resume is ordered by the event heap and runs at a well-defined virtual time.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.util.errors import SimulationError

from repro.sim import engine as _engine_mod

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

# 1 MiB is plenty for our call depths and keeps 1024-rank simulations cheap.
_STACK_SIZE = 1 << 20

#: Optional context-manager factory wrapped around every rank program.
#: Rank code runs on worker threads, so an ordinary main-thread profiler
#: never sees it; ``repro.perf.profile`` installs a per-thread cProfile
#: through this hook. ``None`` (the default) costs one attribute read.
_thread_hook: Optional[Callable[["SimProcess"], Any]] = None


def set_thread_hook(hook: Optional[Callable[["SimProcess"], Any]]) -> None:
    """Install (or clear, with ``None``) the rank-thread wrapper hook."""
    global _thread_hook
    _thread_hook = hook


class _Killed(BaseException):
    """Raised inside a process thread to unwind it during engine teardown."""


#: Re-exported here for convenience; defined next to the engine because the
#: engine's kill path needs it and ``process`` already imports ``engine``.
ProcessCrashed = _engine_mod.ProcessCrashed


class SimProcess:
    """A simulated process: a rank program plus its scheduling state."""

    def __init__(self, engine: "Engine", name: str, target: Callable[[], None]):
        self.engine = engine
        self.name = name
        self._target = target
        self._thread: Optional[threading.Thread] = None
        self._resume_gate = _engine_mod.Gate()
        self._wake_value: Any = None
        self._blocked = False
        self._killed = False
        self._interrupt_exc: Optional[BaseException] = None
        self._pending_wake: Optional["_engine_mod.Timer"] = None
        self._pending_delay = 0.0  # lazily-charged local compute time
        self.alive = False
        self.crashed = False
        self.wait_reason: Optional[str] = None
        self.start_time: float = 0.0
        self.end_time: Optional[float] = None

    # ------------------------------------------------------------------
    # lifecycle (engine side)
    # ------------------------------------------------------------------
    def _start(self) -> None:
        old_stack = threading.stack_size()
        try:
            threading.stack_size(_STACK_SIZE)
        except (ValueError, RuntimeError):  # pragma: no cover - platform quirk
            pass
        try:
            self._thread = threading.Thread(
                target=self._run, name=f"sim:{self.name}", daemon=True
            )
            self.alive = True
            self._thread.start()
        finally:
            try:
                threading.stack_size(old_stack)
            except (ValueError, RuntimeError):  # pragma: no cover
                pass
        # First activation happens through the heap at time 0 so process
        # startup interleaves deterministically with pre-scheduled events.
        self.engine.schedule(0.0, self._activate)

    def _run(self) -> None:
        self._resume_gate.wait()
        _engine_mod._tls.engine = self.engine
        _engine_mod._tls.process = self
        try:
            if not self._killed:
                self.start_time = self.engine.now
                hook = _thread_hook
                if hook is None:
                    self._target()
                else:
                    with hook(self):
                        self._target()
        except _Killed:
            pass
        except ProcessCrashed:
            # A fail-stop crash is an *injected* outcome, not a bug in the
            # simulation: mark the corpse and let the job-level layers react.
            self.crashed = True
        except BaseException as exc:  # noqa: BLE001 - forwarded to engine
            self.engine._report_failure(exc)
        finally:
            self.alive = False
            self.end_time = self.engine.now
            _engine_mod._tls.engine = None
            _engine_mod._tls.process = None
            self.engine._yield_to_engine()

    def _activate(self) -> None:
        """Engine-side: transfer the baton into this process."""
        if not self.alive:
            raise SimulationError(f"{self.name}: activated after termination")
        self.engine._enter_process(self)

    def _kill(self) -> None:
        """Engine-side teardown: unwind the thread if still alive."""
        if not self.alive or self._thread is None:
            return
        self._killed = True
        # Wake the thread so it observes the kill flag and unwinds.
        self._wake_value = None
        self._resume_gate.set()
        self._thread.join(timeout=10.0)

    # ------------------------------------------------------------------
    # blocking (process side)
    # ------------------------------------------------------------------
    def block(self, reason: str) -> Any:
        """Suspend the calling process until :meth:`wake`; returns its value.

        Must be called from this process's own thread.
        """
        if _engine_mod.current_process() is not self:
            raise SimulationError("a process may only block itself")
        self._blocked = True
        self.wait_reason = reason
        self.engine._yield_to_engine()
        self._resume_gate.wait()
        if self._killed:
            raise _Killed()
        if self._interrupt_exc is not None:
            exc, self._interrupt_exc = self._interrupt_exc, None
            self.wait_reason = None
            raise exc
        self.wait_reason = None
        value, self._wake_value = self._wake_value, None
        return value

    def wake(self, value: Any = None, *, delay: float = 0.0) -> None:
        """Schedule this process to resume after *delay* simulated seconds.

        Safe to call from the engine or from any other process; the resume
        itself always goes through the event heap.
        """

        def resume() -> None:
            self._pending_wake = None
            if not self._blocked:
                raise SimulationError(f"{self.name}: woken while not blocked")
            self._blocked = False
            self._wake_value = value
            self.engine._enter_process(self)

        self._pending_wake = self.engine.schedule(delay, resume)

    def interrupt(self, exc: BaseException, *, delay: float = 0.0) -> None:
        """Resume a parked process by raising *exc* inside its :meth:`block`.

        Used to deliver fail-stop outcomes (:class:`ProcessCrashed`, peer
        death) to processes parked on waits that will never complete. The
        raise goes through the event heap like any wake; if the process was
        resumed normally (or terminated) before the interrupt fires, the
        interrupt is dropped — the process will observe the condition at
        its next communication call instead.
        """

        def resume() -> None:
            if not self.alive or not self._blocked:
                return
            if self._pending_wake is not None:
                # The wait we are breaking may have a wake already queued
                # (e.g. a sleep); left in the heap it would later fire on a
                # process that is no longer blocked.
                self._pending_wake.cancel()
                self._pending_wake = None
            self._blocked = False
            self._interrupt_exc = exc
            self.engine._enter_process(self)

        self.engine.schedule(delay, resume)

    def sleep(self, duration: float) -> None:
        """Advance this process's local time by *duration*.

        This is how rank code charges itself simulated compute/copy cost.
        """
        if duration < 0:
            raise SimulationError(f"negative sleep: {duration}")
        if duration == 0:
            return
        self.wake(delay=duration)
        self.block(f"sleep({duration:g})")

    def charge(self, duration: float) -> None:
        """Accumulate local compute time without switching to the engine.

        A per-call ``sleep`` costs a real thread handoff; code on hot paths
        (every buffered write charges a memcpy) calls ``charge`` instead and
        the accrued time elapses at the next :meth:`settle` point — every
        communication or storage primitive settles on entry, so ordering
        against other ranks is preserved.
        """
        if duration < 0:
            raise SimulationError(f"negative charge: {duration}")
        self._pending_delay += duration

    def settle(self) -> None:
        """Let accrued :meth:`charge` time elapse (at most one handoff)."""
        if self._pending_delay > 0.0:
            delay, self._pending_delay = self._pending_delay, 0.0
            self.sleep(delay)

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        state = "alive" if self.alive else "done"
        return f"<SimProcess {self.name} {state}>"
