"""Counters and event traces for simulated runs.

Experiments assert *mechanisms*, not just end-to-end times: e.g. that OCIO's
all-to-all exchange opens O(P^2) point-to-point connections while TCIO's
one-sided flushes open O(P), or that lazy loading coalesces reads. Substrate
layers increment named counters on a :class:`TraceRecorder`; tests and
benchmark reports read them back.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Counter:
    """A (count, total) accumulator, e.g. (#messages, total bytes)."""

    count: int = 0
    total: float = 0.0

    def add(self, amount: float = 0.0) -> None:
        """Count one occurrence of *amount* units."""
        self.count += 1
        self.total += amount


@dataclass
class TraceEvent:
    """One recorded event (only stored when event tracing is enabled)."""

    time: float
    name: str
    detail: dict = field(default_factory=dict)


class TraceRecorder:
    """Collects counters and (optionally) a full event log."""

    def __init__(self, *, record_events: bool = False):
        self.counters: dict[str, Counter] = defaultdict(Counter)
        self.record_events = record_events
        self.events: list[TraceEvent] = []

    def count(self, name: str, amount: float = 0.0) -> None:
        """Increment counter *name* by one occurrence of *amount* units."""
        self.counters[name].add(amount)

    def event(self, time: float, name: str, **detail: object) -> None:
        """Count and (when enabled) record a timestamped event."""
        self.count(name)
        if self.record_events:
            self.events.append(TraceEvent(time, name, dict(detail)))

    def __getitem__(self, name: str) -> Counter:
        return self.counters[name]

    def get(self, name: str) -> Counter:
        """Counter for *name* without creating it (zero counter if absent)."""
        return self.counters.get(name, Counter())

    def names(self) -> Iterator[str]:
        """Counter names, sorted."""
        return iter(sorted(self.counters))

    def summary(self) -> dict[str, tuple[int, float]]:
        """Mapping of counter name to (count, total)."""
        return {name: (c.count, c.total) for name, c in sorted(self.counters.items())}
