"""The observability hub threaded through simulated runs.

Experiments assert *mechanisms*, not just end-to-end times: e.g. that OCIO's
all-to-all exchange opens O(P^2) point-to-point connections while TCIO's
one-sided flushes open O(P), or that lazy loading coalesces reads.

:class:`TraceRecorder` is the single handle every substrate layer receives.
It now fronts the first-class observability subsystem in :mod:`repro.obs`:

* counters live in a hierarchical :class:`~repro.obs.metrics.MetricsRegistry`
  (``recorder.registry``) — the old ``count``/``get``/``summary`` surface is
  preserved as a thin delegation layer;
* spans go to a :class:`~repro.obs.spans.Tracer` (``recorder.tracer``) on
  the engine's virtual clock, with the current simulated process resolving
  the default track (one track per rank);
* the optional flat event log (``record_events=True``) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.spans import Tracer

__all__ = ["Counter", "TraceEvent", "TraceRecorder"]


def _current_track() -> str:
    """Default span track: the running simulated process, else the engine."""
    from repro.sim.engine import active_process_or_none

    proc = active_process_or_none()
    return proc.name if proc is not None else "engine"


@dataclass
class TraceEvent:
    """One recorded event (only stored when event tracing is enabled)."""

    time: float
    name: str
    detail: dict = field(default_factory=dict)


class TraceRecorder:
    """Collects counters, spans, and (optionally) a full event log."""

    def __init__(
        self,
        *,
        record_events: bool = False,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        if self.tracer.track_of is None:
            self.tracer.track_of = _current_track
        self.record_events = record_events
        self.events: list[TraceEvent] = []

    # ------------------------------------------------------------------
    # counters (legacy surface, now registry-backed)
    # ------------------------------------------------------------------
    @property
    def counters(self) -> dict[str, Counter]:
        """Name -> Counter mapping of every counter seen so far."""
        return self.registry.counters()

    def count(self, name: str, amount: float = 0.0) -> None:
        """Increment counter *name* by one occurrence of *amount* units."""
        self.registry.counter(name).add(amount)

    def event(self, time: float, name: str, **detail: object) -> None:
        """Count and (when enabled) record a timestamped event."""
        self.count(name)
        if self.record_events:
            self.events.append(TraceEvent(time, name, dict(detail)))

    def __getitem__(self, name: str) -> Counter:
        return self.registry.counter(name)

    def get(self, name: str) -> Counter:
        """Counter for *name* without creating it (zero counter if absent)."""
        metric = self.registry.get(name)
        return metric if isinstance(metric, Counter) else Counter()

    def names(self) -> Iterator[str]:
        """Counter names, sorted."""
        return iter(sorted(self.registry.counters()))

    def summary(self) -> dict[str, tuple[int, float]]:
        """Mapping of counter name to (count, total)."""
        return {
            name: (c.count, c.total)
            for name, c in sorted(self.registry.counters().items())
        }

    # ------------------------------------------------------------------
    # spans (delegated to the tracer)
    # ------------------------------------------------------------------
    def span(self, name: str, track: Optional[str] = None, **args):
        """Open a virtual-time span (no-op context manager when disabled)."""
        return self.tracer.span(name, track, **args)

    def complete(
        self, name: str, start: float, end: float, track: Optional[str] = None, **args
    ) -> None:
        """Record an analytically-timed interval (clock-space bounds)."""
        self.tracer.complete(name, start, end, track, **args)

    def instant(self, name: str, track: Optional[str] = None, **args) -> None:
        """Record a zero-duration marker."""
        self.tracer.instant(name, track, **args)
