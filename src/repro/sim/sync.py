"""Synchronization primitives for simulated processes.

These are *virtual-time* primitives: waiters park via
:meth:`SimProcess.block` and are resumed through the engine heap, so wait
order is deterministic (FIFO) and wakeups carry values. Every waiting
method is a generator coroutine — callers ``yield from`` it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import active_process
from repro.sim.process import SimProcess
from repro.util.errors import SimulationError


class SimEvent:
    """A one-shot or repeating value-carrying event.

    ``wait()`` parks the caller; ``fire(value)`` wakes *all* current waiters
    with that value. If the event was already fired and ``sticky`` is true,
    later waiters return immediately with the stored value.
    """

    def __init__(self, name: str = "event", *, sticky: bool = False):
        self.name = name
        self.sticky = sticky
        self._fired = False
        self._value: Any = None
        self._waiters: Deque[SimProcess] = deque()

    @property
    def fired(self) -> bool:
        """Whether the event has fired at least once."""
        return self._fired

    def wait(self):
        """Park the calling process until the next fire (returns its value)."""
        proc = active_process()
        yield from proc.settle()
        if self.sticky and self._fired:
            return self._value
        self._waiters.append(proc)
        return (yield from proc.block(f"wait:{self.name}"))

    def fire(self, value: Any = None) -> None:
        """Wake all current waiters with *value*."""
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, deque()
        for proc in waiters:
            proc.wake(value)


class SimSemaphore:
    """Counting semaphore with FIFO wakeups."""

    def __init__(self, value: int = 0, name: str = "sem"):
        if value < 0:
            raise SimulationError("semaphore initial value must be >= 0")
        self.name = name
        self._value = value
        self._waiters: Deque[SimProcess] = deque()

    @property
    def value(self) -> int:
        """Available permits."""
        return self._value

    def acquire(self):
        """Take a permit, parking FIFO when none are available."""
        if self._value > 0:
            self._value -= 1
            return
        proc = active_process()
        self._waiters.append(proc)
        yield from proc.block(f"acquire:{self.name}")

    def release(self, n: int = 1) -> None:
        """Return *n* permits, waking FIFO waiters first."""
        for _ in range(n):
            if self._waiters:
                self._waiters.popleft().wake()
            else:
                self._value += 1


class SimMutex:
    """FIFO mutual exclusion; the holder is tracked for diagnostics.

    ``acquire`` is a coroutine; there is deliberately no context-manager
    protocol (``__enter__`` cannot ``yield from``) — use
    ``yield from m.acquire()`` / ``try: ... finally: m.release()``.
    """

    def __init__(self, name: str = "mutex"):
        self.name = name
        self._holder: Optional[SimProcess] = None
        self._waiters: Deque[SimProcess] = deque()

    @property
    def locked(self) -> bool:
        """Whether some process holds the mutex."""
        return self._holder is not None

    def acquire(self):
        """Enter the mutex, parking FIFO while another process holds it."""
        proc = active_process()
        if self._holder is None:
            self._holder = proc
            return
        if self._holder is proc:
            raise SimulationError(f"{self.name}: recursive acquire")
        self._waiters.append(proc)
        yield from proc.block(f"lock:{self.name}")

    def release(self) -> None:
        """Leave the mutex, handing it to the oldest waiter."""
        proc = active_process()
        if self._holder is not proc:
            raise SimulationError(f"{self.name}: release by non-holder")
        if self._waiters:
            self._holder = self._waiters.popleft()
            self._holder.wake()
        else:
            self._holder = None


class SimBarrier:
    """An N-party reusable barrier.

    Used by the simulated ``MPI_Barrier`` (plus a latency model layered on
    top in :mod:`repro.simmpi.collectives`).
    """

    def __init__(self, parties: int, name: str = "barrier"):
        if parties < 1:
            raise SimulationError("barrier needs at least one party")
        self.name = name
        self.parties = parties
        self._generation = 0
        self._arrived: Deque[SimProcess] = deque()

    def wait(self):
        """Park until all parties arrive; returns the barrier generation."""
        gen = self._generation
        if len(self._arrived) + 1 == self.parties:
            self._generation += 1
            waiters, self._arrived = self._arrived, deque()
            for proc in waiters:
                proc.wake(gen)
            return gen
        proc = active_process()
        self._arrived.append(proc)
        return (yield from proc.block(f"barrier:{self.name}"))
