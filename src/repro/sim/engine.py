"""The virtual-time event engine.

Design
------
Rank programs are ordinary Python callables that block on simulated
operations. Each runs in its own OS thread, but a baton protocol guarantees
that *exactly one* thread (either the engine or a single process) executes at
any moment, so no user-visible locking is ever needed and execution order is
fully determined by the event heap.

The heap holds ``(time, seq, action)`` entries; ``seq`` is a monotonically
increasing counter that breaks time ties deterministically. The engine loop
pops the next entry, advances the clock, and runs the action. Actions either
do bookkeeping (e.g. finish a network transfer) or resume a blocked process;
a resumed process runs until it blocks again or terminates.

If the heap drains while processes are still blocked, the run is deadlocked
and :class:`~repro.util.errors.DeadlockError` reports who waits on what.
"""

from __future__ import annotations

import heapq
import threading
from typing import Callable, Iterable, Optional, Sequence, TYPE_CHECKING

import _thread

from repro.util.errors import DeadlockError, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess
    from repro.sim.trace import TraceRecorder

_tls = threading.local()

#: Process-wide count of executed events across all engines (monotone).
#: ``repro.perf.hostbench`` reads this to report events/sec per point.
_events_total = 0


def events_executed_total() -> int:
    """Events executed by every engine of this process so far."""
    return _events_total


def current_engine() -> "Engine":
    """The engine owning the calling simulated process.

    Raises SimulationError when called from outside a rank context (for
    instance from test code after the run finished).
    """
    engine = getattr(_tls, "engine", None)
    if engine is None:
        raise SimulationError("not inside a simulated process")
    return engine


def current_process() -> "SimProcess":
    """The simulated process the calling thread belongs to."""
    proc = getattr(_tls, "process", None)
    if proc is None:
        raise SimulationError("not inside a simulated process")
    return proc


class ProcessCrashed(BaseException):
    """A simulated fail-stop process crash.

    Derives from :class:`BaseException` (like the engine's internal kill
    signal) so rank code with a generic ``except Exception`` cannot
    accidentally survive its own death. Raised in-thread at a crash point,
    or injected into a parked process via ``SimProcess.interrupt``.
    """

    def __init__(self, rank: int, where: str = ""):
        self.rank = rank
        self.where = where
        detail = f" at {where}" if where else ""
        super().__init__(f"rank {rank} crashed{detail} (fail-stop)")


class Gate:
    """A one-shot handoff primitive built on a raw lock.

    threading.Semaphore is condition-variable based and costs hundreds of
    microseconds per handoff; a raw lock handoff is an order of magnitude
    cheaper, and the engine<->process baton strictly alternates wait/set
    pairs, which is exactly a binary lock's discipline.
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = _thread.allocate_lock()
        self._lock.acquire()

    def wait(self) -> None:
        """Block the calling OS thread until the gate opens."""
        self._lock.acquire()

    def set(self) -> None:
        """Open the gate (release exactly one waiter)."""
        try:
            self._lock.release()
        except RuntimeError:  # pragma: no cover - teardown race
            pass


class Timer:
    """Handle for a scheduled action; supports cancellation."""

    __slots__ = ("engine", "seq", "time")

    def __init__(self, engine: "Engine", seq: int, time: float):
        self.engine = engine
        self.seq = seq
        self.time = time

    def cancel(self) -> None:
        """Prevent the scheduled action from running."""
        self.engine._actions.pop(self.seq, None)

    @property
    def cancelled(self) -> bool:
        """Whether the action was cancelled or already consumed."""
        return self.seq not in self.engine._actions


class Engine:
    """Virtual clock + event heap + cooperative process scheduler."""

    def __init__(self, *, trace: "Optional[TraceRecorder]" = None):
        self.now: float = 0.0
        self._heap: list[tuple[float, int]] = []  # (time, seq); C-speed compares
        self._actions: dict[int, Callable[[], None]] = {}
        self._seq = 0
        self.events = 0  # actions executed (host-perf: events/sec)
        self._processes: list[SimProcess] = []
        self._baton = Gate()  # process -> engine handoff
        self._running = False
        self._finished = False
        self._failure: BaseException | None = None
        self.trace = trace
        if trace is not None:
            # Spans record on this engine's virtual clock; rebinding keeps
            # the timeline monotonic across sequential engines (write job,
            # then read job) sharing one recorder.
            trace.tracer.bind_clock(lambda: self.now)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None]) -> Timer:
        """Run *action* ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        time = self.now + delay
        self._actions[self._seq] = action
        heapq.heappush(self._heap, (time, self._seq))
        return Timer(self, self._seq, time)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Timer:
        """Run *action* at absolute simulated time *time* (>= now)."""
        return self.schedule(time - self.now, action)

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def add_process(self, process: "SimProcess") -> None:
        """Register a process before the engine starts."""
        if self._running or self._finished:
            raise SimulationError("cannot add processes to a started engine")
        self._processes.append(process)

    def spawn(self, name: str, target: Callable[[], None]) -> "SimProcess":
        """Create and register a process that will start at time 0."""
        from repro.sim.process import SimProcess

        proc = SimProcess(self, name, target)
        self.add_process(proc)
        return proc

    # ------------------------------------------------------------------
    # the baton protocol (internal; used by SimProcess)
    # ------------------------------------------------------------------
    def _enter_process(self, process: "SimProcess") -> None:
        """Hand the baton to *process* and wait until it yields back."""
        process._resume_gate.set()
        self._baton.wait()
        if self._failure is not None:
            failure, self._failure = self._failure, None
            raise failure

    def _yield_to_engine(self) -> None:
        self._baton.set()

    def _report_failure(self, exc: BaseException) -> None:
        self._failure = exc

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, *, until: float | None = None) -> float:
        """Run to completion (or to time *until*); returns the final clock.

        Completion means every process terminated and the heap drained.
        A drained heap with live blocked processes raises DeadlockError.
        """
        if self._finished:
            raise SimulationError("engine already ran")
        self._running = True
        started = self.now
        started_events = self.events
        # The loop below runs once per event across the whole simulation;
        # local bindings and an inlined _pop keep the per-event constant
        # cost down (measurably so at FULL-campaign event counts).
        heap = self._heap
        actions_pop = self._actions.pop
        heappop = heapq.heappop
        try:
            for proc in self._processes:
                proc._start()
            while True:
                if self._failure is not None:
                    failure, self._failure = self._failure, None
                    raise failure
                action = None
                while heap:
                    time, seq = heappop(heap)
                    action = actions_pop(seq, None)
                    if action is not None:
                        break
                if action is None:
                    break
                if until is not None and time > until:
                    self.now = until
                    break
                if time < self.now:
                    raise SimulationError("event time went backwards")
                self.now = time
                self.events += 1
                action()
            if until is None:
                self._check_deadlock()
        finally:
            self._running = False
            self._finished = until is None
            global _events_total
            _events_total += self.events - started_events
            if self._finished:
                self._reap()
        if self.trace is not None:
            self.trace.complete(
                "engine.run", started, self.now, "engine",
                processes=len(self._processes),
            )
        return self.now

    def _pop(self) -> tuple[float, Callable[[], None]] | None:
        heap = self._heap
        actions = self._actions
        while heap:
            time, seq = heapq.heappop(heap)
            action = actions.pop(seq, None)
            if action is not None:
                return time, action
        return None

    def _check_deadlock(self) -> None:
        blocked = {
            i: proc.wait_reason or "blocked"
            for i, proc in enumerate(self._processes)
            if proc.alive
        }
        if blocked:
            self._reap()
            raise DeadlockError(blocked)

    def _reap(self) -> None:
        """Force-terminate leftover process threads (after error/deadlock)."""
        for proc in self._processes:
            proc._kill()

    def kill_process(self, process: "SimProcess", *, at: float | None = None) -> Timer:
        """Schedule a fail-stop crash of *process* (at time *at*, default now).

        The crash is delivered through the event heap like every other
        action: if the process is parked in ``block()`` when the event
        fires, :class:`ProcessCrashed` is raised at its wait point; a
        process that already terminated (or crashed) is left alone.
        """
        index = self._processes.index(process)

        def fire() -> None:
            if not process.alive or process.crashed:
                return
            process.interrupt(ProcessCrashed(index, "killed"))

        delay = 0.0 if at is None else at - self.now
        return self.schedule(delay, fire)

    # ------------------------------------------------------------------
    # conveniences for assertions and reporting
    # ------------------------------------------------------------------
    @property
    def processes(self) -> Sequence["SimProcess"]:
        """All registered processes, in spawn order."""
        return tuple(self._processes)

    def run_processes(
        self, targets: Iterable[Callable[[], None]], *, until: float | None = None
    ) -> float:
        """Spawn one process per callable and run; returns final clock."""
        for i, target in enumerate(targets):
            self.spawn(f"proc{i}", target)
        return self.run(until=until)
