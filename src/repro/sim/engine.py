"""The virtual-time event engine.

Design
------
Rank programs are Python *generator coroutines*: any operation that blocks
in simulated time is a generator, and callers chain with ``yield from``
down to :meth:`SimProcess.block`, which yields a wait-reason string to the
kernel. The engine resumes a parked coroutine directly with ``gen.send``
(or injects a crash with ``gen.throw``) — there are no OS threads, no
locks, and no baton handoff. Exactly one coroutine executes at any moment
by construction, so execution order is fully determined by the event heap.

The heap holds ``(time, seq)`` entries; ``seq`` is a monotonically
increasing counter that breaks time ties deterministically. The engine loop
pops the next entry, advances the clock, and runs the action. Actions
either do bookkeeping (e.g. finish a network transfer) or resume a blocked
process; a resumed process runs until it blocks again or terminates.

Plain callables that never block are also accepted as process targets:
they run to completion during process activation.

If the heap drains while processes are still blocked, the run is deadlocked
and :class:`~repro.util.errors.DeadlockError` reports who waits on what.

Events/sec accounting is per-engine (``Engine.events``) with a process-wide
monotone aggregate (:func:`events_executed_total`) that stays correct when
several engines exist concurrently (campaign spawn-pool children, nested
test runs): retired engines fold their count into a module total, and live
engines contribute their current count on demand.
"""

from __future__ import annotations

import heapq
import warnings
import weakref
from typing import Callable, Iterable, Optional, Sequence, TYPE_CHECKING

from repro.util.errors import DeadlockError, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess
    from repro.sim.trace import TraceRecorder

#: Events executed by engines that already retired (finished or were
#: garbage collected). Live engines are tracked separately so concurrent
#: engines cannot interleave into a misleading aggregate.
_retired_events = 0

#: Live engines whose ``events`` counts have not been retired yet.
_live_engines: "weakref.WeakSet[Engine]" = weakref.WeakSet()

#: The process currently executing (exactly one, or None between steps).
_active: "Optional[SimProcess]" = None


def events_executed_total() -> int:
    """Events executed by every engine of this process so far (monotone)."""
    return _retired_events + sum(e.events for e in _live_engines)


def _retire_engine(engine: "Engine") -> None:
    """Fold a finished engine's event count into the retired total."""
    global _retired_events
    if engine in _live_engines:
        _live_engines.discard(engine)
        _retired_events += engine.events


def active_process() -> "SimProcess":
    """The simulated process currently executing.

    This is the documented accessor of the ``repro.sim`` API for code that
    runs *inside* a rank program (library substrate, tests). Raises
    SimulationError when called from outside a rank context (for instance
    from test code after the run finished).
    """
    if _active is None:
        raise SimulationError("not inside a simulated process")
    return _active


def active_process_or_none() -> "Optional[SimProcess]":
    """The executing simulated process, or None outside any rank context."""
    return _active


def active_engine() -> "Engine":
    """The engine owning the currently executing simulated process."""
    return active_process().engine


def current_engine() -> "Engine":
    """Deprecated alias of :func:`active_engine` (thread-local era API)."""
    warnings.warn(
        "current_engine() is deprecated; use repro.sim.active_engine() "
        "or the SimContext passed to the rank program",
        DeprecationWarning,
        stacklevel=2,
    )
    return active_engine()


def current_process() -> "SimProcess":
    """Deprecated alias of :func:`active_process` (thread-local era API)."""
    warnings.warn(
        "current_process() is deprecated; use repro.sim.active_process() "
        "or the SimContext passed to the rank program",
        DeprecationWarning,
        stacklevel=2,
    )
    return active_process()


class ProcessCrashed(BaseException):
    """A simulated fail-stop process crash.

    Derives from :class:`BaseException` (like generator teardown) so rank
    code with a generic ``except Exception`` cannot accidentally survive
    its own death. Raised in-coroutine at a crash point, or injected into
    a parked process via ``SimProcess.interrupt``.
    """

    def __init__(self, rank: int, where: str = ""):
        self.rank = rank
        self.where = where
        detail = f" at {where}" if where else ""
        super().__init__(f"rank {rank} crashed{detail} (fail-stop)")


class Timer:
    """Handle for a scheduled action; supports cancellation."""

    __slots__ = ("engine", "seq", "time")

    def __init__(self, engine: "Engine", seq: int, time: float):
        self.engine = engine
        self.seq = seq
        self.time = time

    def cancel(self) -> None:
        """Prevent the scheduled action from running."""
        self.engine._actions.pop(self.seq, None)

    @property
    def cancelled(self) -> bool:
        """Whether the action was cancelled or already consumed."""
        return self.seq not in self.engine._actions


class Engine:
    """Virtual clock + event heap + coroutine process scheduler."""

    def __init__(self, *, trace: "Optional[TraceRecorder]" = None):
        self.now: float = 0.0
        self._heap: list[tuple[float, int]] = []  # (time, seq); C-speed compares
        self._actions: dict[int, Callable[[], None]] = {}
        self._seq = 0
        self.events = 0  # actions executed (host-perf: events/sec)
        self._processes: list[SimProcess] = []
        self._running = False
        self._finished = False
        self.trace = trace
        _live_engines.add(self)
        if trace is not None:
            # Spans record on this engine's virtual clock; rebinding keeps
            # the timeline monotonic across sequential engines (write job,
            # then read job) sharing one recorder.
            trace.tracer.bind_clock(lambda: self.now)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None]) -> Timer:
        """Run *action* ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        time = self.now + delay
        self._actions[self._seq] = action
        heapq.heappush(self._heap, (time, self._seq))
        return Timer(self, self._seq, time)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Timer:
        """Run *action* at absolute simulated time *time* (>= now)."""
        return self.schedule(time - self.now, action)

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def add_process(self, process: "SimProcess") -> None:
        """Register a process before the engine starts."""
        if self._running or self._finished:
            raise SimulationError("cannot add processes to a started engine")
        self._processes.append(process)

    def spawn(self, name: str, target: Callable[[], object]) -> "SimProcess":
        """Create and register a process that will start at time 0.

        *target* may be a generator function (a coroutine rank program
        that blocks via ``yield from``) or a plain callable that never
        blocks.
        """
        from repro.sim.process import SimProcess

        proc = SimProcess(self, name, target)
        self.add_process(proc)
        return proc

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, *, until: float | None = None) -> float:
        """Run to completion (or to time *until*); returns the final clock.

        Completion means every process terminated and the heap drained.
        A drained heap with live blocked processes raises DeadlockError.
        A failure inside a rank coroutine propagates out of the event that
        resumed it — before any later event runs.
        """
        if self._finished:
            raise SimulationError("engine already ran")
        self._running = True
        started = self.now
        # The loop below runs once per event across the whole simulation;
        # local bindings and an inlined _pop keep the per-event constant
        # cost down (measurably so at FULL-campaign event counts).
        heap = self._heap
        actions_pop = self._actions.pop
        heappop = heapq.heappop
        try:
            for proc in self._processes:
                proc._start()
            while True:
                action = None
                while heap:
                    time, seq = heappop(heap)
                    action = actions_pop(seq, None)
                    if action is not None:
                        break
                if action is None:
                    break
                if until is not None and time > until:
                    self.now = until
                    break
                if time < self.now:
                    raise SimulationError("event time went backwards")
                self.now = time
                self.events += 1
                action()
            if until is None:
                self._check_deadlock()
        finally:
            self._running = False
            self._finished = until is None
            if self._finished:
                self._reap()
                _retire_engine(self)
        if self.trace is not None:
            self.trace.complete(
                "engine.run", started, self.now, "engine",
                processes=len(self._processes),
            )
        return self.now

    def _pop(self) -> tuple[float, Callable[[], None]] | None:
        heap = self._heap
        actions = self._actions
        while heap:
            time, seq = heapq.heappop(heap)
            action = actions.pop(seq, None)
            if action is not None:
                return time, action
        return None

    def _check_deadlock(self) -> None:
        blocked = {
            i: proc.wait_reason or "blocked"
            for i, proc in enumerate(self._processes)
            if proc.alive
        }
        if blocked:
            self._reap()
            raise DeadlockError(blocked)

    def _reap(self) -> None:
        """Close leftover process coroutines (after error/deadlock)."""
        for proc in self._processes:
            proc._kill()

    def kill_process(self, process: "SimProcess", *, at: float | None = None) -> Timer:
        """Schedule a fail-stop crash of *process* (at time *at*, default now).

        The crash is delivered through the event heap like every other
        action: if the process is parked in ``block()`` when the event
        fires, :class:`ProcessCrashed` is raised at its wait point; a
        process that already terminated (or crashed) is left alone.
        """
        index = self._processes.index(process)

        def fire() -> None:
            if not process.alive or process.crashed:
                return
            process.interrupt(ProcessCrashed(index, "killed"))

        delay = 0.0 if at is None else at - self.now
        return self.schedule(delay, fire)

    # ------------------------------------------------------------------
    # conveniences for assertions and reporting
    # ------------------------------------------------------------------
    @property
    def processes(self) -> Sequence["SimProcess"]:
        """All registered processes, in spawn order."""
        return tuple(self._processes)

    def run_processes(
        self, targets: Iterable[Callable[[], object]], *, until: float | None = None
    ) -> float:
        """Spawn one process per callable and run; returns final clock."""
        for i, target in enumerate(targets):
            self.spawn(f"proc{i}", target)
        return self.run(until=until)
