"""The stable ``repro.sim`` public API: contexts and coroutine helpers.

Rank programs are generator coroutines. Code that needs the simulation
context (clock, sleep/charge/settle, spawn) should either receive a
:class:`SimContext` explicitly or fetch one with :func:`context` — the
documented accessor that replaces the deprecated thread-local era
``current_engine()`` / ``current_process()`` pair.

Coroutine conventions
---------------------
* every simulated-blocking operation is a generator; call it with
  ``yield from`` (``result = yield from op(...)``);
* non-blocking operations (``charge``, probes, engine-side callbacks)
  are plain calls;
* :func:`run_coroutine` bridges APIs that accept either kind of thunk.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Callable, Optional

from repro.sim.engine import Engine, active_process, active_process_or_none
from repro.sim.process import SimProcess


def run_coroutine(value: Any):
    """Delegate to *value* when it is a generator; else return it as-is.

    The bridge for "maybe blocking" thunks: retry helpers and request
    objects accept both plain callables and coroutines, and callers
    uniformly write ``result = yield from run_coroutine(fn(...))``.
    """
    if isinstance(value, GeneratorType):
        value = yield from value
    return value


class SimContext:
    """The simulation facade handed to (or fetched by) rank programs.

    A thin view over one ``(engine, process)`` pair: virtual clock,
    time-charging primitives, and process metadata. Blocking methods are
    coroutines (``yield from ctx.sleep(...)``); the rest are plain.
    """

    __slots__ = ("engine", "process")

    def __init__(self, engine: Engine, process: SimProcess):
        self.engine = engine
        self.process = process

    # -- identity ------------------------------------------------------
    @property
    def name(self) -> str:
        """The process name (``rank3``, ...)."""
        return self.process.name

    @property
    def now(self) -> float:
        """The engine's virtual clock."""
        return self.engine.now

    # -- time (blocking methods are coroutines) ------------------------
    def sleep(self, duration: float):
        """Occupy the process for *duration* simulated seconds."""
        return self.process.sleep(duration)

    def charge(self, duration: float) -> None:
        """Accrue lazily-settled busy time (non-blocking)."""
        self.process.charge(duration)

    def settle(self):
        """Pay accrued charges by sleeping them off."""
        return self.process.settle()

    def block(self, reason: str):
        """Park until woken; returns the wake value (kernel primitive)."""
        return self.process.block(reason)

    # -- scheduling (engine-side, non-blocking) ------------------------
    def schedule(self, delay: float, action: Callable[[], None]):
        """Run *action* after *delay* simulated seconds."""
        return self.engine.schedule(delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]):
        """Run *action* at absolute virtual time *time*."""
        return self.engine.schedule_at(time, action)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SimContext {self.process.name} t={self.engine.now:g}>"


def context() -> SimContext:
    """The context of the currently executing simulated process.

    Raises SimulationError outside any rank context.
    """
    proc = active_process()
    return SimContext(proc.engine, proc)


def context_or_none() -> Optional[SimContext]:
    """Like :func:`context`, but None outside any rank context."""
    proc = active_process_or_none()
    return None if proc is None else SimContext(proc.engine, proc)
