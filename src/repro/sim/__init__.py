"""Deterministic discrete-event simulation engine.

The whole reproduction runs on virtual time: rank programs are generator
coroutines resumed directly by the engine loop (no OS threads), and every
blocking operation (message delivery, RMA completion, storage transfer,
lock wait) is an event on the engine's heap. Ties are broken by insertion
order, so simulations replay bit-identically.

Stable public API (see docs/architecture.md for the migration guide):

* :class:`Engine`, :class:`SimProcess` (constructed via
  ``Engine.spawn`` / ``SimProcess.spawn``);
* :func:`active_process` / :func:`active_engine` — documented accessors
  for code running inside a rank program;
* :class:`SimContext` / :func:`context` — the facade handed to rank
  programs that bundles clock + time primitives;
* :func:`run_coroutine` — bridge for maybe-blocking thunks.

``current_engine()`` / ``current_process()`` / ``set_thread_hook()`` are
deprecated shims from the thread-per-rank era and emit
``DeprecationWarning``.
"""

from repro.sim.api import SimContext, context, context_or_none, run_coroutine
from repro.sim.engine import (
    Engine,
    ProcessCrashed,
    active_engine,
    active_process,
    active_process_or_none,
    current_engine,
    current_process,
    events_executed_total,
)
from repro.sim.process import SimProcess, set_thread_hook
from repro.sim.sync import SimEvent, SimSemaphore, SimBarrier, SimMutex
from repro.sim.trace import TraceRecorder, Counter

__all__ = [
    "Engine",
    "ProcessCrashed",
    "SimContext",
    "SimProcess",
    "SimEvent",
    "SimSemaphore",
    "SimBarrier",
    "SimMutex",
    "TraceRecorder",
    "Counter",
    "active_engine",
    "active_process",
    "active_process_or_none",
    "context",
    "context_or_none",
    "current_engine",
    "current_process",
    "events_executed_total",
    "run_coroutine",
    "set_thread_hook",
]
