"""Deterministic discrete-event simulation engine.

The whole reproduction runs on virtual time: rank programs execute in
cooperative OS threads, exactly one of which runs at any instant, and every
blocking operation (message delivery, RMA completion, storage transfer, lock
wait) is an event on the engine's heap. Ties are broken by insertion order,
so simulations replay bit-identically.
"""

from repro.sim.engine import Engine, ProcessCrashed, current_engine, current_process
from repro.sim.process import SimProcess
from repro.sim.sync import SimEvent, SimSemaphore, SimBarrier, SimMutex
from repro.sim.trace import TraceRecorder, Counter

__all__ = [
    "Engine",
    "ProcessCrashed",
    "current_engine",
    "current_process",
    "SimProcess",
    "SimEvent",
    "SimSemaphore",
    "SimBarrier",
    "SimMutex",
    "TraceRecorder",
    "Counter",
]
