"""The interconnect fabric: rank-to-rank message timing and delivery.

``Fabric.transfer`` computes, at submission time, when a message's last byte
reaches the destination — pipelining it through the sender NIC, the fabric
core and the receiver NIC — then schedules a single delivery callback on the
engine. Intra-node messages bypass the NICs/core and use memory bandwidth.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.netsim.model import NetworkSpec
from repro.netsim.server import ReservationServer
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder
from repro.util.errors import SimulationError


class Fabric:
    """Connects ``nranks`` ranks placed on nodes via ``node_of``.

    Parameters
    ----------
    engine: the event engine providing virtual time.
    spec: cost-model constants.
    node_of: per-rank node index (ranks on one node share its NIC ports).
    trace: optional trace recorder (counters ``net.msg``, ``net.bytes``,
        ``net.connection``, ``net.intranode``).
    faults: optional bound :class:`repro.faults.FaultPlan`; inter-node
        messages may then suffer latency spikes and transient drops
        (modelled as retransmission after a delivery timeout — the
        message still arrives, so two-sided matching cannot wedge).
    """

    def __init__(
        self,
        engine: Engine,
        spec: NetworkSpec,
        node_of: Sequence[int],
        trace: Optional[TraceRecorder] = None,
        faults=None,
    ):
        spec.validate()
        self.engine = engine
        self.spec = spec
        self.node_of = list(node_of)
        self.trace = trace
        self.faults = faults
        n_nodes = (max(self.node_of) + 1) if self.node_of else 1
        self.send_ports = [
            ReservationServer(f"nic{n}.tx", spec.link_bandwidth, spec.per_message_overhead)
            for n in range(n_nodes)
        ]
        self.recv_ports = [
            ReservationServer(f"nic{n}.rx", spec.link_bandwidth, spec.per_message_overhead)
            for n in range(n_nodes)
        ]
        self.core = ReservationServer("fabric.core", spec.fabric_bandwidth)
        self.memory = [
            ReservationServer(f"mem{n}", spec.memcpy_bandwidth, spec.per_message_overhead)
            for n in range(n_nodes)
        ]
        self._connected: set[tuple[int, int]] = set()
        # Metric objects resolved once: delivery_time runs per message
        # (millions per FULL campaign) and the by-name registry lookups
        # were measurable in whole-run profiles.
        if trace is not None:
            registry = trace.registry
            self._c_msg = registry.counter("net.msg")
            self._c_intranode = registry.counter("net.intranode")
            self._h_msg_bytes = registry.histogram("net.msg_bytes")
        else:
            self._c_msg = self._c_intranode = self._h_msg_bytes = None

    @property
    def n_connections(self) -> int:
        """Distinct (source rank, destination rank) pairs seen so far."""
        return len(self._connected)

    def _node(self, rank: int) -> int:
        try:
            return self.node_of[rank]
        except IndexError:
            raise SimulationError(f"rank {rank} outside fabric") from None

    def delivery_time(self, src: int, dst: int, nbytes: int, *, rma: bool = False) -> float:
        """Reserve resources for one message; returns absolute delivery time.

        ``rma=True`` marks NIC-offloaded one-sided traffic, which pays the
        (much smaller) ``rma_message_overhead`` at each port instead of the
        two-sided per-message CPU overhead.
        """
        now = self.engine.now
        if nbytes < 0:
            raise SimulationError("negative message size")
        src_node = self._node(src)
        dst_node = self._node(dst)
        overhead = self.spec.rma_message_overhead if rma else None
        trace = self.trace
        tracer = trace.tracer if trace is not None else None
        if trace is not None:
            self._c_msg.add(nbytes)
            self._h_msg_bytes.observe(nbytes)
        if src_node == dst_node:
            if trace is not None:
                self._c_intranode.add(nbytes)
            t_mem = self.memory[src_node].reserve(now, nbytes, overhead)
            if tracer is not None and tracer.enabled and nbytes > 0:
                tracer.complete(
                    "net.local", now, t_mem, f"mem{src_node}",
                    src=src, dst=dst, bytes=nbytes,
                )
            return t_mem
        start = now
        pair = (src, dst)
        if pair not in self._connected:
            self._connected.add(pair)
            start += self.spec.connection_setup
            if trace is not None:
                trace.count("net.connection")
                if tracer is not None and tracer.enabled:
                    tracer.complete(
                        "net.conn.setup", now, start, f"nic{src_node}",
                        src=src, dst=dst,
                    )
        t_tx = self.send_ports[src_node].reserve(start, nbytes, overhead)
        t_core = self.core.reserve(t_tx, nbytes)
        t_rx = self.recv_ports[dst_node].reserve(
            t_core + self.spec.latency, nbytes, overhead
        )
        if self.faults is not None:
            penalty = self.faults.network_penalty(src, dst, nbytes)
            if penalty > 0.0:
                t_rx += penalty
        if tracer is not None and tracer.enabled:
            tracer.complete(
                "net.xfer", start, t_rx, f"nic{src_node}",
                src=src, dst=dst, bytes=nbytes, rma=rma,
            )
        return t_rx

    def transfer(
        self,
        src: int,
        dst: int,
        nbytes: int,
        on_delivered: Callable[[], None],
        *,
        rma: bool = False,
    ) -> float:
        """Schedule *on_delivered* at the message's delivery time (returned)."""
        t = self.delivery_time(src, dst, nbytes, rma=rma)
        self.engine.schedule_at(t, on_delivered)
        return t

    def control_delay(self, src: int, dst: int, *, rma: bool = False) -> float:
        """Delivery time for a zero-payload control message (handshakes,
        lock requests). Shares ports/latency but carries no data bytes."""
        return self.delivery_time(src, dst, 0, rma=rma)

    def staging_copy(self, rank: int, nbytes: int) -> float:
        """Reserve *rank*'s node memory engine for one staging memcpy.

        Intra-node aggregation (``repro.topo``) moves data between ranks of
        one node through shared staging buffers. Those copies contend with
        intra-node messages for the node's memcpy bandwidth, but they are
        not fabric messages: they count ``topo.staging.bytes`` instead of
        ``net.msg``/``net.intranode``. Returns the absolute completion time.
        """
        if nbytes < 0:
            raise SimulationError("negative staging copy size")
        node = self._node(rank)
        t = self.memory[node].reserve(self.engine.now, nbytes, None)
        if self.trace is not None and nbytes > 0:
            self.trace.count("topo.staging.bytes", nbytes)
        return t
