"""Network parameterization.

Defaults approximate the paper's testbed fabric (Mellanox InfiniBand QDR,
40 Gbit/s point-to-point, fat tree) after the global size scale-down
described in DESIGN.md; see :mod:`repro.cluster.lonestar` for the calibrated
preset actually used by the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GIB, KIB, MIB


@dataclass(frozen=True)
class NetworkSpec:
    """Cost-model constants for the simulated interconnect.

    Attributes
    ----------
    link_bandwidth:
        Per-NIC bandwidth in bytes/s, each direction modeled separately.
    latency:
        End-to-end propagation latency per message, seconds.
    per_message_overhead:
        CPU/NIC injection overhead charged per message on each port,
        seconds. This is what makes many small messages slower than one
        large one even with infinite bandwidth.
    connection_setup:
        One-time cost the first time a given (source rank, destination
        rank) pair communicates — queue-pair establishment on InfiniBand.
        The paper attributes OCIO's poor scaling to exactly this: "the
        number of network connections increases quickly with the growth of
        computing nodes".
    fabric_bandwidth:
        Aggregate bytes/s through the fat-tree core (bisection bandwidth).
        Simultaneous transfers share it FIFO, so synchronized bursts pay a
        queueing penalty that staggered transfers avoid.
    memcpy_bandwidth:
        Bytes/s for intra-node transfers (shared-memory copies bypass the
        NIC and fabric but still pay per-message overhead).
    eager_limit:
        Messages at or below this many bytes use the eager protocol (no
        rendezvous handshake); larger ones handshake first.
    """

    link_bandwidth: float = 3.0 * GIB
    latency: float = 2.0e-6
    per_message_overhead: float = 0.5e-6
    connection_setup: float = 100.0e-6
    fabric_bandwidth: float = 64.0 * GIB
    memcpy_bandwidth: float = 6.0 * GIB
    eager_limit: int = 12 * KIB
    #: Two-sided receive matching costs (charged per *message*, serialized
    #: at the receiving rank's matching engine; one-sided RMA bypasses this
    #: entirely — RDMA writes never touch the target CPU). The per-entry
    #: term models posted/unexpected queue pressure: a rank sinking P
    #: simultaneous messages pays O(P^2) total matching time — the
    #: "collective wall" that makes synchronized all-to-all exchanges
    #: degrade superlinearly at scale.
    match_overhead: float = 0.4e-6
    match_queue_overhead: float = 1.0e-6
    #: Origin-side cost of one passive-target lock epoch (lock + unlock
    #: bookkeeping, RTT-bound on real fabrics). Charged once per
    #: MPI_Win_lock; data transfer costs are separate. Shared epochs are
    #: cheaper: concurrent readers piggyback on a cached lock state, while
    #: exclusive epochs must invalidate it.
    rma_epoch_overhead: float = 6.0e-6
    rma_shared_epoch_overhead: float = 1.5e-6
    #: Per-message NIC-port overhead for one-sided (RDMA) traffic. RDMA
    #: puts/gets are serviced by NIC DMA engines without host CPU
    #: involvement, so their per-message port cost is far below the
    #: two-sided ``per_message_overhead``.
    rma_message_overhead: float = 0.1e-6

    def validate(self) -> None:
        """Raise ValueError on inconsistent network constants."""
        if min(self.link_bandwidth, self.fabric_bandwidth, self.memcpy_bandwidth) <= 0:
            raise ValueError("bandwidths must be positive")
        if min(self.latency, self.per_message_overhead, self.connection_setup) < 0:
            raise ValueError("latencies must be non-negative")
        if min(self.match_overhead, self.match_queue_overhead) < 0:
            raise ValueError("matching overheads must be non-negative")
        if self.rma_epoch_overhead < 0 or self.rma_shared_epoch_overhead < 0:
            raise ValueError("rma epoch overheads must be non-negative")
        if self.rma_message_overhead < 0:
            raise ValueError("rma_message_overhead must be non-negative")
        if self.eager_limit < 0:
            raise ValueError("eager_limit must be non-negative")

    def message_time(self, nbytes: int) -> float:
        """Uncontended single-message transfer time (for sanity checks)."""
        return (
            self.latency
            + 2 * self.per_message_overhead
            + nbytes / self.link_bandwidth
        )


#: A spec with huge bandwidth and zero latency; useful in unit tests that
#: check data movement semantics without caring about timing.
INSTANT = NetworkSpec(
    link_bandwidth=1e18,
    latency=0.0,
    per_message_overhead=0.0,
    connection_setup=0.0,
    fabric_bandwidth=1e18,
    memcpy_bandwidth=1e18,
    eager_limit=64 * MIB,
    match_overhead=0.0,
    match_queue_overhead=0.0,
    rma_epoch_overhead=0.0,
    rma_shared_epoch_overhead=0.0,
    rma_message_overhead=0.0,
)
