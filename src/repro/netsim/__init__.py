"""Simulated interconnect (InfiniBand-like fat tree, fluid approximation).

Messages pipeline through three FIFO reservation servers — the sender NIC,
the fabric core (aggregate bisection bandwidth), and the receiver NIC — plus
a propagation latency and a one-time per-rank-pair connection setup cost.
This reproduces the two effects the paper's analysis rests on: connection
count (OCIO's all-to-all opens O(P^2) pairs, TCIO's one-sided traffic O(P))
and burstiness (synchronized all-to-all exchanges saturate the shared core).
"""

from repro.netsim.model import NetworkSpec
from repro.netsim.fabric import Fabric
from repro.netsim.server import ReservationServer

__all__ = ["NetworkSpec", "Fabric", "ReservationServer"]
