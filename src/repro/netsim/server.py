"""FIFO reservation servers — the building block of all time modeling.

A :class:`ReservationServer` represents a rate-limited resource (a NIC port,
the fabric core, an OST disk). Work arriving at time ``t`` starts no earlier
than the end of previously reserved work, runs for
``per_request + nbytes / rate`` seconds, and the server returns the finish
time immediately. Because the simulation submits work in nondecreasing
virtual-time order, this reserves exact FIFO schedules with **one heap event
per message end-to-end** instead of per-hop events — the trick that lets a
1024-rank all-to-all (a million messages) simulate in seconds.
"""

from __future__ import annotations

from repro.util.errors import SimulationError


class ReservationServer:
    """A FIFO fluid resource with fixed service rate.

    Parameters
    ----------
    name: diagnostic label.
    rate: service rate in bytes/second.
    per_request: fixed seconds charged per reservation (seek, DMA setup...).
    """

    __slots__ = ("name", "rate", "per_request", "busy_until", "requests", "busy_time")

    def __init__(self, name: str, rate: float, per_request: float = 0.0):
        if rate <= 0:
            raise SimulationError(f"{name}: rate must be positive")
        if per_request < 0:
            raise SimulationError(f"{name}: per_request must be >= 0")
        self.name = name
        self.rate = rate
        self.per_request = per_request
        self.busy_until = 0.0
        self.requests = 0
        self.busy_time = 0.0

    def reserve(self, arrival: float, nbytes: float, overhead: float | None = None) -> float:
        """Reserve service for *nbytes* arriving at *arrival*; returns finish time.

        Arrivals must be nondecreasing in simulated time (the engine
        guarantees this because reservations are made at the current clock).
        ``overhead`` overrides the server's fixed per-request cost (e.g.
        NIC-offloaded RDMA traffic pays less CPU than two-sided messages).
        """
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative reservation")
        start = arrival if arrival > self.busy_until else self.busy_until
        service = (self.per_request if overhead is None else overhead) + nbytes / self.rate
        self.busy_until = start + service
        self.requests += 1
        self.busy_time += service
        return self.busy_until

    def utilization(self, horizon: float) -> float:
        """Fraction of [0, horizon] this server spent busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ReservationServer {self.name} busy_until={self.busy_until:.6f}>"
