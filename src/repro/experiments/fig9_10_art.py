"""Figures 9 & 10: ART dump/restart throughput, TCIO vs vanilla MPI-IO.

Strong scaling (the total root-cell count is fixed; Table IV's 1024
segments) over 64..1024 processes. Paper shape:

* TCIO is far faster — up to ~100x — than vanilla MPI-IO;
* at >= 512 processes, ART with vanilla MPI-IO exceeds 90 minutes, so the
  paper's MPI-IO curves are truncated there (we run it to completion in
  simulation and report the cap breach);
* TCIO's throughput first rises with process count, then dips at the
  largest scale (the centralized file system becomes the bottleneck).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.charts import log_scale_chart
from repro.experiments.common import FULL, ExperimentScale, resolve_points
from repro.perf.points import Point, points_for
from repro.util.tables import render_series
from repro.util.units import MIB

#: The paper's batch limit — runs past 90 minutes were cut. Mapped into
#: simulated seconds through the ART workload's combined scale factor
#: (the global 1/4096 size dilation times the tree/record compression of
#: ``ArtWorkload.cell_scale``); calibrated so the limit sits where the
#: paper reports it: above every completed <=256-process vanilla run.
WALL_CAP_SIM_SECONDS = 1.0


@dataclass
class Fig910Data:
    """Dump (Fig. 9) and restart (Fig. 10) series over process counts."""

    proc_counts: list[int] = field(default_factory=list)
    dump: dict[str, list[Optional[float]]] = field(default_factory=dict)
    restart: dict[str, list[Optional[float]]] = field(default_factory=dict)
    capped: dict[str, list[bool]] = field(default_factory=dict)
    snapshot_bytes: int = 0

    def render(self) -> str:
        """Figures 9 and 10 as tables plus log-scale ASCII charts."""
        def mbps(series: dict) -> dict:
            return {
                k: [None if v is None else round(v / MIB, 2) for v in vs]
                for k, vs in series.items()
            }

        def raw(series: dict) -> dict:
            return {
                k: [None if v is None else v / MIB for v in vs]
                for k, vs in series.items()
            }

        return (
            render_series(
                "procs", self.proc_counts, mbps(self.dump),
                title="Fig. 9: ART write throughput (MB/s); -- = exceeded 90-min cap",
            )
            + "\n\n"
            + render_series(
                "procs", self.proc_counts, mbps(self.restart),
                title="Fig. 10: ART read throughput (MB/s); -- = exceeded 90-min cap",
            )
            + "\n\n"
            + log_scale_chart(self.proc_counts, raw(self.dump), title="Fig. 9 (log y)")
            + "\n\n"
            + log_scale_chart(self.proc_counts, raw(self.restart), title="Fig. 10 (log y)")
        )

    # -- acceptance checks ----------------------------------------------
    def tcio_speedup(self, phase: str = "dump") -> list[Optional[float]]:
        """Per-point TCIO/MPI-IO throughput ratios (None when capped)."""
        series = self.dump if phase == "dump" else self.restart
        out: list[Optional[float]] = []
        for t, m in zip(series["TCIO"], series["MPI-IO"]):
            out.append(None if (t is None or m is None or m == 0) else t / m)
        return out

    def tcio_always_faster(self) -> bool:
        """Paper shape: TCIO beats vanilla MPI-IO at every point."""
        return all(
            s is None or s > 1.0
            for phase in ("dump", "restart")
            for s in self.tcio_speedup(phase)
        )

    def tcio_rises_then_dips(self, phase: str = "dump") -> bool:
        """Paper shape: TCIO throughput peaks then declines at scale."""
        series = (self.dump if phase == "dump" else self.restart)["TCIO"]
        vals = [v for v in series if v is not None]
        if len(vals) < 3:
            return False
        peak = max(range(len(vals)), key=lambda i: vals[i])
        return 0 < peak and vals[-1] < vals[peak]


def run_fig9_10(
    scale: ExperimentScale = FULL,
    *,
    verify: bool = True,
    verbose: bool = False,
    runner=None,
) -> Fig910Data:
    """Regenerate Figs. 9 and 10.

    *runner* swaps in a pooled/cached executor; see :func:`run_fig5`.
    """
    results = resolve_points(points_for("fig910", scale), runner, verify=verify)
    data = Fig910Data(proc_counts=list(scale.art_proc_counts))
    for label in ("TCIO", "MPI-IO"):
        data.dump[label] = []
        data.restart[label] = []
        data.capped[label] = []
    # The cap is calibrated against the full workload; reduced campaigns
    # run uncapped (their vanilla runs are proportionally shorter anyway).
    full_workload = (scale.art_segments, scale.art_cell_scale) == (
        FULL.art_segments,
        FULL.art_cell_scale,
    )
    cap = WALL_CAP_SIM_SECONDS if full_workload else float("inf")
    for nprocs in scale.art_proc_counts:
        for label in ("TCIO", "MPI-IO"):
            point = Point.make(
                "fig910", method=label, nprocs=nprocs,
                segments=scale.art_segments, cell_scale=scale.art_cell_scale,
            )
            result = results[point]
            data.snapshot_bytes = result["snapshot_bytes"]
            over_cap = result["dump_seconds"] + result["restart_seconds"] > cap
            data.capped[label].append(over_cap)
            data.dump[label].append(None if over_cap else result["dump_throughput"])
            data.restart[label].append(
                None if over_cap else result["restart_throughput"]
            )
            if verbose:  # pragma: no cover
                print(
                    f"fig9/10 {label} P={nprocs}: "
                    f"dump {result['dump_throughput'] / MIB:.2f} MB/s, "
                    f"restart {result['restart_throughput'] / MIB:.2f} MB/s"
                    + (" [over 90-min cap]" if over_cap else "")
                )
    return data


if __name__ == "__main__":  # pragma: no cover
    print(run_fig9_10(verbose=True).render())
