"""Shared experiment scaffolding: scales, labels, acceptance helpers.

``FULL`` runs the paper's parameter grid through the globally scaled
cluster (LONESTAR_SCALE); ``SMOKE`` is a minutes-not-hours variant for CI
and unit tests that keeps every qualitative mechanism alive (interleaving,
aggregation, OOM point) at tiny sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cluster.lonestar import LONESTAR_SCALE
from repro.util.units import format_size


@dataclass(frozen=True)
class ExperimentScale:
    """Sizing of one experiment campaign."""

    name: str
    #: process counts for the scaling figures (the paper: 64..1024)
    proc_counts: tuple[int, ...] = (64, 128, 256, 512, 1024)
    #: LENarray (elements) for Table II after the global scale-down
    len_array: int = (4 * 2**20) // LONESTAR_SCALE
    #: LENarray sweep for Fig. 6/7 (paper: 1M..64M elements at 64 procs)
    filesize_lens: tuple[int, ...] = tuple(
        (n * 2**20) // LONESTAR_SCALE for n in (1, 4, 16, 64)
    )
    filesize_procs: int = 64
    #: ART workload (Table IV is 1024 segments)
    art_segments: int = 1024
    art_cell_scale: int = 32
    art_proc_counts: tuple[int, ...] = (64, 128, 256, 512, 1024)

FULL = ExperimentScale(name="full")

SMOKE = ExperimentScale(
    name="smoke",
    proc_counts=(4, 8, 16),
    len_array=256,
    filesize_lens=(64, 256, 1024, 4096),
    filesize_procs=8,
    art_segments=24,
    art_cell_scale=128,
    art_proc_counts=(4, 8),
)


def resolve_points(points, runner=None, *, verify: bool = True) -> dict:
    """Results for *points* via *runner* (default: in-process, in order).

    Every figure harness funnels through here so the serial path, the
    pooled :class:`repro.perf.campaign.CampaignRunner` and the cache-warm
    path execute exactly the same point definitions — the differential
    determinism tests rely on that. ``verify`` only applies to the
    default in-process path; a runner encapsulates its own settings.
    """
    if runner is not None:
        return runner(points)
    from repro.perf.points import run_point

    return {point: run_point(point, verify=verify) for point in points}


def paper_size_label(len_array_scaled: int, nprocs: int, element_bytes: int = 12) -> str:
    """Full-scale dataset-size label (e.g. "768MB", "48GB") for Fig. 6/7."""
    return format_size(len_array_scaled * LONESTAR_SCALE * element_bytes * nprocs)


def widening_gap(a: Sequence[Optional[float]], b: Sequence[Optional[float]]) -> bool:
    """True when the a/b ratio grows from the first to the last defined point."""
    ratios = [
        x / y for x, y in zip(a, b) if x is not None and y is not None and y > 0
    ]
    return len(ratios) >= 2 and ratios[-1] > ratios[0]
