"""Programs 2 & 3: the paper's programming-effort listings, executable.

Section V.B.1 contrasts the code needed to run the same workload through
OCIO (combine buffer + derived datatypes + file view + collective call)
and TCIO (plain positional writes). This module extracts this repository's
executable equivalents and the measured effort metrics for EXPERIMENTS.md.
"""

from __future__ import annotations

import inspect
import textwrap

from repro.bench import synthetic
from repro.bench.config import Method
from repro.bench.effort import EffortMetrics, effort_report


def program_sources() -> dict[str, str]:
    """The executable Program 2 / Program 3 source listings."""
    return {
        "Program 2 (OCIO)": textwrap.dedent(inspect.getsource(synthetic._ocio_write)),
        "Program 3 (TCIO)": textwrap.dedent(inspect.getsource(synthetic._tcio_write)),
        "vanilla MPI-IO": textwrap.dedent(inspect.getsource(synthetic._mpiio_write)),
    }


def program_listings() -> tuple[dict[str, str], dict[Method, EffortMetrics], str]:
    """Sources, metrics, and a rendered comparison block."""
    sources = program_sources()
    metrics = effort_report()
    ocio, tcio = metrics[Method.OCIO], metrics[Method.TCIO]
    lines = [
        "Programming effort (measured on the executable listings):",
        f"  OCIO (Program 2): {ocio.statements} statements, "
        f"{ocio.io_calls} I/O-API calls, burdens: "
        f"combine-buffer={ocio.needs_combine_buffer}, "
        f"datatypes={ocio.needs_derived_datatypes}, "
        f"file-view={ocio.needs_file_view}",
        f"  TCIO (Program 3): {tcio.statements} statements, "
        f"{tcio.io_calls} I/O-API calls, burdens: "
        f"combine-buffer={tcio.needs_combine_buffer}, "
        f"datatypes={tcio.needs_derived_datatypes}, "
        f"file-view={tcio.needs_file_view}",
        f"  statement ratio (OCIO/TCIO): {ocio.statements / tcio.statements:.2f}x",
    ]
    return sources, metrics, "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    sources, _metrics, summary = program_listings()
    for name, src in sources.items():
        print(f"--- {name} ---\n{src}")
    print(summary)
