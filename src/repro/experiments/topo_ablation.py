"""Flat vs node aggregation ablation: ``python -m repro topo``.

Runs the synthetic benchmark write phase twice per collective method —
``aggregation="flat"`` (the paper's designs as-is) and ``"node"``
(repro.topo's leader-routed intra-node aggregation) — on a multi-node
cluster, and compares the fabric message and connection counts. The
workload block size is ``stripe / ranks_per_node`` so every node's ranks
share each stripe-sized segment: the shape where leader coalescing can
collapse a whole node's cross-node traffic (see docs/topology.md).

``check()`` is the CI gate: node mode must use strictly fewer messages
AND strictly fewer connections than flat for both TCIO and OCIO, while
``run_benchmark`` verifies every run byte-for-byte.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.bench import BenchConfig, Method
from repro.cluster.spec import ClusterSpec
from repro.netsim.model import NetworkSpec
from repro.pfs.spec import LustreSpec
from repro.util.units import GIB, KIB, MIB

#: Methods the ablation compares (vanilla MPI-IO has no collective
#: exchange to aggregate, so it is out of scope).
METHODS = (Method.TCIO, Method.OCIO)

#: Network profiles the ablation cluster can run under. ``default`` is
#: the original ablation fabric; ``rma-heavy`` models a fabric generation
#: with expensive one-sided synchronization (every RMA epoch and message
#: pays a large fixed cost), which is the regime where flat mode's many
#: small per-rank puts lose to node mode's coalesced leader pushes — the
#: axis the campaign explorer's crossover search walks
#: (`repro.campaign.explore`, docs/campaigns.md).
NET_PROFILES: dict[str, dict[str, float]] = {
    "default": {},
    "rma-heavy": {
        "rma_epoch_overhead": 10e-6,
        "rma_message_overhead": 2e-6,
    },
}


def ablation_cluster(
    procs: int, cores_per_node: int = 4, net: str = "default"
) -> ClusterSpec:
    """A small multi-node machine with just enough nodes for *procs*.

    Mirrors the test-suite cluster's constants; self-contained here so the
    CLI path does not depend on the test tree. *net* selects one of
    :data:`NET_PROFILES` (overrides applied on top of the base network).
    """
    if net not in NET_PROFILES:
        raise ValueError(
            f"unknown net profile {net!r} (choose from {sorted(NET_PROFILES)})"
        )
    nodes = -(-procs // cores_per_node)
    cluster = ClusterSpec(
        name="topo-ablation",
        nodes=nodes,
        cores_per_node=cores_per_node,
        memory_per_node=1 * GIB,
        network=NetworkSpec(
            link_bandwidth=1 * GIB,
            latency=1e-6,
            per_message_overhead=0.2e-6,
            connection_setup=2e-6,
            fabric_bandwidth=8 * GIB,
            memcpy_bandwidth=4 * GIB,
            eager_limit=1 * KIB,
            match_overhead=0.1e-6,
            match_queue_overhead=1e-9,
            rma_epoch_overhead=0.5e-6,
            rma_shared_epoch_overhead=0.1e-6,
            rma_message_overhead=0.05e-6,
        ),
        lustre=LustreSpec(
            n_osts=8,
            stripe_size=4 * KIB,
            default_stripe_count=4,
            ost_write_bandwidth=200 * MIB,
            ost_read_bandwidth=600 * MIB,
            ost_write_overhead=5e-6,
            ost_read_overhead=1e-6,
            lock_latency=0.5e-6,
            client_bandwidth=800 * MIB,
        ),
    )
    overrides = NET_PROFILES[net]
    if overrides:
        cluster = dataclasses.replace(
            cluster,
            network=dataclasses.replace(cluster.network, **overrides),
        )
    return cluster


def ablation_config(
    method: Method,
    aggregation: str,
    procs: int,
    cores_per_node: int,
    stripe_size: int,
    len_array: int,
) -> BenchConfig:
    """The node-collapsible workload: block = stripe / ranks_per_node.

    One double-typed array, SIZEaccess sized so each access's block is a
    node's even share of one stripe — consecutive ranks (one node, under
    the block cyclic rank placement) then fill each stripe exactly.
    """
    access = max(1, stripe_size // cores_per_node // 8)
    length = max(1, len_array // access) * access
    return BenchConfig(
        method=method,
        num_arrays=1,
        type_codes="d",
        len_array=length,
        size_access=access,
        nprocs=procs,
        file_name=f"topo_{method.name}_{aggregation}.dat",
        aggregation=aggregation,
    )


@dataclass
class TopoRow:
    """One (method, aggregation) measurement of the write phase."""

    method: str
    aggregation: str
    messages: int
    connections: int
    seconds: float


@dataclass
class TopoAblationData:
    """All four measurements plus the comparison logic."""

    procs: int
    cores_per_node: int
    rows: list[TopoRow] = field(default_factory=list)

    def row(self, method: str, aggregation: str) -> TopoRow:
        """The unique row for (method, aggregation)."""
        for r in self.rows:
            if r.method == method and r.aggregation == aggregation:
                return r
        raise KeyError((method, aggregation))

    def render(self) -> str:
        """A comparison table plus the per-method reduction ratios."""
        lines = [
            f"topo ablation: procs={self.procs} "
            f"({self.cores_per_node} ranks/node, "
            f"{-(-self.procs // self.cores_per_node)} nodes)",
            f"  {'method':<6} {'mode':<5} {'msgs':>8} {'conns':>8} {'seconds':>10}",
        ]
        for r in self.rows:
            lines.append(
                f"  {r.method:<6} {r.aggregation:<5} {r.messages:>8} "
                f"{r.connections:>8} {r.seconds:>10.3g}"
            )
        for m in METHODS:
            flat, node = self.row(m.name, "flat"), self.row(m.name, "node")
            lines.append(
                f"  {m.name}: node/flat reduction "
                f"{flat.messages / max(1, node.messages):.2f}x msgs, "
                f"{flat.connections / max(1, node.connections):.2f}x conns"
            )
        return "\n".join(lines)

    def check(self) -> bool:
        """Node mode strictly beats flat on both counts, for both methods."""
        return all(
            self.row(m.name, "node").messages < self.row(m.name, "flat").messages
            and self.row(m.name, "node").connections
            < self.row(m.name, "flat").connections
            for m in METHODS
        )


def run_topo_ablation(
    procs: int = 64,
    cores_per_node: int = 4,
    len_array: int = 1024,
    *,
    runner=None,
) -> TopoAblationData:
    """Measure flat vs node write-phase traffic for TCIO and OCIO.

    *runner* swaps in a pooled/cached executor (see
    :func:`repro.experiments.fig5_scaling.run_fig5`); point execution
    lives in :func:`repro.perf.points.run_point`.
    """
    from repro.experiments.common import resolve_points
    from repro.perf.points import Point

    data = TopoAblationData(procs=procs, cores_per_node=cores_per_node)
    grid = [
        (method.name, aggregation)
        for method in METHODS
        for aggregation in ("flat", "node")
    ]
    points = {
        pair: Point.make(
            "topo", method=pair[0], aggregation=pair[1], nprocs=procs,
            cores_per_node=cores_per_node, len_array=len_array,
        )
        for pair in grid
    }
    results = resolve_points(list(points.values()), runner)
    for method_name, aggregation in grid:
        result = results[points[(method_name, aggregation)]]
        data.rows.append(TopoRow(
            method=method_name,
            aggregation=aggregation,
            messages=result["messages"],
            connections=result["connections"],
            seconds=result["write_seconds"] or 0.0,
        ))
    return data


if __name__ == "__main__":  # pragma: no cover
    data = run_topo_ablation()
    print(data.render())
    raise SystemExit(0 if data.check() else 1)
