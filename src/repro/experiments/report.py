"""EXPERIMENTS.md generation: paper-vs-measured for every table and figure.

``python -m repro.experiments.report`` regenerates the full campaign (or a
smoke campaign with ``--smoke``) and writes EXPERIMENTS.md at the repo root.

The body is assembled from independent *section builders* (one per table
or figure), each a pure function of (scale, runner) returning its markdown
block. :func:`generate_report` stitches them together; the campaign
platform (:mod:`repro.campaign.report`) calls the same builders with a
store-backed runner to regenerate individual sections byte-identically
from cached results.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.cluster.lonestar import LONESTAR_SCALE, LONESTAR_STRIPE_SCALE
from repro.experiments.common import FULL, SMOKE, ExperimentScale
from repro.experiments.fig5_scaling import run_fig5
from repro.experiments.fig6_7_filesize import run_fig6_7
from repro.experiments.fig9_10_art import run_fig9_10
from repro.experiments.programs_loc import program_listings
from repro.experiments.table3_comparison import build_table3, table3_shape_holds


def _check(label: str, ok: bool) -> str:
    return f"* {'PASS' if ok else 'FAIL'}: {label}"


# ----------------------------------------------------------------------
# section builders (pure: same scale + same point results -> same bytes)
# ----------------------------------------------------------------------


def header_section(scale: ExperimentScale, *, verbose: bool = False,
                   runner=None) -> str:
    """The report preamble: contract, preset, campaign scale."""
    return (
        "# EXPERIMENTS — paper vs. measured\n\n"
        "All runs execute on the calibrated scaled Lonestar preset "
        f"(data scale 1/{LONESTAR_SCALE}, stripe scale 1/{LONESTAR_STRIPE_SCALE}; "
        "see DESIGN.md and `repro/cluster/lonestar.py`). Throughputs are "
        "simulated-time MB/s of the scaled system; per the reproduction "
        "contract, the *shape* (who wins, crossovers, failure points) is "
        "the target, not absolute magnitudes.\n\n"
        f"Campaign scale: `{scale.name}` "
        f"(procs {list(scale.proc_counts)}, LEN {scale.len_array}, "
        f"ART segments {scale.art_segments})."
    )


def table3_section(scale: ExperimentScale, *, verbose: bool = False,
                   runner=None) -> str:
    """Programs 2/3 + Table III (static analysis; no simulation points)."""
    _sources, metrics, effort_summary = program_listings()
    rows, table3 = build_table3()
    from repro.bench.config import Method

    checks = [
        _check(
            "TCIO listing needs no combine buffer / datatypes / file view",
            metrics[Method.TCIO].burden_count == 0,
        ),
        _check(
            "OCIO listing carries all three burdens",
            metrics[Method.OCIO].burden_count == 3,
        ),
        _check("Table III qualitative rows hold", table3_shape_holds(rows)),
    ]
    return (
        "## Programs 2 & 3 and Table III (programming effort)\n\n"
        "Paper: OCIO requires an application-level combine buffer, derived "
        "datatypes and a file view; TCIO is plain positional I/O with far "
        "fewer lines.\n\n"
        f"Measured:\n\n```\n{effort_summary}\n\n{table3}\n```\n\n"
        + "\n".join(checks)
    )


def fig5_section(scale: ExperimentScale, *, verbose: bool = False,
                 runner=None) -> str:
    """Figure 5: synthetic-benchmark throughput vs process count."""
    fig5 = run_fig5(scale, verbose=verbose, runner=runner)
    checks = [
        _check(
            "write: OCIO >= TCIO at small scale, TCIO wins at large scale "
            "(paper: crossover between 256 and 512)",
            fig5.write_crossover_holds(
                small_max=sorted(scale.proc_counts)[len(scale.proc_counts) // 2 - 1],
                large_min=sorted(scale.proc_counts)[-2],
            ),
        ),
        _check("read: TCIO beats OCIO at every scale", fig5.read_tcio_always_wins()),
        _check("read: the TCIO/OCIO gap widens with scale", fig5.read_gap_widens()),
    ]
    return (
        "## Figure 5 (synthetic benchmark, throughput vs processes)\n\n"
        "Paper: OCIO writes faster at <=256 procs, TCIO overtakes at >=512; "
        "TCIO reads faster everywhere with a widening gap.\n\n"
        f"```\n{fig5.render()}\n```\n\n" + "\n".join(checks)
    )


def fig67_section(scale: ExperimentScale, *, verbose: bool = False,
                  runner=None) -> str:
    """Figures 6 & 7: throughput vs file size, the 48 GB OOM point."""
    fig67 = run_fig6_7(scale, verbose=verbose, runner=runner)
    checks = [
        _check(
            "OCIO fails only at the largest (48 GB-equivalent) dataset",
            fig67.ocio_oom_at_largest_only(),
        ),
        _check("the OCIO failure is an out-of-memory", fig67.ocio_fails_from_memory()),
        _check("TCIO completes every dataset size", fig67.tcio_completes_everywhere()),
    ]
    return (
        "## Figures 6 & 7 (throughput vs file size; the 48 GB OOM)\n\n"
        "Paper: at the 48 GB dataset OCIO cannot allocate its combine +\n"
        "two-phase buffers within the 24 GB nodes and the benchmark fails;\n"
        "TCIO completes (level-1 buffer is one segment; level-2 equals the\n"
        "two-phase temporary buffer).\n\n"
        f"```\n{fig67.render()}\n```\n\n" + "\n".join(checks)
    )


def fig910_section(scale: ExperimentScale, *, verbose: bool = False,
                   runner=None) -> str:
    """Figures 9 & 10: the ART application dump/restart comparison."""
    fig910 = run_fig9_10(scale, verbose=verbose, runner=runner)
    speedups_w = [s for s in fig910.tcio_speedup("dump") if s is not None]
    speedups_r = [s for s in fig910.tcio_speedup("restart") if s is not None]
    checks = [
        _check("TCIO faster than vanilla MPI-IO at every scale", fig910.tcio_always_faster()),
        _check(
            f"order-of-magnitude speedups (max write {max(speedups_w or [0]):.0f}x, "
            f"max read {max(speedups_r or [0]):.0f}x; paper: up to ~100x)",
            max(speedups_w + speedups_r, default=0) >= 10,
        ),
        _check(
            "vanilla MPI-IO exceeds the 90-minute cap at the largest scales",
            any(fig910.capped["MPI-IO"]),
        ),
        _check(
            "TCIO throughput rises then dips (strong scaling, centralized FS)",
            fig910.tcio_rises_then_dips("dump"),
        ),
    ]
    return (
        "## Figures 9 & 10 (ART cosmology application)\n\n"
        "Paper: TCIO up to ~100x faster than vanilla MPI-IO; MPI-IO runs\n"
        "exceed 90 minutes at >=512 procs (curves truncated); TCIO rises\n"
        "then dips as the centralized file system saturates.\n\n"
        f"```\n{fig910.render()}\n```\n\n" + "\n".join(checks)
    )


#: Report sections in document order. Every builder has the same shape —
#: ``builder(scale, verbose=..., runner=...) -> str`` — so the campaign
#: platform can regenerate any one of them from a store-backed runner.
SECTION_BUILDERS: dict[str, object] = {
    "header": header_section,
    "table3": table3_section,
    "fig5": fig5_section,
    "fig67": fig67_section,
    "fig910": fig910_section,
}


def build_section(name: str, scale: ExperimentScale, *,
                  verbose: bool = False, runner=None) -> str:
    """One named section's markdown block (see :data:`SECTION_BUILDERS`)."""
    try:
        builder = SECTION_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown section {name!r} (choose from {list(SECTION_BUILDERS)})"
        ) from None
    return builder(scale, verbose=verbose, runner=runner)  # type: ignore[operator]


def generate_report(
    scale: ExperimentScale = FULL,
    *,
    verbose: bool = True,
    runner=None,
) -> str:
    """Run the whole campaign; returns the EXPERIMENTS.md body.

    *runner* (default: serial in-process) executes every figure's point
    grid; pass a :class:`repro.perf.campaign.CampaignRunner` to fan the
    points across a process pool and reuse cached results — the output
    is byte-identical either way (simulated time does not depend on host
    execution order).
    """
    t_start = time.time()
    sections = [
        build_section(name, scale, verbose=verbose, runner=runner)
        for name in SECTION_BUILDERS
    ]

    footer = (
        f"---\n\nCampaign wall-clock: {time.time() - t_start:.0f} s "
        f"(simulation host time)."
    )
    jobs = getattr(runner, "jobs", None)
    cache = getattr(runner, "cache", None)
    if jobs is not None:
        footer += f" Runner: {jobs} worker process(es)"
        if cache is not None:
            footer += f"; cache {cache.hits} hit(s), {cache.misses} miss(es)"
        footer += "."
        if cache is not None:
            footer += (
                " A warm-cache rerun regenerates this file in under a"
                " second."
            )
    sections.append(footer)
    return "\n\n".join(sections) + "\n"


def main(argv: list[str] | None = None) -> int:
    """CLI for the report generator; returns an exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="run the tiny campaign")
    parser.add_argument(
        "--output", default="EXPERIMENTS.md", help="path to write the report"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan points across N worker processes (default: serial; "
        "0 = one worker per CPU)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="on-disk result cache directory (default: .repro-cache when "
        "--jobs is given; no caching otherwise)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    args = parser.parse_args(argv)
    scale = SMOKE if args.smoke else FULL
    runner = None
    if args.jobs is not None or args.cache_dir is not None:
        from repro.perf.cache import ResultCache
        from repro.perf.campaign import CampaignRunner

        cache = None if args.no_cache else ResultCache(args.cache_dir)
        jobs = None if args.jobs in (None, 0) else args.jobs
        runner = CampaignRunner(jobs, cache=cache, verbose=True)
    body = generate_report(scale, runner=runner)
    Path(args.output).write_text(body)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
