"""Experiment harnesses: one module per table/figure of the paper.

Each harness regenerates its table or figure as data rows (printable via
:mod:`repro.util.tables`) and exposes an acceptance check for the *shape*
the paper reports (who wins, by roughly what factor, where crossovers and
failures fall). ``repro.experiments.report`` assembles EXPERIMENTS.md.
"""

from repro.experiments.common import ExperimentScale, FULL, SMOKE
from repro.experiments.fig5_scaling import run_fig5, Fig5Data
from repro.experiments.fig6_7_filesize import run_fig6_7, Fig67Data
from repro.experiments.fig9_10_art import run_fig9_10, Fig910Data
from repro.experiments.table3_comparison import build_table3
from repro.experiments.programs_loc import program_listings
from repro.experiments.topo_ablation import run_topo_ablation, TopoAblationData

__all__ = [
    "ExperimentScale",
    "FULL",
    "SMOKE",
    "run_fig5",
    "Fig5Data",
    "run_fig6_7",
    "Fig67Data",
    "run_fig9_10",
    "Fig910Data",
    "build_table3",
    "program_listings",
    "run_topo_ablation",
    "TopoAblationData",
]
