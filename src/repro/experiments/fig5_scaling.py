"""Figure 5: synthetic-benchmark throughput vs. number of processes.

Table II configuration: NUMarray=2, TYPEarray=i,d, LENarray=4M (scaled),
SIZEaccess=1, NUMproc 64..1024; TCIO vs OCIO, write (left) and read
(right) throughput.

Paper shape to reproduce:
* write: OCIO >= TCIO at <= 256 processes, TCIO > OCIO at >= 512;
* read: TCIO > OCIO at every scale, with the gap widening.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.charts import log_scale_chart
from repro.experiments.common import FULL, ExperimentScale, resolve_points, widening_gap
from repro.perf.points import Point, points_for
from repro.util.tables import render_series
from repro.util.units import MIB


@dataclass
class Fig5Data:
    """The two sub-figures' series, indexed like ``proc_counts``."""

    proc_counts: list[int] = field(default_factory=list)
    write: dict[str, list[Optional[float]]] = field(default_factory=dict)
    read: dict[str, list[Optional[float]]] = field(default_factory=dict)

    def render(self) -> str:
        """Both panels as tables plus log-scale ASCII charts."""
        def mbps(series: dict) -> dict:
            return {
                k: [None if v is None else round(v / MIB, 1) for v in vs]
                for k, vs in series.items()
            }

        left = render_series(
            "procs", self.proc_counts, mbps(self.write),
            title="Fig. 5 (left): write throughput (MB/s)",
        )
        right = render_series(
            "procs", self.proc_counts, mbps(self.read),
            title="Fig. 5 (right): read throughput (MB/s)",
        )
        charts = (
            log_scale_chart(self.proc_counts, self.write_mbps(), title="write")
            + "\n\n"
            + log_scale_chart(self.proc_counts, self.read_mbps(), title="read")
        )
        return left + "\n\n" + right + "\n\n" + charts

    def write_mbps(self) -> dict:
        """Write series in MB/s (None preserved)."""
        return {
            k: [None if v is None else v / MIB for v in vs]
            for k, vs in self.write.items()
        }

    def read_mbps(self) -> dict:
        """Read series in MB/s (None preserved)."""
        return {
            k: [None if v is None else v / MIB for v in vs]
            for k, vs in self.read.items()
        }

    # -- acceptance checks (the paper's qualitative shape) -------------
    def write_crossover_holds(self, small_max: int = 256, large_min: int = 512) -> bool:
        """OCIO wins (or ties) at small scale; TCIO wins at large scale."""
        ok = True
        for p, t, o in zip(self.proc_counts, self.write["TCIO"], self.write["OCIO"]):
            if t is None or o is None:
                continue
            if p <= small_max and o < t * 0.95:
                ok = False
            if p >= large_min and t <= o:
                ok = False
        return ok

    def read_tcio_always_wins(self) -> bool:
        """Paper shape: TCIO reads beat OCIO at every process count."""
        return all(
            t > o
            for t, o in zip(self.read["TCIO"], self.read["OCIO"])
            if t is not None and o is not None
        )

    def read_gap_widens(self) -> bool:
        """Paper shape: the TCIO/OCIO read ratio grows with scale."""
        return widening_gap(self.read["TCIO"], self.read["OCIO"])


def run_fig5(
    scale: ExperimentScale = FULL,
    *,
    verify: bool = True,
    verbose: bool = False,
    runner=None,
) -> Fig5Data:
    """Regenerate both Fig. 5 panels; returns the series.

    *runner* (a ``points -> {point: result}`` callable, e.g. a
    :class:`repro.perf.campaign.CampaignRunner`) replaces the default
    serial in-process execution; the grid itself always comes from
    :func:`repro.perf.points.points_for`, so every runner computes the
    same points.
    """
    results = resolve_points(points_for("fig5", scale), runner, verify=verify)
    data = Fig5Data(proc_counts=list(scale.proc_counts))
    for series in (data.write, data.read):
        series["TCIO"] = []
        series["OCIO"] = []
    for nprocs in scale.proc_counts:
        for method in ("TCIO", "OCIO"):
            point = Point.make(
                "fig5", method=method, nprocs=nprocs, len_array=scale.len_array
            )
            result = results[point]
            data.write[method].append(result["write_throughput"])
            data.read[method].append(result["read_throughput"])
            if verbose:  # pragma: no cover - console convenience
                wt = result["write_throughput"] or 0.0
                rt = result["read_throughput"] or 0.0
                print(
                    f"fig5 {method} P={nprocs}: "
                    f"write {wt / MIB:.1f} MB/s, read {rt / MIB:.1f} MB/s"
                )
    return data


if __name__ == "__main__":  # pragma: no cover
    print(run_fig5(verbose=True).render())
