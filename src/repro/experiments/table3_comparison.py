"""Table III: OCIO vs TCIO, reproduced programmatically.

Each row of the paper's qualitative table is derived from measurements of
this repository's own implementations: the effort metrics come from static
analysis of the executable Programs 2/3, and the memory row from the
simulated per-process high-water allocations of an actual benchmark run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import BenchConfig, Method
from repro.bench.effort import effort_report
from repro.simmpi.mpi import RankEnv, run_mpi
from repro.util.tables import render_table


@dataclass
class Table3Row:
    """One reproduced row of Table III."""
    aspect: str
    ocio: str
    tcio: str


def _memory_breakdown(nprocs: int = 4, len_array: int = 1024) -> dict[str, dict[str, int]]:
    """Peak simulated I/O-buffer bytes per method (one small run each).

    The workload must dwarf one level-2 segment for the comparison to be
    meaningful (at full scale each process holds 0.75 GB against 1 MB
    segments), so this runs on a small-stripe cluster.
    """
    from repro.bench.synthetic import _ocio_write, _tcio_write
    from repro.cluster.lonestar import make_lonestar
    from dataclasses import replace as _replace

    base = make_lonestar(nranks=nprocs)
    cluster = _replace(
        base, lustre=_replace(base.lustre, stripe_size=1024)
    )
    out: dict[str, dict[str, int]] = {}
    for method, fn in ((Method.OCIO, _ocio_write), (Method.TCIO, _tcio_write)):
        cfg = BenchConfig(
            method=method,
            len_array=len_array,
            nprocs=nprocs,
            file_name=f"table3_{method.name}.dat",
        )

        def main(env: RankEnv):
            return fn(env, cfg)

        run = run_mpi(nprocs, main, cluster=cluster)
        node0 = 0
        out[method.name] = {
            "high_water": run.world.memory.high_water(node0),
        }
    return out


def build_table3() -> tuple[list[Table3Row], str]:
    """The reproduced Table III rows plus a rendered ASCII table."""
    efforts = effort_report()
    ocio, tcio = efforts[Method.OCIO], efforts[Method.TCIO]
    memory = _memory_breakdown()

    rows = [
        Table3Row(
            "Application-level buffer",
            "Yes" if ocio.needs_combine_buffer else "No",
            "Yes" if tcio.needs_combine_buffer else "No",
        ),
        Table3Row(
            "File view",
            "Yes" if ocio.needs_file_view else "No",
            "Yes" if tcio.needs_file_view else "No",
        ),
        Table3Row(
            "Lines of code",
            f"Many ({ocio.statements} statements)",
            f"Few ({tcio.statements} statements)",
        ),
        Table3Row(
            "Memory efficiency",
            f"Poor (peak {memory['OCIO']['high_water']} B/node)",
            f"High (peak {memory['TCIO']['high_water']} B/node)",
        ),
        Table3Row(
            "Restriction",
            "access patterns describable by MPI derived data types",
            "any POSIX-like access pattern",
        ),
    ]
    rendered = render_table(
        ["Aspect", "Original collective I/O", "Transparent collective I/O"],
        [[r.aspect, r.ocio, r.tcio] for r in rows],
        title="Table III: comparison between OCIO and TCIO (measured)",
    )
    return rows, rendered


def table3_shape_holds(rows: list[Table3Row]) -> bool:
    """The paper's qualitative claims, as a checkable predicate."""
    by_aspect = {r.aspect: r for r in rows}
    buf = by_aspect["Application-level buffer"]
    view = by_aspect["File view"]
    loc = by_aspect["Lines of code"]
    mem = by_aspect["Memory efficiency"]

    def n(text: str) -> int:
        return int("".join(c for c in text if c.isdigit()))

    return (
        buf.ocio == "Yes"
        and buf.tcio == "No"
        and view.ocio == "Yes"
        and view.tcio == "No"
        and n(loc.ocio) > n(loc.tcio)
        and n(mem.ocio) > n(mem.tcio)
    )


if __name__ == "__main__":  # pragma: no cover
    print(build_table3()[1])
