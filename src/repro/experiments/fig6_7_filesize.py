"""Figures 6 & 7: throughput vs. file size at 64 processes, and the OOM.

Same configuration as Fig. 5 but NUMproc fixed at 64 and LENarray swept
1M..64M elements (dataset 768 MB..48 GB at paper scale). The headline: at
48 GB "the benchmark with OCIO fails to work" — each process would need the
0.75 GB application combine buffer plus the 0.75 GB two-phase temporary
buffer on top of its 0.75 GB of arrays, exceeding the 24 GB/12-core nodes —
while TCIO (one segment-sized level-1 buffer + the level-2 share) completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.common import (
    FULL,
    ExperimentScale,
    paper_size_label,
    resolve_points,
)
from repro.perf.points import Point, points_for
from repro.util.tables import render_series
from repro.util.units import MIB


@dataclass
class Fig67Data:
    """Write (Fig. 6) and read (Fig. 7) series over dataset sizes."""

    size_labels: list[str] = field(default_factory=list)
    write: dict[str, list[Optional[float]]] = field(default_factory=dict)
    read: dict[str, list[Optional[float]]] = field(default_factory=dict)
    failures: dict[str, list[bool]] = field(default_factory=dict)
    fail_reasons: dict[str, list[str]] = field(default_factory=dict)

    def render(self) -> str:
        """Figures 6 and 7 as tables (failed runs shown as --)."""
        def mbps(series: dict) -> dict:
            return {
                k: [None if v is None else round(v / MIB, 1) for v in vs]
                for k, vs in series.items()
            }

        return (
            render_series(
                "dataset", self.size_labels, mbps(self.write),
                title="Fig. 6: write throughput (MB/s); -- = failed run",
            )
            + "\n\n"
            + render_series(
                "dataset", self.size_labels, mbps(self.read),
                title="Fig. 7: read throughput (MB/s); -- = failed run",
            )
        )

    # -- acceptance checks ----------------------------------------------
    def ocio_oom_at_largest_only(self) -> bool:
        """Paper shape: OCIO fails at 48 GB and only there."""
        flags = self.failures["OCIO"]
        return bool(flags) and flags[-1] and not any(flags[:-1])

    def tcio_completes_everywhere(self) -> bool:
        """Paper shape: TCIO finishes every dataset size."""
        return not any(self.failures["TCIO"])

    def ocio_fails_from_memory(self) -> bool:
        """Paper shape: the 48 GB failure is an out-of-memory."""
        return self.fail_reasons["OCIO"][-1] == "out of memory"


def run_fig6_7(
    scale: ExperimentScale = FULL,
    *,
    verify: bool = True,
    verbose: bool = False,
    runner=None,
) -> Fig67Data:
    """Regenerate Figs. 6 and 7; returns both series plus failure flags.

    *runner* swaps in a pooled/cached executor; see :func:`run_fig5`.
    """
    results = resolve_points(points_for("fig67", scale), runner, verify=verify)
    data = Fig67Data()
    for method in ("TCIO", "OCIO"):
        data.write[method] = []
        data.read[method] = []
        data.failures[method] = []
        data.fail_reasons[method] = []
    nprocs = scale.filesize_procs
    for len_array in scale.filesize_lens:
        label = paper_size_label(len_array, nprocs)
        data.size_labels.append(label)
        for method in ("TCIO", "OCIO"):
            point = Point.make(
                "fig67", method=method, nprocs=nprocs, len_array=len_array
            )
            result = results[point]
            data.write[method].append(result["write_throughput"])
            data.read[method].append(result["read_throughput"])
            data.failures[method].append(result["failed"])
            data.fail_reasons[method].append(result["fail_reason"])
            if verbose:  # pragma: no cover
                if result["failed"]:
                    print(f"fig6/7 {method} {label}: FAILED ({result['fail_reason']})")
                else:
                    print(
                        f"fig6/7 {method} {label}: "
                        f"write {(result['write_throughput'] or 0) / MIB:.1f} MB/s, "
                        f"read {(result['read_throughput'] or 0) / MIB:.1f} MB/s"
                    )
    return data


if __name__ == "__main__":  # pragma: no cover
    print(run_fig6_7(verbose=True).render())
