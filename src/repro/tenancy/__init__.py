"""Multi-job tenancy: concurrent applications sharing one simulated PFS.

Public surface:

* :class:`~repro.tenancy.spec.JobSpec` /
  :class:`~repro.tenancy.spec.TenancyScenario` — declarative scenarios
  (workload kind, rank count, arrival, priority, seeded jitter);
* :func:`~repro.tenancy.runner.run_scenario` — run all jobs on one
  engine/fabric/PFS with per-job metric namespacing and QoS policies;
* :func:`~repro.tenancy.matrix.interference_matrix` — the A-alone /
  B-alone / A+B harness enforcing the byte-identity oracle;
* :class:`~repro.tenancy.pfsview.TenantPfs`,
  :class:`~repro.tenancy.fabricview.JobFabric`,
  :class:`~repro.tenancy.obsroute.JobTraceHub` — the per-job views over
  shared substrate, reusable by other multi-application harnesses.
"""

from repro.tenancy.fabricview import JobFabric
from repro.tenancy.matrix import MatrixReport, interference_matrix
from repro.tenancy.obsroute import JobTraceHub
from repro.tenancy.pfsview import TenantPfs
from repro.tenancy.runner import (
    JobResult,
    ScenarioResult,
    clear_solo_cache,
    run_scenario,
    scenario_cluster,
    solo_result,
)
from repro.tenancy.spec import (
    JobSpec,
    TenancyScenario,
    parse_job,
    parse_scenario,
    two_job_scenario,
)
from repro.tenancy.workloads import Workload, bench_config, build_workload

__all__ = [
    "JobFabric",
    "JobResult",
    "JobSpec",
    "JobTraceHub",
    "MatrixReport",
    "ScenarioResult",
    "TenancyScenario",
    "TenantPfs",
    "Workload",
    "bench_config",
    "build_workload",
    "clear_solo_cache",
    "interference_matrix",
    "parse_job",
    "parse_scenario",
    "run_scenario",
    "scenario_cluster",
    "solo_result",
    "two_job_scenario",
]
