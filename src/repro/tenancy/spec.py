"""Multi-job scenario descriptions.

A :class:`TenancyScenario` names several concurrent simulated
applications — each a :class:`JobSpec` with its own workload, rank count,
arrival time, and priority — that share one parallel file system and one
fabric. Arrival jitter is seeded per job, so a scenario is a pure
function of ``(jobs, seed)``: the same description always simulates the
same virtual history.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.util.errors import TenancyError

#: Workload kinds a job may run. ``tcio``/``ocio``/``mpiio`` replay the
#: paper's synthetic benchmark (Programs 2/3) through the named I/O
#: method; ``trace`` replays a seeded ioserver workload trace directly
#: through TCIO; ``ioserver`` runs the delegate server session of
#: :mod:`repro.ioserver` inside the job's rank set.
WORKLOADS = ("tcio", "ocio", "mpiio", "trace", "ioserver")


@dataclass(frozen=True)
class JobSpec:
    """One simulated application inside a tenancy scenario.

    Attributes
    ----------
    name:
        Unique job id; becomes the job's PFS namespace prefix
        (``"<name>/"``), its metric-tree root, and its fault/error
        attribution tag.
    workload:
        One of :data:`WORKLOADS`.
    nranks:
        The job's rank count (its world is that big; ranks pack onto the
        job's private node range of the shared cluster).
    arrival:
        Virtual seconds after scenario start at which the job's ranks
        begin work (before jitter).
    priority:
        Fair-share weight under the ``"fair"`` QoS policy; higher means a
        faster per-tenant token line. Ignored under ``"fifo"``.
    journal:
        TCIO durability mode for tcio/trace workloads ("off"/"epoch").
    params:
        Workload-specific knobs. Benchmark kinds understand ``len_array``,
        ``size_access``, ``num_arrays``, ``type_codes``; trace/ioserver
        kinds understand ``epochs``, ``writes_per_epoch``, ``nclients``.
    """

    name: str
    workload: str = "tcio"
    nranks: int = 4
    arrival: float = 0.0
    priority: float = 1.0
    journal: str = "off"
    params: tuple = ()

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise TenancyError("job name must be non-empty and '/'-free")
        if self.workload not in WORKLOADS:
            raise TenancyError(
                f"unknown workload {self.workload!r}; pick one of {WORKLOADS}"
            )
        if self.nranks < 1:
            raise TenancyError("job needs at least one rank")
        if self.arrival < 0:
            raise TenancyError("arrival must be >= 0")
        if self.priority <= 0:
            raise TenancyError("priority must be positive")
        if self.journal not in ("off", "epoch"):
            raise TenancyError("journal must be 'off' or 'epoch'")

    @property
    def param_dict(self) -> dict:
        """The workload knobs as a plain dict."""
        return dict(self.params)

    def with_params(self, **kw) -> "JobSpec":
        """A copy with extra workload parameters merged in."""
        merged = dict(self.params)
        merged.update(kw)
        return replace(self, params=tuple(sorted(merged.items())))

    def signature(self) -> tuple:
        """Hashable identity of the job's *solo* behavior.

        Everything that changes what the job computes or stores — but not
        its arrival or priority, which only matter under contention: the
        solo-baseline cache keys on this.
        """
        return (
            self.name, self.workload, self.nranks, self.journal, self.params,
        )


@dataclass(frozen=True)
class TenancyScenario:
    """Several jobs sharing one PFS/fabric.

    ``seed`` drives per-job arrival jitter (and seeded workloads);
    ``arrival_jitter`` is the max extra virtual seconds a job's arrival
    may slip, drawn deterministically per ``(seed, job name)``.
    ``cores_per_node`` shapes every job's private node range.
    """

    jobs: tuple[JobSpec, ...] = field(default_factory=tuple)
    seed: int = 0
    arrival_jitter: float = 0.0
    cores_per_node: int = 4

    def __post_init__(self) -> None:
        if not self.jobs:
            raise TenancyError("scenario needs at least one job")
        names = [j.name for j in self.jobs]
        if len(set(names)) != len(names):
            raise TenancyError(f"duplicate job names: {sorted(names)}")
        if self.arrival_jitter < 0:
            raise TenancyError("arrival_jitter must be >= 0")
        if self.cores_per_node < 1:
            raise TenancyError("cores_per_node must be >= 1")

    def job(self, name: str) -> JobSpec:
        """The job named *name*."""
        for j in self.jobs:
            if j.name == name:
                return j
        raise TenancyError(f"no job named {name!r}")

    def effective_arrival(self, spec: JobSpec) -> float:
        """The job's arrival including its seeded jitter draw.

        Deterministic per ``(scenario seed, job name)`` — independent of
        job order, the other jobs, and the platform (string seeding uses
        a stable hash).
        """
        if self.arrival_jitter == 0.0:
            return spec.arrival
        rng = random.Random(f"tenancy:{self.seed}:{spec.name}")
        return spec.arrival + rng.uniform(0.0, self.arrival_jitter)

    def solo(self, name: str) -> "TenancyScenario":
        """A one-job scenario: *name* alone on its own substrate.

        Arrival resets to zero (a solo baseline starts immediately);
        everything else — seed, node shape, the job's workload — is
        preserved, so solo and shared runs do identical work.
        """
        spec = replace(self.job(name), arrival=0.0)
        return TenancyScenario(
            jobs=(spec,),
            seed=self.seed,
            arrival_jitter=0.0,
            cores_per_node=self.cores_per_node,
        )


def two_job_scenario(
    *,
    seed: int = 0,
    nranks: int = 4,
    len_array: int = 512,
    journal: str = "epoch",
    jitter: float = 0.0,
    second_workload: str = "mpiio",
    arrival_b: float = 0.0,
) -> TenancyScenario:
    """The canonical 2-job interference scenario (smoke/CI/bench preset).

    Job ``a`` writes through TCIO (journaled by default, so fsck has
    something to verify); job ``b`` runs *second_workload* arriving
    ``arrival_b`` seconds later.
    """
    a = JobSpec(
        name="a", workload="tcio", nranks=nranks, journal=journal,
        params=(("len_array", len_array),),
    )
    b = JobSpec(
        name="b", workload=second_workload, nranks=nranks,
        arrival=arrival_b, params=(("len_array", len_array),),
    )
    return TenancyScenario(jobs=(a, b), seed=seed, arrival_jitter=jitter)


def parse_job(text: str) -> JobSpec:
    """Parse ``name:workload:nranks[:len_array]`` (the CLI job format)."""
    parts = text.split(":")
    if len(parts) < 3:
        raise TenancyError(
            f"bad job spec {text!r}; expected name:workload:nranks[:len_array]"
        )
    name, workload, nranks = parts[0], parts[1], int(parts[2])
    params: tuple = ()
    if len(parts) > 3:
        params = (("len_array", int(parts[3])),)
    return JobSpec(name=name, workload=workload, nranks=nranks, params=params)


def parse_scenario(
    specs: list[str], *, seed: int = 0, jitter: float = 0.0,
    cores_per_node: int = 4,
) -> TenancyScenario:
    """Parse a CLI job list into a scenario."""
    jobs = tuple(parse_job(s) for s in specs)
    return TenancyScenario(
        jobs=jobs, seed=seed, arrival_jitter=jitter,
        cores_per_node=cores_per_node,
    )
