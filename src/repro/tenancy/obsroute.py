"""Per-job metric routing for shared simulation substrate.

Per-job components (each job's ``MpiWorld``, its TCIO handles) receive
their own plain :class:`~repro.sim.trace.TraceRecorder`, so their metrics
land in disjoint per-job registries for free. Shared components — the one
``Pfs`` and the one ``Fabric`` every job drives — receive a
:class:`JobTraceHub` instead: a recorder look-alike that resolves, *on
every operation*, which simulated process is running and routes the
metric to that process's job. Engine-side callbacks (message deliveries,
lock releases) that run outside any process land in the scenario's shared
recorder.

The subtlety the proxies exist for: hot paths cache metric *objects* at
construction (``Fabric`` resolves ``net.msg`` once). A cached object must
therefore itself be a router — :class:`_RoutedCounter` and friends hold
only ``(hub, name)`` and defer the registry lookup to call time.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import active_process_or_none
from repro.sim.trace import TraceRecorder


class _RoutedCounter:
    """A counter stand-in resolving the owning job per operation."""

    __slots__ = ("_hub", "_name")

    def __init__(self, hub: "JobTraceHub", name: str):
        self._hub = hub
        self._name = name

    def add(self, amount: float = 0.0) -> None:
        self._hub.active_registry().counter(self._name).add(amount)

    def inc(self, amount: int = 1) -> None:
        self._hub.active_registry().counter(self._name).inc(amount)

    @property
    def count(self) -> int:
        return self._hub.active_registry().counter(self._name).count

    @property
    def total(self) -> float:
        return self._hub.active_registry().counter(self._name).total


class _RoutedGauge:
    """A gauge stand-in resolving the owning job per operation."""

    __slots__ = ("_hub", "_name")

    def __init__(self, hub: "JobTraceHub", name: str):
        self._hub = hub
        self._name = name

    def set(self, value: float) -> None:
        self._hub.active_registry().gauge(self._name).set(value)

    def add(self, delta: float) -> None:
        self._hub.active_registry().gauge(self._name).add(delta)

    @property
    def value(self) -> float:
        return self._hub.active_registry().gauge(self._name).value


class _RoutedHistogram:
    """A histogram stand-in resolving the owning job per operation."""

    __slots__ = ("_hub", "_name")

    def __init__(self, hub: "JobTraceHub", name: str):
        self._hub = hub
        self._name = name

    def observe(self, value: float) -> None:
        self._hub.active_registry().histogram(self._name).observe(value)


class _RoutedRegistry:
    """Registry facade handing out routed metric objects.

    Only the create-on-use surface shared infrastructure touches;
    analysis code should read the real per-job registries instead.
    """

    __slots__ = ("_hub",)

    def __init__(self, hub: "JobTraceHub"):
        self._hub = hub

    def counter(self, name: str) -> _RoutedCounter:
        return _RoutedCounter(self._hub, name)

    def gauge(self, name: str) -> _RoutedGauge:
        return _RoutedGauge(self._hub, name)

    def histogram(self, name: str) -> _RoutedHistogram:
        return _RoutedHistogram(self._hub, name)


class _RoutedTracer:
    """Span-tracer facade delegating to the active job's tracer."""

    __slots__ = ("_hub", "_clock")

    def __init__(self, hub: "JobTraceHub"):
        self._hub = hub
        self._clock = None

    @property
    def enabled(self) -> bool:
        return self._hub.active_recorder().tracer.enabled

    def bind_clock(self, clock) -> None:
        # The engine binds its clock at construction; remember it and
        # re-apply to every recorder registered later.
        self._clock = clock
        for rec in self._hub.all_recorders():
            rec.tracer.bind_clock(clock)

    def apply_clock(self, recorder: TraceRecorder) -> None:
        if self._clock is not None:
            recorder.tracer.bind_clock(self._clock)

    def span(self, name: str, track: Optional[str] = None, **args):
        return self._hub.active_recorder().tracer.span(name, track, **args)

    def complete(self, name, start, end, track=None, **args) -> None:
        self._hub.active_recorder().tracer.complete(name, start, end, track, **args)

    def instant(self, name, track=None, **args) -> None:
        self._hub.active_recorder().tracer.instant(name, track, **args)


class JobTraceHub:
    """The shared-component recorder of a multi-job run.

    Presents the ``TraceRecorder`` duck type (``registry``, ``tracer``,
    ``count``, ``span``) but resolves the owning job from the currently
    executing simulated process on every call. Register each rank process
    with :meth:`register_process` at spawn time.
    """

    def __init__(self, shared: Optional[TraceRecorder] = None):
        #: Fallback recorder for engine-context work (deliveries, timer
        #: callbacks) and anything before/after the jobs themselves.
        self.shared = shared if shared is not None else TraceRecorder()
        self._recorders: dict[str, TraceRecorder] = {}
        self._by_proc: dict = {}
        self.registry = _RoutedRegistry(self)
        self.tracer = _RoutedTracer(self)

    # -- wiring --------------------------------------------------------
    def add_job(self, job: str, recorder: TraceRecorder) -> TraceRecorder:
        """Register *job*'s private recorder (created if not given one)."""
        self._recorders[job] = recorder
        self.tracer.apply_clock(recorder)
        return recorder

    def register_process(self, proc, job: str) -> None:
        """Attribute simulated process *proc* to *job* for routing."""
        self._by_proc[proc] = self._recorders[job]

    def recorder(self, job: str) -> TraceRecorder:
        """The private recorder of *job*."""
        return self._recorders[job]

    def all_recorders(self) -> list[TraceRecorder]:
        """Every registered recorder plus the shared fallback."""
        return [self.shared, *self._recorders.values()]

    # -- routing -------------------------------------------------------
    def active_recorder(self) -> TraceRecorder:
        """The recorder owning the currently executing process."""
        proc = active_process_or_none()
        if proc is None:
            return self.shared
        return self._by_proc.get(proc, self.shared)

    def active_registry(self):
        return self.active_recorder().registry

    # -- TraceRecorder surface ----------------------------------------
    def count(self, name: str, amount: float = 0.0) -> None:
        self.active_recorder().count(name, amount)

    def span(self, name: str, track: Optional[str] = None, **args):
        return self.tracer.span(name, track, **args)

    def complete(self, name, start, end, track=None, **args) -> None:
        self.tracer.complete(name, start, end, track, **args)

    def instant(self, name, track=None, **args) -> None:
        self.tracer.instant(name, track, **args)

    def summary(self) -> dict[str, tuple[int, float]]:
        """The *shared* recorder's counters (per-job data lives in the
        per-job recorders; see :meth:`recorder`)."""
        return self.shared.summary()
