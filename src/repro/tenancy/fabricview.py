"""Per-job rank-offset views over one shared interconnect fabric.

Every tenancy job keeps its own dense rank space ``0..nranks`` (its
``MpiWorld``, communicators, and RMA windows are untouched), while the
shared :class:`~repro.netsim.fabric.Fabric` spans the concatenated global
rank space. A :class:`JobFabric` translates at the boundary: job-local
rank ``r`` is global rank ``offset + r``. NIC ports, the fabric core, and
per-node memory engines are therefore genuinely contended between jobs —
only the *naming* is virtualized.
"""

from __future__ import annotations

from typing import Callable

from repro.netsim.fabric import Fabric


class JobFabric:
    """One job's offset view of a shared :class:`Fabric`."""

    __slots__ = ("base", "offset", "nranks", "node_of")

    def __init__(self, base: Fabric, offset: int, nranks: int):
        self.base = base
        self.offset = offset
        self.nranks = nranks
        #: Job-local rank -> *global* node id (the slice of the shared
        #: fabric's placement this job occupies).
        self.node_of = list(base.node_of[offset : offset + nranks])

    # -- passthrough ---------------------------------------------------
    @property
    def engine(self):
        return self.base.engine

    @property
    def spec(self):
        return self.base.spec

    @property
    def trace(self):
        return self.base.trace

    @property
    def faults(self):
        return self.base.faults

    @property
    def n_connections(self) -> int:
        """Distinct connected pairs fabric-wide (all jobs)."""
        return self.base.n_connections

    # -- rank-translated operations ------------------------------------
    def delivery_time(
        self, src: int, dst: int, nbytes: int, *, rma: bool = False
    ) -> float:
        return self.base.delivery_time(
            src + self.offset, dst + self.offset, nbytes, rma=rma
        )

    def transfer(
        self,
        src: int,
        dst: int,
        nbytes: int,
        on_delivered: Callable[[], None],
        *,
        rma: bool = False,
    ) -> float:
        return self.base.transfer(
            src + self.offset, dst + self.offset, nbytes, on_delivered, rma=rma
        )

    def control_delay(self, src: int, dst: int, *, rma: bool = False) -> float:
        return self.base.control_delay(
            src + self.offset, dst + self.offset, rma=rma
        )

    def staging_copy(self, rank: int, nbytes: int) -> float:
        return self.base.staging_copy(rank + self.offset, nbytes)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<JobFabric ranks [{self.offset}, {self.offset + self.nranks}) "
            f"of {self.base!r}>"
        )
