"""The multi-job scenario runner: N applications, one PFS, one clock.

:func:`run_scenario` is the tenancy analogue of
:func:`repro.simmpi.mpi.run_mpi`: it builds ONE engine, ONE fabric and
ONE parallel file system, then spawns every job of a
:class:`~repro.tenancy.spec.TenancyScenario` as its own
:class:`~repro.simmpi.mpi.MpiWorld` on disjoint nodes of the shared
machine. Jobs contend for NIC links, the fabric core, client storage
links, OST service queues and the lock manager — but each sees a private
rank space (:class:`~repro.tenancy.fabricview.JobFabric`), a private
namespace (:class:`~repro.tenancy.pfsview.TenantPfs`) and a private
metric registry (:class:`~repro.tenancy.obsroute.JobTraceHub`).

The load-bearing invariant, inherited from the repo's byte-identity
oracle: contention moves *virtual time*, never *data*. A job's durable
output under contention is byte-identical to its solo run; only
completion times shift. :func:`run_scenario` verifies this against each
workload's oracle, and the interference matrix
(:mod:`repro.tenancy.matrix`) verifies it against actual solo runs.

Fairness metrics follow the multi-tenant storage literature: per-job
slowdown is ``shared_elapsed / solo_elapsed`` and the scenario's Jain
fairness index is computed over per-job *progress rates*
``x_j = solo_j / shared_j`` (1.0 = perfectly even slowdown, lower =
somebody is starving).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.cluster.spec import ClusterSpec
from repro.memsim.memory import MemoryTracker
from repro.netsim.fabric import Fabric
from repro.sim.api import SimContext, run_coroutine
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder
from repro.simmpi.mpi import MpiWorld, RankEnv
from repro.tenancy.fabricview import JobFabric
from repro.tenancy.obsroute import JobTraceHub
from repro.tenancy.pfsview import TenantPfs
from repro.tenancy.spec import JobSpec, TenancyScenario
from repro.tenancy.workloads import Workload, build_workload
from repro.util.errors import (
    DeadlockError,
    RankUnreachable,
    TenancyError,
    tag_job,
)

#: Solo-baseline memo: ``(spec.signature(), seed, cores_per_node) ->
#: JobResult``. Scenario runs with ``solo_baseline=True`` consult this so
#: an interference matrix reruns each solo job once, not once per cell.
_SOLO_CACHE: dict = {}


def clear_solo_cache() -> None:
    """Drop memoized solo baselines (tests use this for isolation)."""
    _SOLO_CACHE.clear()


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass
class JobResult:
    """One job's outcome inside a (possibly shared) scenario run."""

    spec: JobSpec
    #: Effective (jittered) arrival time of the job.
    arrival: float
    #: Virtual time the last rank finished (== arrival for fully aborted
    #: jobs that never completed a rank).
    finish: float
    #: ``finish - arrival``; the job's makespan under this scenario.
    elapsed: float
    returns: list[Any]
    #: The job's private metric/trace recorder.
    recorder: TraceRecorder
    world: MpiWorld
    #: Durable output: tenant-relative file name -> bytes (journals and
    #: commit markers included — they are deterministic too).
    files: dict[str, bytes]
    #: The exception that aborted this job, or ``None`` for a clean run.
    aborted: Optional[BaseException] = None
    #: Solo-run makespan of the same spec (when a baseline was computed).
    solo_elapsed: Optional[float] = None

    @property
    def slowdown(self) -> Optional[float]:
        """``shared_elapsed / solo_elapsed`` (>= 1.0 means interference
        cost); ``None`` without a baseline or for aborted jobs."""
        if self.aborted is not None or not self.solo_elapsed:
            return None
        return self.elapsed / self.solo_elapsed

    @property
    def file_hashes(self) -> dict[str, str]:
        """sha256 of every durable file, keyed by tenant-relative name."""
        return {name: _sha256(data) for name, data in sorted(self.files.items())}


@dataclass
class ScenarioResult:
    """Outcome of one multi-job run."""

    scenario: TenancyScenario
    qos: str
    #: Final virtual clock (scenario makespan).
    elapsed: float
    jobs: dict[str, JobResult]
    #: Engine-context metrics (deliveries, lock releases, host counters).
    shared: TraceRecorder
    pfs: Any
    engine: Engine

    @property
    def jain_index(self) -> Optional[float]:
        """Jain's fairness index over per-job progress rates.

        ``(sum x)^2 / (n * sum x^2)`` with ``x_j = solo_j / shared_j``;
        1.0 when every job suffers the same relative slowdown. ``None``
        unless every (non-aborted) job has a solo baseline.
        """
        xs = [
            job.solo_elapsed / job.elapsed
            for job in self.jobs.values()
            if job.aborted is None and job.solo_elapsed and job.elapsed > 0
        ]
        if len(xs) != len(self.jobs):
            return None
        num = sum(xs) ** 2
        den = len(xs) * sum(x * x for x in xs)
        return num / den if den else None

    def ost_report(self) -> list[dict]:
        """Per-OST contention: service busy-time plus per-tenant bytes."""
        out = []
        for index, ost in enumerate(self.pfs.osts):
            tenants = {
                job: {"read": per[0], "written": per[1]}
                for job, per in sorted(ost.tenant_bytes.items())
                if per[0] or per[1]
            }
            out.append(
                {
                    "ost": index,
                    "busy_time": ost.busy_time,
                    "bytes_read": ost.bytes_read,
                    "bytes_written": ost.bytes_written,
                    "tenants": tenants,
                }
            )
        return out

    def lock_report(self) -> dict[str, dict[str, dict]]:
        """Lock-manager hotspots per job: grants served from the owner
        cache vs. queue waits, for each of the job's files."""
        out: dict[str, dict[str, dict]] = {}
        for name, job in self.jobs.items():
            view = TenantPfs(self.pfs, name)
            per_file = {}
            for fname in view.list_files():
                locks = view.lookup(fname).locks
                per_file[fname] = {
                    "cache_hits": locks.cache_hits,
                    "waits": locks.waits,
                }
            out[name] = per_file
        return out

    def metrics_json(self) -> dict:
        """Deterministic JSON-ready report (same seed -> same bytes).

        Contains only virtual-time and content-derived quantities — no
        wall clock, no host identifiers — so CI can diff it across runs.
        """
        from repro.obs.export import metrics_json as registry_json

        jobs = {}
        for name, job in sorted(self.jobs.items()):
            jobs[name] = {
                "workload": job.spec.workload,
                "nranks": job.spec.nranks,
                "priority": job.spec.priority,
                "arrival": job.arrival,
                "finish": job.finish,
                "elapsed": job.elapsed,
                "solo_elapsed": job.solo_elapsed,
                "slowdown": job.slowdown,
                "aborted": job.aborted is not None,
                "files": job.file_hashes,
                "metrics": registry_json(job.recorder.registry),
            }
        return {
            "schema": "repro.tenancy/1",
            "seed": self.scenario.seed,
            "qos": self.qos,
            "elapsed": self.elapsed,
            "jobs": jobs,
            "fairness": {
                "jain_index": self.jain_index,
                "slowdowns": {
                    name: job.slowdown for name, job in sorted(self.jobs.items())
                },
            },
            "pfs": {"qos": self.pfs.qos_policy, "osts": self.ost_report()},
            "locks": self.lock_report(),
        }


class _JobState:
    """Mutable per-job bookkeeping while the engine runs."""

    __slots__ = ("returns", "finish_times", "aborted")

    def __init__(self, nranks: int):
        self.returns: list = [None] * nranks
        self.finish_times: list = [None] * nranks
        self.aborted: Optional[BaseException] = None


def scenario_cluster(scenario: TenancyScenario) -> ClusterSpec:
    """The combined machine hosting every job on disjoint nodes."""
    from dataclasses import replace

    from repro.experiments.topo_ablation import ablation_cluster

    cpn = scenario.cores_per_node
    total_ranks = sum(j.nranks for j in scenario.jobs)
    total_nodes = sum(-(-j.nranks // cpn) for j in scenario.jobs)
    return replace(ablation_cluster(total_ranks, cpn), nodes=total_nodes)


def _make_rank_target(
    engine: Engine,
    state: _JobState,
    job: str,
    rank: int,
    env: RankEnv,
    main: Callable,
    arrival: float,
):
    def target():
        if arrival > 0.0:
            yield from env.ctx.process.sleep(arrival)
        try:
            state.returns[rank] = yield from run_coroutine(main(env))
            yield from env.ctx.process.settle()
        except RankUnreachable as exc:
            # Fail-stop containment: this JOB is dead, the scenario is
            # not. Record the abort and wind the rank down quietly so
            # neighbor jobs keep the engine alive.
            state.aborted = tag_job(exc, job)
            return
        state.finish_times[rank] = engine.now

    return target


def run_scenario(
    scenario: TenancyScenario,
    *,
    qos: str = "fifo",
    faults: Optional[dict] = None,
    solo_baseline: bool = True,
    verify: bool = True,
    until: Optional[float] = None,
) -> ScenarioResult:
    """Run every job of *scenario* concurrently against one shared PFS.

    ``qos`` selects the OST token-issue policy (``"fifo"`` — strict
    arrival order, bit-identical to the pre-tenancy simulator — or
    ``"fair"`` — weighted fair-share virtual token lines, weights taken
    from each job's ``priority``). ``faults`` optionally maps job name ->
    :class:`repro.faults.plan.FaultSpec`; injected faults (crashes
    included) stay confined to that job. With ``solo_baseline`` each
    job's spec is also run alone (memoized) to price its interference;
    with ``verify`` every clean job's durable bytes are checked against
    the workload oracle.
    """
    workloads: dict[str, Workload] = {
        spec.name: build_workload(
            spec,
            scenario_seed=scenario.seed,
            cores_per_node=scenario.cores_per_node,
        )
        for spec in scenario.jobs
    }

    cluster = scenario_cluster(scenario)
    cpn = scenario.cores_per_node
    hub = JobTraceHub()
    engine = Engine(trace=hub)
    pfs = cluster.build_pfs(engine, hub)
    pfs.set_qos(qos)

    # Global placement: jobs occupy disjoint node ranges of one machine.
    node_of: list[int] = []
    offsets: dict[str, int] = {}
    node_base = 0
    for spec in scenario.jobs:
        offsets[spec.name] = len(node_of)
        node_of.extend(node_base + r // cpn for r in range(spec.nranks))
        node_base += -(-spec.nranks // cpn)
    fabric = Fabric(engine, cluster.network, node_of, hub, None)

    states: dict[str, _JobState] = {}
    worlds: dict[str, MpiWorld] = {}
    arrivals: dict[str, float] = {}
    for spec in scenario.jobs:
        name = spec.name
        recorder = hub.add_job(name, TraceRecorder())
        pfs.register_tenant(name, weight=spec.priority)
        offset = offsets[name]
        job_nodes = node_of[offset : offset + spec.nranks]
        plan = None
        if faults and name in faults:
            from repro.faults.plan import FaultPlan

            plan = FaultPlan(
                faults[name], scenario.seed, scope=f"tenancy:{name}"
            )
            plan.bind(engine, recorder)
        world = MpiWorld(
            engine,
            spec.nranks,
            cluster.network,
            job_nodes,
            MemoryTracker(cluster.memory_per_node, job_nodes),
            pfs=TenantPfs(pfs, name),
            trace=recorder,
            faults=plan,
            fabric=JobFabric(fabric, offset, spec.nranks),
            job=name,
        )
        state = _JobState(spec.nranks)
        arrival = scenario.effective_arrival(spec)
        for rank in range(spec.nranks):
            env = RankEnv(comm=world.world_comm(rank), world=world)
            proc = engine.spawn(
                f"{name}:rank{rank}",
                _make_rank_target(
                    engine, state, name, rank, env, workloads[name].main, arrival
                ),
            )
            env.ctx = SimContext(engine, proc)
            world.procs.append(proc)
            hub.register_process(proc, name)
        states[name] = state
        worlds[name] = world
        arrivals[name] = arrival

    try:
        elapsed = engine.run(until=until)
    except (RankUnreachable, DeadlockError) as exc:
        # Per-rank containment should make this unreachable for crashes;
        # anything else (a genuine cross-job deadlock) is a real bug.
        dead_jobs = [n for n, w in worlds.items() if w.dead_ranks]
        if not dead_jobs:
            raise
        for n in dead_jobs:  # pragma: no cover - defensive
            states[n].aborted = tag_job(exc, n)
        elapsed = engine.now

    # The engine-event count is a pure function of the workload mix, so
    # it may land in the (deterministic) shared registry.
    hub.shared.registry.counter("host.engine.events").inc(engine.events)

    results: dict[str, JobResult] = {}
    for spec in scenario.jobs:
        name = spec.name
        state = states[name]
        world = worlds[name]
        if state.aborted is None and world.dead_ranks:
            state.aborted = tag_job(
                RankUnreachable(
                    min(world.dead_ranks), min(world.dead_ranks), "job"
                ),
                name,
            )
        done = [t for t in state.finish_times if t is not None]
        finish = max(done) if done else arrivals[name]
        view = TenantPfs(pfs, name)
        files = {fname: view.lookup(fname).contents() for fname in view.list_files()}
        results[name] = JobResult(
            spec=spec,
            arrival=arrivals[name],
            finish=finish,
            elapsed=finish - arrivals[name],
            returns=state.returns,
            recorder=hub.recorder(name),
            world=world,
            files=files,
            aborted=state.aborted,
        )

    if verify:
        for name, job in results.items():
            if job.aborted is not None:
                continue
            for fname, want in workloads[name].expected.items():
                got = job.files.get(fname)
                if got != want:
                    raise tag_job(
                        TenancyError(
                            f"job {name}: contention changed the bytes of "
                            f"{fname!r} (got {len(got) if got is not None else 'no'}"
                            f" bytes, want {len(want)})"
                        ),
                        name,
                    )

    if solo_baseline and len(scenario.jobs) > 1:
        for name, job in results.items():
            job.solo_elapsed = solo_result(scenario, name).elapsed

    return ScenarioResult(
        scenario=scenario,
        qos=qos,
        elapsed=elapsed,
        jobs=results,
        shared=hub.shared,
        pfs=pfs,
        engine=engine,
    )


def solo_result(scenario: TenancyScenario, name: str) -> JobResult:
    """*name*'s job run alone on its own nodes (memoized).

    The baseline always uses the ``"fifo"`` policy — with a single tenant
    the fair-share token lines degenerate to FIFO anyway, and baselines
    must not depend on the policy under test.
    """
    spec = scenario.job(name)
    key = (spec.signature(), scenario.seed, scenario.cores_per_node)
    cached = _SOLO_CACHE.get(key)
    if cached is not None:
        return cached
    solo = run_scenario(
        scenario.solo(name), qos="fifo", solo_baseline=False, verify=True
    )
    result = solo.jobs[name]
    _SOLO_CACHE[key] = result
    return result
