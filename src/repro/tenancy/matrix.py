"""The interference matrix: A alone, B alone, A+B together.

The harness behind the tenancy acceptance bar. For each job of a
scenario it runs the job solo, then runs all jobs shared, and checks:

* **byte identity** — every durable file a job produced under contention
  (data, journals, commit markers) is byte-identical to its solo run;
  contention moved virtual time, never data;
* **fsck cleanliness** — each journaled job's primary file passes
  :func:`repro.crash.fsck.fsck` on the *shared* file system, attributed
  to the owning job;
* **interference prices** — per-job slowdown and the scenario's Jain
  fairness index, which is where QoS policies become visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.tenancy.runner import (
    JobResult,
    ScenarioResult,
    run_scenario,
    solo_result,
)
from repro.tenancy.spec import TenancyScenario
from repro.tenancy.workloads import build_workload
from repro.util.errors import TenancyError, tag_job


@dataclass
class MatrixReport:
    """Solo-vs-shared comparison for every job of one scenario."""

    scenario: TenancyScenario
    qos: str
    shared: ScenarioResult
    solo: dict[str, JobResult]
    #: job -> did its shared-run bytes match its solo run exactly.
    identical: dict[str, bool]
    #: job -> fsck summary line of its primary data file (journaled jobs
    #: on the shared PFS only).
    fsck: dict[str, str]
    fsck_clean: dict[str, bool]

    @property
    def all_identical(self) -> bool:
        return all(self.identical.values())

    @property
    def all_clean(self) -> bool:
        return all(self.fsck_clean.values())

    def to_json(self) -> dict:
        """Deterministic JSON-ready summary (no wall clock, no paths)."""
        jobs = {}
        for name in sorted(self.solo):
            shared_job = self.shared.jobs[name]
            jobs[name] = {
                "solo_elapsed": self.solo[name].elapsed,
                "shared_elapsed": shared_job.elapsed,
                "slowdown": shared_job.slowdown,
                "identical": self.identical[name],
                "files": shared_job.file_hashes,
                "fsck": self.fsck.get(name),
                "fsck_clean": self.fsck_clean.get(name, True),
            }
        return {
            "schema": "repro.tenancy.matrix/1",
            "seed": self.scenario.seed,
            "qos": self.qos,
            "jobs": jobs,
            "jain_index": self.shared.jain_index,
            "scenario_elapsed": self.shared.elapsed,
        }


def interference_matrix(
    scenario: TenancyScenario,
    *,
    qos: str = "fifo",
    strict: bool = True,
    until: Optional[float] = None,
) -> MatrixReport:
    """Run the full solo/shared matrix for *scenario*.

    With ``strict`` (the default) a byte-identity violation or a dirty
    fsck raises :class:`TenancyError` attributed to the offending job;
    otherwise the report simply records the failures.
    """
    shared = run_scenario(scenario, qos=qos, solo_baseline=True, until=until)
    solo = {spec.name: solo_result(scenario, spec.name) for spec in scenario.jobs}

    identical: dict[str, bool] = {}
    for name, solo_job in solo.items():
        same = solo_job.files == shared.jobs[name].files
        identical[name] = same
        if strict and not same:
            theirs = shared.jobs[name].files
            diff = sorted(
                fname
                for fname in set(solo_job.files) | set(theirs)
                if solo_job.files.get(fname) != theirs.get(fname)
            )
            raise tag_job(
                TenancyError(
                    f"job {name}: shared-run bytes differ from solo run "
                    f"in {diff} — contention must never change data"
                ),
                name,
            )

    fsck_lines: dict[str, str] = {}
    fsck_clean: dict[str, bool] = {}
    for spec in scenario.jobs:
        workload = build_workload(
            spec,
            scenario_seed=scenario.seed,
            cores_per_node=scenario.cores_per_node,
        )
        if not (workload.journaled and workload.data_file):
            continue
        if shared.jobs[spec.name].aborted is not None:
            continue
        from repro.crash.fsck import fsck

        report = fsck(
            shared.pfs, f"{spec.name}/{workload.data_file}", job=spec.name
        )
        fsck_lines[spec.name] = report.summary()
        fsck_clean[spec.name] = report.clean
        if strict and not report.clean:
            raise tag_job(
                TenancyError(
                    f"job {spec.name}: shared-run fsck not clean: "
                    f"{report.summary()}"
                ),
                spec.name,
            )

    return MatrixReport(
        scenario=scenario,
        qos=qos,
        shared=shared,
        solo=solo,
        identical=identical,
        fsck=fsck_lines,
        fsck_clean=fsck_clean,
    )
