"""Per-job namespace views over one shared parallel file system.

Each tenant job sees the PFS through a :class:`TenantPfs`: every name it
creates or looks up is transparently prefixed with ``"<job>/"``, so two
jobs writing ``bench.dat`` land in distinct files, a crashing job's
recovery tooling replays only its own journals, and ``unlink``/fsck can
never touch a neighbor's data. Physics (OSTs, client links, locks) stays
shared — that is the whole point of the tenancy model: namespace
isolation with resource contention.
"""

from __future__ import annotations

from typing import Optional, Sequence, TYPE_CHECKING

from repro.util.errors import PfsError

if TYPE_CHECKING:  # pragma: no cover
    from repro.pfs.file import PfsFile
    from repro.pfs.filesystem import Pfs, PfsClient


class TenantPfs:
    """One job's view of a shared :class:`~repro.pfs.filesystem.Pfs`.

    Duck-type compatible with ``Pfs`` for everything rank-side libraries
    (TCIO, MPI-IO, the crash tooling) touch: namespace operations carry
    the job prefix, ``client()`` hands out tenant-tagged clients for QoS
    attribution, and physical attributes (``spec``, ``osts``, ``engine``,
    ``trace``) pass straight through to the shared instance.
    """

    def __init__(self, base: "Pfs", job: str):
        if "/" in job or not job:
            raise PfsError("tenant job name must be non-empty and '/'-free")
        self.base = base
        self.job = job
        self._prefix = f"{job}/"

    # -- physical passthrough -----------------------------------------
    @property
    def engine(self):
        return self.base.engine

    @property
    def spec(self):
        return self.base.spec

    @property
    def osts(self):
        return self.base.osts

    @property
    def trace(self):
        return self.base.trace

    @property
    def faults(self):
        return self.base.faults

    @property
    def qos_policy(self) -> str:
        return self.base.qos_policy

    # -- namespace (prefixed) -----------------------------------------
    def _qualify(self, name: str) -> str:
        return self._prefix + name

    def create(self, name: str, *, stripe_count: Optional[int] = None) -> "PfsFile":
        return self.base.create(self._qualify(name), stripe_count=stripe_count)

    def lookup(self, name: str) -> "PfsFile":
        return self.base.lookup(self._qualify(name))

    def exists(self, name: str) -> bool:
        return self.base.exists(self._qualify(name))

    def unlink(self, name: str) -> None:
        self.base.unlink(self._qualify(name))

    def list_files(self) -> Sequence[str]:
        """This job's files only, prefix stripped (sorted)."""
        plen = len(self._prefix)
        return [
            n[plen:] for n in self.base.list_files() if n.startswith(self._prefix)
        ]

    # -- clients -------------------------------------------------------
    def client(self, node: int) -> "PfsClient":
        """A tenant-tagged storage client of compute node *node*."""
        return self.base.client(node, tenant=self.job)

    def install_faults(self, plan) -> None:
        """Fault plans arm the *shared* file system; a per-tenant install
        would let one job degrade its neighbors' hardware unilaterally."""
        raise PfsError(
            "install_faults on a TenantPfs view; arm the shared Pfs instead"
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TenantPfs job={self.job!r} over {self.base!r}>"
