"""Per-job workload programs and their byte oracles.

Each :class:`~repro.tenancy.spec.JobSpec` resolves to a :class:`Workload`:
a ``main(env)`` rank-program factory (run on the job's own world) plus the
byte-exact expected output files. The oracles are what the interference
matrix checks — contention may move virtual time, never data.

The programs are the repo's existing drivers, reused unchanged: the
synthetic benchmark writers of :mod:`repro.bench.synthetic` (Programs
2/3), the direct TCIO trace replay of :mod:`repro.ioserver.runner`, and
the delegate server session itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bench.config import BenchConfig, Method
from repro.bench.synthetic import (
    _mpiio_write,
    _ocio_write,
    _tcio_write,
    reference_file_contents,
)
from repro.tenancy.spec import JobSpec
from repro.util.errors import TenancyError

_BENCH_METHODS = {
    "tcio": Method.TCIO,
    "ocio": Method.OCIO,
    "mpiio": Method.MPIIO,
}


@dataclass
class Workload:
    """A job's runnable program and its expected durable output."""

    #: ``main(env)`` coroutine factory; one call per rank.
    main: Callable
    #: Expected file contents (tenant-relative name -> bytes) after a
    #: clean run. The contention-invariant oracle.
    expected: dict[str, bytes] = field(default_factory=dict)
    #: The job's primary data file (fsck/recovery target), if any.
    data_file: str = ""
    #: Whether the workload journals its writes (fsck is meaningful).
    journaled: bool = False


def bench_config(spec: JobSpec) -> BenchConfig:
    """The synthetic-benchmark config a bench-kind job implies."""
    p = spec.param_dict
    return BenchConfig(
        method=_BENCH_METHODS[spec.workload],
        nprocs=spec.nranks,
        num_arrays=int(p.get("num_arrays", 2)),
        type_codes=p.get("type_codes", "i,d"),
        len_array=int(p.get("len_array", 512)),
        size_access=int(p.get("size_access", 4)),
        file_name=f"{spec.name}.dat",
        journal=spec.journal,
    )


def _bench_workload(spec: JobSpec) -> Workload:
    cfg = bench_config(spec)
    writer = {
        "tcio": _tcio_write, "ocio": _ocio_write, "mpiio": _mpiio_write,
    }[spec.workload]

    def main(env):
        return (yield from writer(env, cfg))

    return Workload(
        main=main,
        expected={cfg.file_name: reference_file_contents(cfg)},
        data_file=cfg.file_name,
        journaled=spec.workload == "tcio" and spec.journal == "epoch",
    )


def _make_trace(spec: JobSpec, scenario_seed: int):
    from repro.ioserver.trace import generate_trace

    p = spec.param_dict
    nclients = int(p.get("nclients", max(1, spec.nranks)))
    return generate_trace(
        int(p.get("trace_seed", scenario_seed)),
        nclients,
        epochs=int(p.get("epochs", 2)),
        writes_per_epoch=int(p.get("writes_per_epoch", 3)),
        max_write_bytes=int(p.get("max_write_bytes", 96)),
        reads_per_client=int(p.get("reads_per_client", 0)),
        file_name=f"{spec.name}.dat",
    )


def _trace_workload(spec: JobSpec, scenario_seed: int) -> Workload:
    from repro.ioserver.runner import _tcio_main
    from repro.ioserver.trace import expected_image

    trace = _make_trace(spec, scenario_seed)
    return Workload(
        main=_tcio_main(trace, spec.nranks),
        expected={trace.file_name: expected_image(trace)},
        data_file=trace.file_name,
        # _tcio_main derives its TCIO config from IoServerConfig, whose
        # journal mode defaults to "epoch".
        journaled=True,
    )


def _ioserver_workload(
    spec: JobSpec, scenario_seed: int, cores_per_node: int
) -> Workload:
    from repro.ioserver.protocol import IoServerConfig
    from repro.ioserver.runner import (
        _session_main,
        _tcio_config,
        plan_for,
    )
    from repro.ioserver.trace import expected_image

    ndelegates = -(-spec.nranks // cores_per_node)  # one leader per node
    p = spec.param_dict
    if "nclients" not in p and spec.nranks - ndelegates < 1:
        raise TenancyError(
            f"job {spec.name!r}: ioserver workload needs at least one "
            "non-delegate rank (increase nranks)"
        )
    spec = spec.with_params(
        nclients=int(p.get("nclients", spec.nranks - ndelegates))
    )
    trace = _make_trace(spec, scenario_seed)
    config = IoServerConfig()
    placement = plan_for(trace, spec.nranks, cores_per_node, config)
    tcio_config = _tcio_config(trace, len(placement.delegates), config)
    return Workload(
        main=_session_main(trace, config, placement, tcio_config),
        expected={trace.file_name: expected_image(trace)},
        data_file=trace.file_name,
        journaled=True,
    )


def build_workload(
    spec: JobSpec, *, scenario_seed: int = 0, cores_per_node: int = 4
) -> Workload:
    """Resolve *spec* into its runnable :class:`Workload`."""
    if spec.workload in _BENCH_METHODS:
        return _bench_workload(spec)
    if spec.workload == "trace":
        return _trace_workload(spec, scenario_seed)
    if spec.workload == "ioserver":
        return _ioserver_workload(spec, scenario_seed, cores_per_node)
    raise TenancyError(f"unknown workload {spec.workload!r}")
