"""On-disk result cache for campaign points.

A cache entry is one JSON file named by the SHA-256 of the point's
canonical key: the experiment name, its sorted parameters, and a *config
hash* covering everything that could change a result — the calibrated
cluster preset (every cost constant), the scale factors, and a schema
version bumped on intentional result-format changes. Editing the machine
model therefore invalidates the whole cache automatically; editing docs
does not.

Entries store the point result verbatim plus provenance (when it ran and
how long it took on the host), so a warm rerun of the FULL campaign costs
milliseconds per point instead of seconds.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Optional

#: Bump to invalidate every cached result (result-shape changes).
CACHE_SCHEMA = 1

#: Default cache location (overridable per-call or via REPRO_CACHE_DIR).
DEFAULT_CACHE_DIR = ".repro-cache"


def config_hash() -> str:
    """Hash of the simulation configuration that determines results.

    Covers the calibrated Lonestar preset (all per-event cost constants,
    via the dataclass's repr), both global scale factors, and the cache
    schema version. Any calibration change yields a different hash, so
    stale results can never be served.
    """
    from repro.cluster.lonestar import (
        LONESTAR_SCALE,
        LONESTAR_STRIPE_SCALE,
        make_lonestar,
    )

    spec = make_lonestar()
    parts = [
        f"schema={CACHE_SCHEMA}",
        f"scale={LONESTAR_SCALE}",
        f"stripe_scale={LONESTAR_STRIPE_SCALE}",
        repr(dataclasses.asdict(spec)),
    ]
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


class ResultCache:
    """A directory of point results keyed by (experiment, params, config).

    Parameters
    ----------
    root: cache directory (created on first put). Defaults to
        ``$REPRO_CACHE_DIR`` or ``.repro-cache`` under the working dir.
    """

    def __init__(self, root: "str | Path | None" = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self._config = config_hash()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key(self, point) -> str:
        """The content-addressed key of one point under this config."""
        body = json.dumps(
            {
                "config": self._config,
                "experiment": point.experiment,
                "params": dict(point.params),
            },
            sort_keys=True,
        )
        return hashlib.sha256(body.encode()).hexdigest()

    def _path(self, point) -> Path:
        return self.root / f"{self.key(point)}.json"

    # ------------------------------------------------------------------
    def get(self, point) -> Optional[dict]:
        """The cached result for *point*, or ``None`` on a miss.

        Unreadable or truncated entries (e.g. a killed writer) count as
        misses and are overwritten by the next :meth:`put`.
        """
        path = self._path(point)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def put(self, point, result: dict, *, host_seconds: float = 0.0) -> None:
        """Store *result* for *point* (atomic rename, crash-safe)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(point)
        entry = {
            "schema": CACHE_SCHEMA,
            "experiment": point.experiment,
            "params": dict(point.params),
            "config": self._config,
            "result": result,
            "meta": {"created": time.time(), "host_seconds": host_seconds},
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True, indent=1))
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for p in self.root.iterdir() if p.suffix == ".json")

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for p in list(self.root.iterdir()):
                if p.suffix in (".json", ".tmp"):
                    p.unlink(missing_ok=True)
                    removed += 1
        return removed
