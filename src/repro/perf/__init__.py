"""Host-performance subsystem: parallel campaigns, profiling, benchmarks.

Everything under ``repro.perf`` is about *host* time — how fast the
simulator itself runs — never about simulated time. The three tools:

* :mod:`repro.perf.campaign` — a :class:`CampaignRunner` that fans the
  independent experiment points (``fig5``/``fig67``/``fig910``/``topo``)
  across a ``multiprocessing`` pool, with an on-disk
  :class:`~repro.perf.cache.ResultCache` keyed by
  (experiment, params, config hash) so reruns skip completed points;
* :mod:`repro.perf.profile` — ``python -m repro perf profile <target>``:
  cProfile across the engine *and* every rank thread (rank programs run
  on worker threads, invisible to a main-thread profiler);
* :mod:`repro.perf.hostbench` — ``python -m repro perf bench``: pinned
  SMOKE-scale points measured for wall-clock, events/sec and peak RSS,
  written to ``BENCH_<n>.json`` and compared against a committed
  baseline with tolerance (the CI regression gate).

The determinism contract is unaffected: a point computes identical
simulated times and identical output bytes whether it runs serially,
in a pool worker, or comes out of the cache (asserted in
``tests/perf/test_determinism.py``).
"""

from repro.perf.cache import ResultCache, config_hash
from repro.perf.campaign import CampaignRunner, serial_runner
from repro.perf.points import Point, all_points, points_for, run_point

__all__ = [
    "CampaignRunner",
    "Point",
    "ResultCache",
    "all_points",
    "config_hash",
    "points_for",
    "run_point",
    "serial_runner",
]
