"""Experiment points: the independent unit of campaign work.

Every figure of the paper's evaluation decomposes into a grid of
*points* — one (method, parameters) simulation each — that share nothing
at run time: the simulated jobs build their own engine, file system and
fabric, and determinism comes from the virtual clock, not from execution
order. That makes a point the natural unit to fan across a process pool
and to cache on disk.

A :class:`Point` is a frozen, picklable value object; :func:`run_point`
executes one and returns a plain JSON-able dict (what the cache stores
and what the figure assemblers consume). The per-experiment grids live
here too (:func:`points_for`), so the serial harnesses, the pool runner
and the tests all enumerate exactly the same work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

EXPERIMENTS = ("fig5", "fig67", "fig910", "topo", "ioserver", "tenancy")


@dataclass(frozen=True)
class Point:
    """One independent simulation of a campaign.

    ``params`` is a sorted tuple of (name, scalar) pairs so points hash,
    compare, pickle and JSON-serialize deterministically.
    """

    experiment: str
    params: tuple[tuple[str, object], ...]

    @classmethod
    def make(cls, experiment: str, **params: object) -> "Point":
        """Build a point with canonical (sorted) parameter order."""
        if experiment not in EXPERIMENTS:
            raise ValueError(f"unknown experiment {experiment!r}")
        return cls(experiment, tuple(sorted(params.items())))

    def get(self, name: str, default: object = None) -> object:
        """One parameter's value (or *default*)."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def label(self) -> str:
        """A compact human-readable id (progress lines, bench reports)."""
        parts = [f"{k}={v}" for k, v in self.params]
        return f"{self.experiment}({', '.join(parts)})"

    def as_spec(self) -> dict:
        """A JSON-able spec (what pool workers receive)."""
        return {"experiment": self.experiment, "params": dict(self.params)}

    @classmethod
    def from_spec(cls, spec: dict) -> "Point":
        """Rebuild a point from :meth:`as_spec` output."""
        return cls.make(spec["experiment"], **spec["params"])


# ----------------------------------------------------------------------
# grids (one entry per figure point, enumeration order = figure order)
# ----------------------------------------------------------------------


def points_for(experiment: str, scale=None) -> list[Point]:
    """The grid of points one experiment runs at *scale* (default FULL)."""
    from repro.experiments.common import FULL

    scale = scale if scale is not None else FULL
    points: list[Point] = []
    if experiment == "fig5":
        for nprocs in scale.proc_counts:
            for method in ("TCIO", "OCIO"):
                points.append(Point.make(
                    "fig5", method=method, nprocs=nprocs,
                    len_array=scale.len_array,
                ))
    elif experiment == "fig67":
        for len_array in scale.filesize_lens:
            for method in ("TCIO", "OCIO"):
                points.append(Point.make(
                    "fig67", method=method, nprocs=scale.filesize_procs,
                    len_array=len_array,
                ))
    elif experiment == "fig910":
        for nprocs in scale.art_proc_counts:
            for method in ("TCIO", "MPI-IO"):
                points.append(Point.make(
                    "fig910", method=method, nprocs=nprocs,
                    segments=scale.art_segments,
                    cell_scale=scale.art_cell_scale,
                ))
    elif experiment == "topo":
        for method in ("TCIO", "OCIO"):
            for aggregation in ("flat", "node"):
                points.append(Point.make(
                    "topo", method=method, aggregation=aggregation,
                    nprocs=64, cores_per_node=4, len_array=1024,
                ))
    elif experiment == "ioserver":
        for nclients in (16, 64):
            points.append(Point.make(
                "ioserver", nclients=nclients, nranks=6, cores_per_node=3,
                epochs=3, seed=11,
            ))
    elif experiment == "tenancy":
        for qos in ("fifo", "fair"):
            points.append(Point.make(
                "tenancy", qos=qos, nranks=4, len_array=512, seed=3,
            ))
    else:
        raise ValueError(f"unknown experiment {experiment!r}")
    return points


def all_points(scale=None, experiments=EXPERIMENTS) -> list[Point]:
    """Every point of the selected experiments, in campaign order."""
    out: list[Point] = []
    for experiment in experiments:
        out.extend(points_for(experiment, scale))
    return out


# ----------------------------------------------------------------------
# execution (pure: point in, JSON-able result out)
# ----------------------------------------------------------------------


def _run_bench_point(point: Point, *, verify: bool = True) -> dict:
    """A fig5/fig67 point: one synthetic-benchmark (method, P, LEN) run."""
    from repro.bench import BenchConfig, Method, run_benchmark

    method = str(point.get("method"))
    nprocs = int(point.get("nprocs"))  # type: ignore[arg-type]
    len_array = int(point.get("len_array"))  # type: ignore[arg-type]
    journal = str(point.get("journal") or "off")
    segment_bytes = point.get("segment_bytes")
    cb_nodes = point.get("cb_nodes")
    cfg = BenchConfig(
        method=Method.parse(method),
        num_arrays=2,
        type_codes="i,d",
        len_array=len_array,
        size_access=1,
        nprocs=nprocs,
        file_name=f"{point.experiment}_{method}_{nprocs}_{len_array}.dat",
        journal=journal,
        aggregation=str(point.get("aggregation") or "flat"),
        segment_bytes=None if segment_bytes is None else int(segment_bytes),  # type: ignore[arg-type]
        cb_nodes=None if cb_nodes is None else int(cb_nodes),  # type: ignore[arg-type]
        batched_writeback=bool(point.get("batched_writeback") or False),
    )
    result = run_benchmark(cfg, verify=verify)
    return {
        "write_throughput": result.write_throughput,
        "read_throughput": result.read_throughput,
        "write_seconds": result.write_seconds,
        "read_seconds": result.read_seconds,
        "failed": result.failed,
        "fail_reason": result.fail_reason,
        "file_sha256": result.file_sha256,
    }


def _run_art_point(point: Point, *, verify: bool = True) -> dict:
    """A fig910 point: one ART dump+restart (method, P) run."""
    from repro.art import ArtConfig, ArtIoMethod, ArtWorkload, run_art
    from repro.cluster.lonestar import make_lonestar

    label = str(point.get("method"))
    method = ArtIoMethod.TCIO if label == "TCIO" else ArtIoMethod.MPIIO
    nprocs = int(point.get("nprocs"))  # type: ignore[arg-type]
    workload = ArtWorkload(
        n_segments=int(point.get("segments")),  # type: ignore[arg-type]
        cell_scale=int(point.get("cell_scale")),  # type: ignore[arg-type]
    )
    cfg = ArtConfig(
        workload=workload,
        method=method,
        nprocs=nprocs,
        file_name=f"fig910_{label}_{nprocs}.dat",
        verify=verify,
        per_array_cost=0.5e-6,
    )
    result = run_art(cfg, cluster=make_lonestar(nranks=nprocs))
    return {
        "dump_throughput": result.dump_throughput,
        "restart_throughput": result.restart_throughput,
        "dump_seconds": result.dump_seconds,
        "restart_seconds": result.restart_seconds,
        "snapshot_bytes": result.snapshot_bytes,
    }


def _run_topo_point(point: Point, *, verify: bool = True) -> dict:
    """A topo-ablation point: one (method, aggregation) write phase."""
    from repro.bench import Method, run_benchmark
    from repro.experiments.topo_ablation import ablation_cluster, ablation_config

    procs = int(point.get("nprocs"))  # type: ignore[arg-type]
    cores_per_node = int(point.get("cores_per_node"))  # type: ignore[arg-type]
    cluster = ablation_cluster(
        procs, cores_per_node, net=str(point.get("net") or "default")
    )
    cfg = ablation_config(
        Method.parse(str(point.get("method"))),
        str(point.get("aggregation")),
        procs,
        cores_per_node,
        cluster.lustre.stripe_size,
        int(point.get("len_array")),  # type: ignore[arg-type]
    )
    result = run_benchmark(cfg, cluster=cluster, do_read=False, verify=verify)
    if result.failed:  # pragma: no cover - surfaced by the ablation check
        raise RuntimeError(f"{point.label()}: {result.fail_reason}")
    return {
        "messages": int(result.counters.get("write.net.msg", (0, 0))[0]),
        "connections": int(result.counters.get("write.net.connection", (0, 0))[0]),
        "write_seconds": result.write_seconds,
        "file_sha256": result.file_sha256,
    }


def _run_ioserver_point(point: Point, *, verify: bool = True) -> dict:
    """An ioserver point: one seeded trace through the delegate servers."""
    import hashlib

    from repro.ioserver import expected_image, generate_trace, run_ioserver

    trace = generate_trace(
        int(point.get("seed")),  # type: ignore[arg-type]
        int(point.get("nclients")),  # type: ignore[arg-type]
        epochs=int(point.get("epochs")),  # type: ignore[arg-type]
    )
    nranks = int(point.get("nranks"))  # type: ignore[arg-type]
    config = None
    delegates = point.get("delegates")
    queue_depth = point.get("queue_depth")
    if delegates is not None or queue_depth is not None:
        from dataclasses import replace

        from repro.ioserver.ablation import _delegates_for
        from repro.ioserver.protocol import IoServerConfig

        config = IoServerConfig(
            delegates=_delegates_for(delegates, nranks)
            if delegates is not None
            else "leaders",
        )
        if queue_depth is not None:
            config = replace(config, queue_depth=int(queue_depth))  # type: ignore[arg-type]
    result = run_ioserver(
        trace,
        nranks=nranks,
        cores_per_node=int(point.get("cores_per_node")),  # type: ignore[arg-type]
        config=config,
    )
    if result.aborted is not None:  # pragma: no cover - clean run expected
        raise RuntimeError(f"{point.label()}: aborted: {result.aborted}")
    if verify and result.image != expected_image(trace):
        raise RuntimeError(f"{point.label()}: image differs from analytic")
    return {
        "elapsed": result.elapsed,
        "throughput": result.throughput,
        "admitted": result.admitted,
        "rejected": result.rejected,
        "queue_depth_max": result.max_depth,
        "file_sha256": hashlib.sha256(result.image).hexdigest(),
    }


def _run_tenancy_point(point: Point, *, verify: bool = True) -> dict:
    """A tenancy point: the 2-job interference matrix under one QoS policy."""
    from repro.tenancy import (
        clear_solo_cache,
        interference_matrix,
        two_job_scenario,
    )

    clear_solo_cache()  # a point must not depend on in-process history
    scenario = two_job_scenario(
        seed=int(point.get("seed")),  # type: ignore[arg-type]
        nranks=int(point.get("nranks")),  # type: ignore[arg-type]
        len_array=int(point.get("len_array")),  # type: ignore[arg-type]
    )
    report = interference_matrix(
        scenario, qos=str(point.get("qos")), strict=verify
    )
    payload = report.to_json()
    return {
        "qos": payload["qos"],
        "scenario_elapsed": payload["scenario_elapsed"],
        "jain_index": payload["jain_index"],
        "slowdowns": {
            name: cell["slowdown"] for name, cell in payload["jobs"].items()
        },
        "identical": report.all_identical,
        "fsck_clean": report.all_clean,
        # the matrix's combined content identity (already oracle-checked)
        "files": {
            name: cell["files"] for name, cell in payload["jobs"].items()
        },
    }


_RUNNERS = {
    "fig5": _run_bench_point,
    "fig67": _run_bench_point,
    "fig910": _run_art_point,
    "topo": _run_topo_point,
    "ioserver": _run_ioserver_point,
    "tenancy": _run_tenancy_point,
}


def run_point(point: Point, *, verify: bool = True) -> dict:
    """Execute one point in this process; returns its JSON-able result."""
    return _RUNNERS[point.experiment](point, verify=verify)


def run_spec(spec: dict, *, verify: bool = True) -> dict:
    """Worker-side entry: :func:`run_point` on a :meth:`Point.as_spec`."""
    return run_point(Point.from_spec(spec), verify=verify)


def result_sha256(result: dict) -> Optional[str]:
    """The output-bytes hash a point recorded, if its kind records one."""
    value = result.get("file_sha256")
    return str(value) if value else None
