"""``python -m repro perf profile <target>``: whole-simulator cProfile.

Rank programs execute on worker threads behind the engine's baton, so a
plain ``cProfile`` of the main thread attributes all rank work to
``lock.acquire`` (the engine waiting for the baton) and hides the real
hot paths. This hook profiles *every* thread: one ``cProfile.Profile``
wraps the engine loop, and one more wraps each rank thread via
:func:`repro.sim.process.set_thread_hook`; the per-thread stats merge
into a single report. The baton guarantees only one thread runs at a
time, so merged tottime is directly comparable to wall-clock.

This is the tool the hot-path optimization pass is guided by — see
docs/performance.md for a worked example.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from contextlib import contextmanager
from typing import Optional, Sequence

from repro.perf.points import Point, points_for, run_point

TARGETS = ("bench", "fig5", "fig67", "fig910", "topo")


class _RankProfiles:
    """Collects one cProfile per simulated-process thread."""

    def __init__(self) -> None:
        self.profiles: list[cProfile.Profile] = []

    @contextmanager
    def hook(self, _proc):
        profile = cProfile.Profile()
        profile.enable()
        try:
            yield
        finally:
            profile.disable()
            # The baton serializes rank threads, so no lock is needed.
            self.profiles.append(profile)


def profile_points(
    points: Sequence[Point],
) -> tuple[pstats.Stats, float]:
    """Run *points* serially under an all-threads profiler.

    Returns the merged :class:`pstats.Stats` plus total host seconds.
    """
    from repro.sim import process as process_mod

    collector = _RankProfiles()
    main_profile = cProfile.Profile()
    process_mod.set_thread_hook(collector.hook)
    t0 = time.perf_counter()
    try:
        main_profile.enable()
        try:
            for point in points:
                run_point(point)
        finally:
            main_profile.disable()
    finally:
        process_mod.set_thread_hook(None)
    wall = time.perf_counter() - t0
    stats = pstats.Stats(main_profile)
    for profile in collector.profiles:
        stats.add(profile)
    return stats, wall


def target_points(
    target: str,
    *,
    method: str = "tcio",
    procs: Optional[int] = None,
    len_array: Optional[int] = None,
) -> list[Point]:
    """The point list one profile target runs (SMOKE-sized grids)."""
    from repro.experiments.common import SMOKE

    if target == "bench":
        return [Point.make(
            "fig5",
            method={"tcio": "TCIO", "ocio": "OCIO"}.get(method, method.upper()),
            nprocs=procs or 16,
            len_array=len_array or 2048,
        )]
    if target in ("fig5", "fig67", "fig910", "topo"):
        return points_for(target, SMOKE)
    raise ValueError(f"unknown profile target {target!r} (want one of {TARGETS})")


def run_profile(
    target: str,
    *,
    method: str = "tcio",
    procs: Optional[int] = None,
    len_array: Optional[int] = None,
    sort: str = "tottime",
    limit: int = 25,
    out: Optional[str] = None,
) -> pstats.Stats:
    """Profile one target and print the top-*limit* functions by *sort*.

    ``out`` additionally dumps the merged stats to a ``.pstats`` file
    loadable with ``pstats.Stats(path)`` or snakeviz-style viewers.
    """
    points = target_points(
        target, method=method, procs=procs, len_array=len_array
    )
    print(f"profiling {len(points)} point(s): "
          + ", ".join(p.label() for p in points))
    stats, wall = profile_points(points)
    print(f"host wall-clock: {wall:.2f} s (all threads merged)\n")
    stats.sort_stats(sort).print_stats(limit)
    if out is not None:
        stats.dump_stats(out)
        print(f"wrote {out}")
    return stats
