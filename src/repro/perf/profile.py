"""``python -m repro perf profile <target>``: whole-simulator cProfile.

Rank programs are generator coroutines resumed inline by the engine
loop, so the whole simulation — scheduler and every rank program — runs
on the calling thread. One ``cProfile.Profile`` around the run therefore
sees everything; there is no per-thread collection step any more (the
thread-kernel era needed :func:`set_thread_hook` to catch rank threads,
which is now a deprecated no-op).

This is the tool the hot-path optimization pass is guided by — see
docs/performance.md for a worked example.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from typing import Optional, Sequence

from repro.perf.points import Point, points_for, run_point

TARGETS = ("bench", "fig5", "fig67", "fig910", "topo")


def profile_points(
    points: Sequence[Point],
) -> tuple[pstats.Stats, float]:
    """Run *points* serially under one profiler.

    Returns the :class:`pstats.Stats` plus total host seconds. The
    generator kernel runs rank programs inline on this thread, so a
    single profile covers the scheduler and every rank program.
    """
    profile = cProfile.Profile()
    t0 = time.perf_counter()
    profile.enable()
    try:
        for point in points:
            run_point(point)
    finally:
        profile.disable()
    wall = time.perf_counter() - t0
    return pstats.Stats(profile), wall


def target_points(
    target: str,
    *,
    method: str = "tcio",
    procs: Optional[int] = None,
    len_array: Optional[int] = None,
) -> list[Point]:
    """The point list one profile target runs (SMOKE-sized grids)."""
    from repro.experiments.common import SMOKE

    if target == "bench":
        return [Point.make(
            "fig5",
            method={"tcio": "TCIO", "ocio": "OCIO"}.get(method, method.upper()),
            nprocs=procs or 16,
            len_array=len_array or 2048,
        )]
    if target in ("fig5", "fig67", "fig910", "topo"):
        return points_for(target, SMOKE)
    raise ValueError(f"unknown profile target {target!r} (want one of {TARGETS})")


def run_profile(
    target: str,
    *,
    method: str = "tcio",
    procs: Optional[int] = None,
    len_array: Optional[int] = None,
    sort: str = "tottime",
    limit: int = 25,
    out: Optional[str] = None,
) -> pstats.Stats:
    """Profile one target and print the top-*limit* functions by *sort*.

    ``out`` additionally dumps the merged stats to a ``.pstats`` file
    loadable with ``pstats.Stats(path)`` or snakeviz-style viewers.
    """
    points = target_points(
        target, method=method, procs=procs, len_array=len_array
    )
    print(f"profiling {len(points)} point(s): "
          + ", ".join(p.label() for p in points))
    stats, wall = profile_points(points)
    print(f"host wall-clock: {wall:.2f} s\n")
    stats.sort_stats(sort).print_stats(limit)
    if out is not None:
        stats.dump_stats(out)
        print(f"wrote {out}")
    return stats
