"""``python -m repro perf bench``: the host-performance regression gate.

Runs a pinned set of SMOKE-scale points — small enough for CI, large
enough to exercise every hot path (TCIO/OCIO/MPI-IO synthetic writes and
reads, the ART record format, node aggregation) — and records, per
point, host **wall-clock seconds**, **engine events/sec** and **peak
RSS**. The report lands in ``BENCH_<n>.json``; comparing a fresh report
against the committed baseline with a relative tolerance is the CI job
that keeps the perf trajectory measurable (and monotone).

Each point runs in a fresh spawned child process so peak RSS is
attributable per point (``ru_maxrss`` is a process-lifetime high-water
mark) and no warm caches leak between points. A pure-Python calibration
loop measured alongside normalizes wall-clock across hosts of different
speeds: comparisons scale the baseline by the calibration ratio before
applying the tolerance.
"""

from __future__ import annotations

import json
import multiprocessing
import platform
import sys
import time
from typing import Optional

from repro.perf.points import Point, run_point

REPORT_SCHEMA = 1

#: Default relative tolerance of the regression gate (25%).
DEFAULT_TOLERANCE = 0.25

#: The pinned measurement set: name -> point. SMOKE-sized on purpose —
#: the gate must be cheap enough to run on every PR. Names are stable
#: identifiers; changing a point's parameters requires a new name (and a
#: baseline refresh), otherwise cross-version comparisons are lies.
PINNED: dict[str, Point] = {
    "bench-tcio-p16-len2048": Point.make(
        "fig5", method="TCIO", nprocs=16, len_array=2048
    ),
    "bench-ocio-p16-len2048": Point.make(
        "fig5", method="OCIO", nprocs=16, len_array=2048
    ),
    "bench-mpiio-p8-len256": Point.make(
        "fig67", method="MPI-IO", nprocs=8, len_array=256
    ),
    "art-tcio-p8-seg24": Point.make(
        "fig910", method="TCIO", nprocs=8, segments=24, cell_scale=128
    ),
    "topo-tcio-node-p32": Point.make(
        "topo", method="TCIO", aggregation="node", nprocs=32,
        cores_per_node=4, len_array=512,
    ),
    # Journaling overhead: the same point as bench-tcio-p16-len2048 with
    # the epoched durability protocol on — the pair bounds what the
    # write-ahead journal costs on the host (docs/faults.md).
    "bench-tcio-journal-epoch-p16-len2048": Point.make(
        "fig5", method="TCIO", nprocs=16, len_array=2048, journal="epoch"
    ),
    # Delegate-server mode: a 64-client trace through node-leader servers
    # — RPC fan-in, admission control, and epoch write-behind on the hot
    # path (docs/io-server.md).
    "ioserver-c64-p6": Point.make(
        "ioserver", nclients=64, nranks=6, cores_per_node=3, epochs=3, seed=11
    ),
    # Multi-job tenancy: the 2-job interference matrix (solo baselines +
    # shared run + byte-identity + fsck) under fair-share QoS — the
    # shared-substrate routing hot path (docs/tenancy.md).
    "tenancy-2job-p4": Point.make(
        "tenancy", qos="fair", nranks=4, len_array=512, seed=3
    ),
}


def calibrate() -> float:
    """Seconds for a fixed pure-Python workload (host-speed yardstick)."""
    t0 = time.perf_counter()
    acc = 0
    for i in range(2_000_000):
        acc += i % 7
    items = [str(i) for i in range(50_000)]
    acc += len("".join(items))
    assert acc > 0
    return time.perf_counter() - t0


def _peak_rss_kib() -> int:
    """This process's peak resident set in KiB (0 where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return int(rss // 1024) if sys.platform == "darwin" else int(rss)


def measure_point(name: str) -> dict:
    """Run one pinned point in *this* process and measure it.

    Meant to execute inside a fresh child (see :func:`run_hostbench`);
    calling it directly is fine for tests, but peak RSS then reflects
    the whole parent process.
    """
    from repro.sim.engine import events_executed_total

    point = PINNED[name]
    before_events = events_executed_total()
    t0 = time.perf_counter()
    result = run_point(point)
    wall = time.perf_counter() - t0
    events = events_executed_total() - before_events
    sim_seconds = sum(
        float(result.get(key) or 0.0)
        for key in ("write_seconds", "read_seconds", "dump_seconds",
                    "restart_seconds", "scenario_elapsed")
    )
    return {
        "point": point.label(),
        "wall_seconds": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall) if wall > 0 else 0,
        "peak_rss_kib": _peak_rss_kib(),
        "sim_seconds": round(sim_seconds, 9),
    }


def _bench_worker(name: str) -> dict:
    """Child-process entry: measure one pinned point."""
    return measure_point(name)


def run_hostbench(
    *,
    names: Optional[list[str]] = None,
    repeat: int = 1,
    fresh_process: bool = True,
    verbose: bool = True,
) -> dict:
    """Measure the pinned set; returns the ``BENCH_*.json`` report dict.

    ``repeat`` takes the fastest of N runs per point (noise floor);
    ``fresh_process=False`` measures in-process (fast for tests, peak
    RSS then covers the whole parent).
    """
    selected = names if names is not None else list(PINNED)
    unknown = [n for n in selected if n not in PINNED]
    if unknown:
        raise ValueError(f"unknown bench points: {unknown}")
    report: dict = {
        "schema": REPORT_SCHEMA,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "calibration_seconds": round(calibrate(), 4),
        "points": {},
    }
    ctx = multiprocessing.get_context("spawn") if fresh_process else None
    for name in selected:
        best: Optional[dict] = None
        for _ in range(max(1, repeat)):
            if ctx is not None:
                with ctx.Pool(processes=1, maxtasksperchild=1) as pool:
                    measured = pool.apply(_bench_worker, (name,))
            else:
                measured = measure_point(name)
            if best is None or measured["wall_seconds"] < best["wall_seconds"]:
                best = measured
        report["points"][name] = best
        if verbose:  # pragma: no cover - console convenience
            print(
                f"[perf bench] {name}: {best['wall_seconds']:.2f} s, "
                f"{best['events_per_sec']} events/s, "
                f"{best['peak_rss_kib'] / 1024:.0f} MiB peak RSS",
                flush=True,
            )
    return report


# ----------------------------------------------------------------------
# the regression comparison
# ----------------------------------------------------------------------


def compare_reports(
    baseline: dict, current: dict, *, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Regressions of *current* vs *baseline*; empty list means pass.

    Wall-clock comparisons are calibration-normalized: the baseline's
    seconds scale by (current calibration / baseline calibration) so a
    slower CI machine does not read as a code regression. A point is a
    regression when its normalized wall-clock grows by more than
    *tolerance* (relative). Missing or renamed points are reported too —
    silently dropping a slow point from the pinned set must not pass.
    """
    problems: list[str] = []
    base_cal = float(baseline.get("calibration_seconds") or 0.0)
    cur_cal = float(current.get("calibration_seconds") or 0.0)
    scale = (cur_cal / base_cal) if base_cal > 0 and cur_cal > 0 else 1.0
    base_points = baseline.get("points", {})
    cur_points = current.get("points", {})
    for name, base in base_points.items():
        cur = cur_points.get(name)
        if cur is None:
            problems.append(f"{name}: missing from current report")
            continue
        allowed = float(base["wall_seconds"]) * scale * (1.0 + tolerance)
        got = float(cur["wall_seconds"])
        if got > allowed:
            problems.append(
                f"{name}: wall-clock {got:.2f} s exceeds "
                f"{allowed:.2f} s (baseline {base['wall_seconds']:.2f} s "
                f"x {scale:.2f} calibration x {1 + tolerance:.2f} tolerance)"
            )
    return problems


def write_report(report: dict, path: str) -> None:
    """Write a ``BENCH_*.json`` report (sorted keys, trailing newline)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> dict:
    """Read a ``BENCH_*.json`` report."""
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
