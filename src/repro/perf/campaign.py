"""The parallel campaign runner: points -> pool -> cached results.

Every campaign point is an independent deterministic job (its simulated
time depends only on its own parameters), so host-level parallelism is
free of ordering hazards: :class:`CampaignRunner` fans cache misses
across a ``multiprocessing`` pool and reassembles results keyed by
point, and the figure assemblers consume them in grid order. A worker
computes *exactly* what the serial path computes — the differential
tests assert identical simulated times, throughputs and output-byte
hashes across serial, pooled and cache-warm executions.

Workers use the ``spawn`` start method: a fresh interpreter per worker
costs a few hundred milliseconds once, but never inherits engine threads
or module state from the parent, which keeps pool runs bit-reproducible
even mid-session (e.g. after the parent already ran simulations).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Callable, Iterable, Optional, Sequence

from repro.perf.cache import ResultCache
from repro.perf.points import Point, run_point, run_spec

#: A runner maps points to their result dicts (the figure assemblers'
#: only dependency — serial, pooled and cached runners are swappable).
Runner = Callable[[Sequence[Point]], dict]


def serial_runner(points: Sequence[Point]) -> dict:
    """Run every point in-process, in order (the reference path)."""
    return {point: run_point(point) for point in points}


def _worker(spec: dict) -> tuple[dict, dict, float]:
    """Pool-worker entry: run one point spec, report host seconds."""
    t0 = time.perf_counter()
    result = run_spec(spec)
    return spec, result, time.perf_counter() - t0


class CampaignRunner:
    """Runs campaign points through a process pool with a result cache.

    Parameters
    ----------
    jobs: worker processes (default: the host's CPU count). ``1`` runs
        in-process (no pool) but still uses the cache.
    cache: a bound :class:`ResultCache`, or ``None`` to disable caching.
    verbose: print one line per completed point plus a summary.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        cache: Optional[ResultCache] = None,
        verbose: bool = False,
    ):
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.cache = cache
        self.verbose = verbose
        self.host_seconds = 0.0  # wall-clock of the last run() call

    # ------------------------------------------------------------------
    def __call__(self, points: Sequence[Point]) -> dict:
        return self.run(points)

    def run(self, points: Sequence[Point]) -> dict:
        """All results for *points* (cache hits + fresh pool runs)."""
        t0 = time.perf_counter()
        results: dict[Point, dict] = {}
        misses: list[Point] = []
        for point in points:
            cached = self.cache.get(point) if self.cache is not None else None
            if cached is not None:
                results[point] = cached
                self._log(f"cached  {point.label()}")
            else:
                misses.append(point)
        if misses:
            if self.jobs == 1 or len(misses) == 1:
                self._run_serial(misses, results)
            else:
                self._run_pool(misses, results)
        self.host_seconds = time.perf_counter() - t0
        self._log(
            f"campaign: {len(points)} points "
            f"({len(points) - len(misses)} cached, {len(misses)} run) "
            f"in {self.host_seconds:.1f} s host wall-clock "
            f"[jobs={self.jobs}]"
        )
        return results

    # ------------------------------------------------------------------
    def _run_serial(self, misses: Iterable[Point], results: dict) -> None:
        for point in misses:
            t0 = time.perf_counter()
            result = run_point(point)
            host = time.perf_counter() - t0
            self._store(point, result, host)
            results[point] = result

    def _run_pool(self, misses: Sequence[Point], results: dict) -> None:
        ctx = multiprocessing.get_context("spawn")
        workers = min(self.jobs, len(misses))
        # Points are submitted largest-first (by process count) so the
        # long jobs start immediately and short ones fill the tail —
        # classic LPT scheduling; result identity is order-independent.
        order = sorted(
            range(len(misses)),
            key=lambda i: -int(misses[i].get("nprocs", 0) or 0),
        )
        specs = [misses[i].as_spec() for i in order]
        with ctx.Pool(processes=workers) as pool:
            for spec, result, host in pool.imap_unordered(_worker, specs):
                point = Point.from_spec(spec)
                self._store(point, result, host)
                results[point] = result

    def _store(self, point: Point, result: dict, host: float) -> None:
        if self.cache is not None:
            self.cache.put(point, result, host_seconds=host)
        self._log(f"ran     {point.label()}  [{host:.1f}s host]")

    def _log(self, message: str) -> None:
        if self.verbose:  # pragma: no cover - console convenience
            print(f"[perf] {message}", flush=True)
