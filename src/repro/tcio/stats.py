"""Per-handle operation counters (exported for experiments and tests).

``TcioStats`` used to be a bag of integer dataclass fields. It is now a
thin **compatibility view** over a per-handle
:class:`~repro.obs.metrics.MetricsRegistry`: the library increments dotted
metrics (``tcio.flush.remote``, ``tcio.write.bytes``, ...) through
:meth:`TcioStats.inc`, and the legacy surface — ``stats.as_dict()``, the
``flushes`` property — reads the same registry, so existing benchmark
assertions keep working and the registry is the single source of truth.

Direct access to the old integer fields (``stats.remote_flushes``,
``stats.write_calls = 3``) still works but emits ``DeprecationWarning``;
new code should read ``stats.registry`` (or ``stats.as_dict()``).
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.obs.metrics import MetricsRegistry

#: Legacy field -> dotted registry metric, in the historical field order
#: (``as_dict`` preserves this order, and its key set is exactly this).
FIELD_METRICS: dict[str, str] = {
    "write_calls": "tcio.write.calls",
    "read_calls": "tcio.read.calls",
    "written_bytes": "tcio.write.bytes",
    "read_bytes": "tcio.read.bytes",
    "local_flushes": "tcio.flush.local",  # level-1 drains landing locally
    "remote_flushes": "tcio.flush.remote",  # level-1 drains shipped via Put
    "put_blocks": "tcio.flush.put_blocks",  # blocks combined into those Puts
    "local_gets": "tcio.fetch.local_gets",
    "get_blocks": "tcio.fetch.get_blocks",
    "flushed_bytes": "tcio.flush.bytes",
    "fetched_bytes": "tcio.fetch.bytes",
    "segment_loads": "tcio.segment.loads",  # whole-segment lazy loads
    "segment_writebacks": "tcio.segment.writebacks",  # whole-segment close writes
    "fetches": "tcio.fetch.rounds",  # explicit or overflow fetch rounds
}


class TcioStats:
    """What one TCIO handle did — the mechanism evidence behind the figures."""

    __slots__ = ("registry", "extra", "_counters")

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        object.__setattr__(
            self, "registry", registry if registry is not None else MetricsRegistry()
        )
        object.__setattr__(self, "extra", {})
        # Counter objects memoized per handle: ``inc`` runs a few times per
        # application I/O call, and the name translation + registry lookup
        # showed up in whole-run profiles.
        object.__setattr__(self, "_counters", {})

    # ------------------------------------------------------------------
    # the library's mutation/read paths (no deprecation)
    # ------------------------------------------------------------------
    def inc(self, fld: str, n: int = 1) -> None:
        """Increment the legacy-named counter *fld* by *n*."""
        counter = self._counters.get(fld)
        if counter is None:
            counter = self.registry.counter(FIELD_METRICS[fld])
            self._counters[fld] = counter
        counter.inc(n)

    def value(self, fld: str) -> int:
        """The legacy-named counter's current integer value."""
        metric = self.registry.get(FIELD_METRICS[fld])
        return int(metric.count) if metric is not None else 0

    @property
    def flushes(self) -> int:
        """Total level-1 drains (local + remote)."""
        return self.value("local_flushes") + self.value("remote_flushes")

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dict (the stable legacy key set).

        Iterates the explicit field table, never ``isinstance`` filtering
        over ``__dict__``, so the key set cannot silently drift (e.g. a
        future ``bool`` field sneaking in as an ``int``).
        """
        out = {fld: self.value(fld) for fld in FIELD_METRICS}
        out.update(self.extra)
        return out

    def as_metrics(self) -> dict[str, int]:
        """The same view keyed by dotted registry names (for metrics.json)."""
        return {metric: self.value(fld) for fld, metric in FIELD_METRICS.items()}

    # ------------------------------------------------------------------
    # deprecated legacy field access
    # ------------------------------------------------------------------
    def __getattr__(self, name: str) -> int:
        # Only reached when normal lookup fails, i.e. for legacy fields.
        if name in FIELD_METRICS:
            warnings.warn(
                f"reading TcioStats.{name} directly is deprecated; use "
                f"stats.as_dict()[{name!r}] or "
                f"stats.registry.counter({FIELD_METRICS[name]!r})",
                DeprecationWarning,
                stacklevel=2,
            )
            return self.value(name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        if name in FIELD_METRICS:
            warnings.warn(
                f"assigning TcioStats.{name} directly is deprecated; use "
                f"stats.inc({name!r}, n) or "
                f"stats.registry.counter({FIELD_METRICS[name]!r})",
                DeprecationWarning,
                stacklevel=2,
            )
            counter = self.registry.counter(FIELD_METRICS[name])
            counter.count = int(value)
            counter.total = float(value)
            return
        object.__setattr__(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"TcioStats({self.as_dict()!r})"
