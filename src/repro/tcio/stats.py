"""Per-handle operation counters (exported for experiments and tests)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TcioStats:
    """What one TCIO handle did — the mechanism evidence behind the figures."""

    write_calls: int = 0
    read_calls: int = 0
    written_bytes: int = 0
    read_bytes: int = 0
    local_flushes: int = 0  # level-1 drains landing in this rank's own slot
    remote_flushes: int = 0  # level-1 drains shipped with one-sided Puts
    put_blocks: int = 0  # blocks combined into those Puts
    local_gets: int = 0
    get_blocks: int = 0
    flushed_bytes: int = 0
    fetched_bytes: int = 0
    segment_loads: int = 0  # storage reads of whole segments (lazy loading)
    segment_writebacks: int = 0  # storage writes of whole segments at close
    fetches: int = 0  # explicit or overflow-triggered fetch rounds
    extra: dict[str, int] = field(default_factory=dict)

    @property
    def flushes(self) -> int:
        """Total level-1 drains (local + remote)."""
        return self.local_flushes + self.remote_flushes

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dict."""
        out = {
            k: v
            for k, v in self.__dict__.items()
            if isinstance(v, int)
        }
        out.update(self.extra)
        return out
