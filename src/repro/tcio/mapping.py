"""Equations (1)-(3): logical file offset -> (rank, segment, displacement).

The level-2 buffer of each process holds multiple equal segments, and
global file segments map to processes round-robin:

    ID_rank    = (OFFSET // SIZE_segment) %  NUM_processes      (1)
    ID_segment = (OFFSET // SIZE_segment) // NUM_processes      (2)
    DISP_block =  OFFSET %  SIZE_segment                        (3)

"This design achieves good load balance ... The library can calculate
these three values in O(1) time given the logical file offset."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.util.errors import TcioError
from repro.util.intervals import Extent


@dataclass(frozen=True)
class BlockLocation:
    """Where one file byte range lives in the distributed level-2 buffer."""

    rank: int  # ID_rank: owning process
    segment: int  # ID_segment: slot within the owner's level-2 buffer
    disp: int  # DISP_block: byte displacement inside the segment
    length: int  # bytes of this (sub-)block


@dataclass(frozen=True)
class SegmentMapping:
    """The O(1) offset arithmetic for one (segment_size, nranks) pair."""

    segment_size: int
    nranks: int

    def __post_init__(self) -> None:
        if self.segment_size < 1:
            raise TcioError("segment size must be positive")
        if self.nranks < 1:
            raise TcioError("need at least one rank")

    # -- equations (1)-(3) ------------------------------------------------
    def rank_of(self, offset: int) -> int:
        """Equation (1)."""
        self._check(offset)
        return (offset // self.segment_size) % self.nranks

    def segment_of(self, offset: int) -> int:
        """Equation (2): slot index within the owner's level-2 buffer."""
        self._check(offset)
        return (offset // self.segment_size) // self.nranks

    def disp_of(self, offset: int) -> int:
        """Equation (3)."""
        self._check(offset)
        return offset % self.segment_size

    # -- derived helpers ---------------------------------------------------
    def global_segment(self, offset: int) -> int:
        """Index of the file-wide segment containing *offset*."""
        self._check(offset)
        return offset // self.segment_size

    def segment_extent(self, global_segment: int) -> Extent:
        """File byte range of one global segment."""
        if global_segment < 0:
            raise TcioError("negative segment index")
        start = global_segment * self.segment_size
        return Extent(start, start + self.segment_size)

    def owner_of_segment(self, global_segment: int) -> int:
        """Equation (1) applied to a whole segment index."""
        return global_segment % self.nranks

    def slot_of_segment(self, global_segment: int) -> int:
        """Equation (2) applied to a whole segment index."""
        return global_segment // self.nranks

    def file_offset(self, rank: int, slot: int, disp: int) -> int:
        """Inverse mapping: (ID_rank, ID_segment, DISP) -> file offset."""
        if not (0 <= rank < self.nranks):
            raise TcioError(f"rank {rank} outside 0..{self.nranks - 1}")
        if slot < 0 or not (0 <= disp < self.segment_size):
            raise TcioError(f"bad (slot={slot}, disp={disp})")
        return (slot * self.nranks + rank) * self.segment_size + disp

    def locate(self, offset: int, length: int) -> Iterator[BlockLocation]:
        """Split ``[offset, offset+length)`` at segment boundaries and map
        each piece (the subdivision rule: "If a combined data block were
        larger than the size of one level-2 buffer segment, it has to be
        subdivided and placed in different segments")."""
        if length < 0:
            raise TcioError("negative block length")
        pos = offset
        end = offset + length
        while pos < end:
            gseg = self.global_segment(pos)
            seg_end = (gseg + 1) * self.segment_size
            take = min(end, seg_end) - pos
            yield BlockLocation(
                rank=gseg % self.nranks,
                segment=gseg // self.nranks,
                disp=pos % self.segment_size,
                length=take,
            )
            pos += take

    def _check(self, offset: int) -> None:
        if offset < 0:
            raise TcioError(f"negative file offset {offset}")
