"""The level-1 buffer: per-process combining of small sequential blocks.

One reusable buffer, exactly one segment wide, aligned with whichever
level-2 segment the current writes (or recorded reads) fall into. Write
blocks land in the buffer at their displacement; the block list is kept
merged so a flush ships the fewest possible indexed blocks. For reads the
buffer stores *requests* (lazy loading): destination, length, displacement.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional

from repro.util.errors import TcioError


@dataclass
class PendingRead:
    """One recorded (not yet loaded) read: lazy-loading bookkeeping.

    ``dest`` is the caller's writable buffer; ``dest_offset`` where the
    bytes go — the in-memory "address" the paper's library retains.
    """

    dest: memoryview
    dest_offset: int
    file_offset: int
    length: int


class Level1Buffer:
    """The write-side combining buffer (one per TCIO handle)."""

    def __init__(self, segment_size: int):
        if segment_size < 1:
            raise TcioError("segment size must be positive")
        self.segment_size = segment_size
        # A bytearray, not a numpy array: the hot path copies blocks of a
        # few bytes each, where buffer-protocol slice assignment is several
        # times cheaper than np.frombuffer + fancy indexing.
        self.data = bytearray(segment_size)
        self.aligned_segment: Optional[int] = None  # global segment index
        self._blocks: list[tuple[int, int]] = []  # merged (disp, length)

    @property
    def empty(self) -> bool:
        """Whether nothing is buffered/recorded."""
        return not self._blocks

    @property
    def blocks(self) -> list[tuple[int, int]]:
        """Merged (disp, length) blocks currently buffered."""
        return list(self._blocks)

    @property
    def buffered_bytes(self) -> int:
        """Total bytes currently buffered."""
        return sum(length for _, length in self._blocks)

    def accepts(self, global_segment: int) -> bool:
        """Can a block of this segment be placed without flushing first?"""
        return self.aligned_segment is None or self.aligned_segment == global_segment

    def align(self, global_segment: int) -> None:
        """Align the (empty) buffer with a level-2 segment."""
        if not self.empty:
            raise TcioError("cannot realign a non-empty level-1 buffer")
        self.aligned_segment = global_segment

    def place(self, disp: int, payload: memoryview | bytes) -> None:
        """Copy one block into the buffer at its segment displacement."""
        length = len(payload)
        if self.aligned_segment is None:
            raise TcioError("level-1 buffer is not aligned to a segment")
        if disp < 0 or disp + length > self.segment_size:
            raise TcioError(
                f"block [{disp}, +{length}) outside segment of {self.segment_size}"
            )
        self.data[disp : disp + length] = payload
        self._insert_block(disp, length)

    def _insert_block(self, disp: int, length: int) -> None:
        """Keep the block list sorted and merged (overlaps coalesce).

        Bisect insertion with a local splice: O(log n) to find the slot
        plus one C-level list splice, instead of rebuilding the whole
        merged list per insert — the strided write patterns of Fig. 2
        grow hundreds of disjoint blocks per segment, which made the
        rebuild the simulator's hottest rank-side function.
        """
        if length == 0:
            return
        blocks = self._blocks
        lo, hi = disp, disp + length
        i = bisect_left(blocks, (lo,))
        # A left neighbor that touches [lo, hi) joins the merge window.
        if i > 0 and blocks[i - 1][0] + blocks[i - 1][1] >= lo:
            i -= 1
            lo = blocks[i][0]
        # Absorb every following block that starts inside (or adjacent to)
        # the window, widening it as overlapping tails extend past hi.
        j = i
        n = len(blocks)
        while j < n and blocks[j][0] <= hi:
            b_hi = blocks[j][0] + blocks[j][1]
            if b_hi > hi:
                hi = b_hi
            j += 1
        blocks[i:j] = [(lo, hi - lo)]

    def take(self) -> tuple[int, list[tuple[int, int, bytes]]]:
        """Drain the buffer for a flush.

        Returns ``(global_segment, [(disp, length, payload), ...])`` and
        leaves the buffer empty and unaligned (reusable).
        """
        if self.aligned_segment is None:
            raise TcioError("flush of an unaligned level-1 buffer")
        segment = self.aligned_segment
        view = memoryview(self.data)
        blocks = [
            (disp, length, bytes(view[disp : disp + length]))
            for disp, length in self._blocks
        ]
        view.release()
        self._blocks = []
        self.aligned_segment = None
        return segment, blocks


class ReadLog:
    """Recorded lazy reads, grouped for a fetch.

    Tracks the file-domain span of pending requests: the paper triggers
    real loading "when the file domain of cached reads exceeds the size of
    the level-1 buffer".
    """

    def __init__(self, segment_size: int):
        self.segment_size = segment_size
        self.pending: list[PendingRead] = []
        self._lo: Optional[int] = None
        self._hi: Optional[int] = None

    @property
    def empty(self) -> bool:
        """Whether no lazy reads are pending."""
        return not self.pending

    @property
    def domain_span(self) -> int:
        """File-domain span of the pending reads."""
        if self._lo is None or self._hi is None:
            return 0
        return self._hi - self._lo

    def record(self, read: PendingRead) -> None:
        """Append one lazy read and widen the pending domain."""
        self.pending.append(read)
        lo, hi = read.file_offset, read.file_offset + read.length
        self._lo = lo if self._lo is None else min(self._lo, lo)
        self._hi = hi if self._hi is None else max(self._hi, hi)

    def overflows_with(self, file_offset: int, length: int) -> bool:
        """Would recording this read push the domain past one level-1?"""
        if self._lo is None:
            return False
        lo = min(self._lo, file_offset)
        hi = max(self._hi or 0, file_offset + length)
        return hi - lo > self.segment_size

    def drain(self) -> list[PendingRead]:
        """Return and clear all pending reads."""
        out, self.pending = self.pending, []
        self._lo = self._hi = None
        return out
