"""The level-1 buffer: per-process combining of small sequential blocks.

One reusable buffer, exactly one segment wide, aligned with whichever
level-2 segment the current writes (or recorded reads) fall into. Write
blocks land in the buffer at their displacement; the block list is kept
merged so a flush ships the fewest possible indexed blocks. For reads the
buffer stores *requests* (lazy loading): destination, length, displacement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.util.errors import TcioError


@dataclass
class PendingRead:
    """One recorded (not yet loaded) read: lazy-loading bookkeeping.

    ``dest`` is the caller's writable buffer; ``dest_offset`` where the
    bytes go — the in-memory "address" the paper's library retains.
    """

    dest: memoryview
    dest_offset: int
    file_offset: int
    length: int


class Level1Buffer:
    """The write-side combining buffer (one per TCIO handle)."""

    def __init__(self, segment_size: int):
        if segment_size < 1:
            raise TcioError("segment size must be positive")
        self.segment_size = segment_size
        self.data = np.zeros(segment_size, dtype=np.uint8)
        self.aligned_segment: Optional[int] = None  # global segment index
        self._blocks: list[tuple[int, int]] = []  # merged (disp, length)

    @property
    def empty(self) -> bool:
        """Whether nothing is buffered/recorded."""
        return not self._blocks

    @property
    def blocks(self) -> list[tuple[int, int]]:
        """Merged (disp, length) blocks currently buffered."""
        return list(self._blocks)

    @property
    def buffered_bytes(self) -> int:
        """Total bytes currently buffered."""
        return sum(length for _, length in self._blocks)

    def accepts(self, global_segment: int) -> bool:
        """Can a block of this segment be placed without flushing first?"""
        return self.aligned_segment is None or self.aligned_segment == global_segment

    def align(self, global_segment: int) -> None:
        """Align the (empty) buffer with a level-2 segment."""
        if not self.empty:
            raise TcioError("cannot realign a non-empty level-1 buffer")
        self.aligned_segment = global_segment

    def place(self, disp: int, payload: memoryview | bytes) -> None:
        """Copy one block into the buffer at its segment displacement."""
        length = len(payload)
        if self.aligned_segment is None:
            raise TcioError("level-1 buffer is not aligned to a segment")
        if disp < 0 or disp + length > self.segment_size:
            raise TcioError(
                f"block [{disp}, +{length}) outside segment of {self.segment_size}"
            )
        self.data[disp : disp + length] = np.frombuffer(payload, dtype=np.uint8)
        self._insert_block(disp, length)

    def _insert_block(self, disp: int, length: int) -> None:
        """Keep the block list sorted and merged (overlaps coalesce)."""
        if length == 0:
            return
        blocks = self._blocks
        lo, hi = disp, disp + length
        out: list[tuple[int, int]] = []
        placed = False
        for b_lo, b_len in blocks:
            b_hi = b_lo + b_len
            if b_hi < lo and not placed:
                out.append((b_lo, b_len))
            elif hi < b_lo:
                if not placed:
                    out.append((lo, hi - lo))
                    placed = True
                out.append((b_lo, b_len))
            else:  # touching or overlapping: merge into the pending block
                lo = min(lo, b_lo)
                hi = max(hi, b_hi)
        if not placed:
            out.append((lo, hi - lo))
        self._blocks = out

    def take(self) -> tuple[int, list[tuple[int, int, bytes]]]:
        """Drain the buffer for a flush.

        Returns ``(global_segment, [(disp, length, payload), ...])`` and
        leaves the buffer empty and unaligned (reusable).
        """
        if self.aligned_segment is None:
            raise TcioError("flush of an unaligned level-1 buffer")
        segment = self.aligned_segment
        blocks = [
            (disp, length, self.data[disp : disp + length].tobytes())
            for disp, length in self._blocks
        ]
        self._blocks = []
        self.aligned_segment = None
        return segment, blocks


class ReadLog:
    """Recorded lazy reads, grouped for a fetch.

    Tracks the file-domain span of pending requests: the paper triggers
    real loading "when the file domain of cached reads exceeds the size of
    the level-1 buffer".
    """

    def __init__(self, segment_size: int):
        self.segment_size = segment_size
        self.pending: list[PendingRead] = []
        self._lo: Optional[int] = None
        self._hi: Optional[int] = None

    @property
    def empty(self) -> bool:
        """Whether no lazy reads are pending."""
        return not self.pending

    @property
    def domain_span(self) -> int:
        """File-domain span of the pending reads."""
        if self._lo is None or self._hi is None:
            return 0
        return self._hi - self._lo

    def record(self, read: PendingRead) -> None:
        """Append one lazy read and widen the pending domain."""
        self.pending.append(read)
        lo, hi = read.file_offset, read.file_offset + read.length
        self._lo = lo if self._lo is None else min(self._lo, lo)
        self._hi = hi if self._hi is None else max(self._hi, hi)

    def overflows_with(self, file_offset: int, length: int) -> bool:
        """Would recording this read push the domain past one level-1?"""
        if self._lo is None:
            return False
        lo = min(self._lo, file_offset)
        hi = max(self._hi or 0, file_offset + length)
        return hi - lo > self.segment_size

    def drain(self) -> list[PendingRead]:
        """Return and clear all pending reads."""
        out, self.pending = self.pending, []
        self._lo = self._hi = None
        return out
