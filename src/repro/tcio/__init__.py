"""TCIO: Transparent Collective I/O — the paper's contribution.

A user-level library giving parallel applications POSIX-like I/O calls
(``tcio_open``, ``tcio_write[_at]``, ``tcio_read[_at]``, ``tcio_seek``,
``tcio_flush``, ``tcio_fetch``, ``tcio_close``; Program 1) while performing
collective-I/O optimization transparently:

* a private **level-1 buffer** per process combines the small blocks of
  sequential accesses; it is exactly one level-2 segment wide and aligned
  to the segment its blocks fall in;
* a shared **level-2 buffer**, partitioned into equal segments mapped
  round-robin over ranks by logical file offset (equations (1)–(3)),
  rearranges the requests of different processes into file order;
* level-1 ↔ level-2 movement uses **one-sided communication** under the
  lock-request paradigm (``MPI_Win_lock``/``unlock``; never a fence, which
  would be collective), with ``MPI_Type_indexed`` combining so one flush is
  one network transfer;
* reads are **lazy**: calls record (destination, length, offset) and data
  moves on ``tcio_fetch``, on level-1 domain overflow, or at close.
"""

from repro.tcio.params import TcioConfig
from repro.tcio.mapping import SegmentMapping
from repro.tcio.file import (
    TcioFile,
    tcio_open,
    tcio_write,
    tcio_write_at,
    tcio_read,
    tcio_read_at,
    tcio_seek,
    tcio_flush,
    tcio_fetch,
    tcio_close,
    TCIO_RDONLY,
    TCIO_WRONLY,
    SEEK_SET,
    SEEK_CUR,
    SEEK_END,
)
from repro.tcio.stats import TcioStats
from repro.tcio.checkpoint import save_checkpoint, load_checkpoint

__all__ = [
    "TcioConfig",
    "SegmentMapping",
    "TcioFile",
    "TcioStats",
    "save_checkpoint",
    "load_checkpoint",
    "tcio_open",
    "tcio_write",
    "tcio_write_at",
    "tcio_read",
    "tcio_read_at",
    "tcio_seek",
    "tcio_flush",
    "tcio_fetch",
    "tcio_close",
    "TCIO_RDONLY",
    "TCIO_WRONLY",
    "SEEK_SET",
    "SEEK_CUR",
    "SEEK_END",
]
