"""A small checkpoint convenience layer on top of TCIO.

What downstream applications usually want is not raw offsets but "save
these named arrays collectively, restore them later". This helper packs a
rank's named numpy arrays into a self-describing region of one shared
checkpoint file through plain TCIO calls — one more demonstration that the
transparent API composes without file views or combine buffers.

Layout::

    [int64 nranks][int64 region_size per rank...]      # directory
    [rank 0 region][rank 1 region]...                  # regions

Each region: ``[int32 narrays]`` then per array ``[int32 name_len][name]
[int32 ndim][int64 shape...][int32 dtype_len][dtype][payload]``.
"""

from __future__ import annotations

import struct
from typing import Mapping

import numpy as np

from repro.simmpi import collectives
from repro.simmpi.mpi import RankEnv
from repro.tcio.file import TCIO_RDONLY, TCIO_WRONLY, TcioFile
from repro.tcio.params import TcioConfig
from repro.util.errors import TcioError

_DIR_ENTRY = 8


def _encode_region(arrays: Mapping[str, np.ndarray]) -> bytes:
    out = bytearray(struct.pack("<i", len(arrays)))
    for name, arr in arrays.items():
        # note: tobytes() already yields C-order bytes for any layout, and
        # ascontiguousarray would silently promote 0-d arrays to 1-d
        arr = np.asarray(arr)
        name_b = name.encode("utf-8")
        dtype_b = arr.dtype.str.encode("ascii")
        out += struct.pack("<i", len(name_b)) + name_b
        out += struct.pack("<i", arr.ndim)
        out += struct.pack(f"<{arr.ndim}q", *arr.shape) if arr.ndim else b""
        out += struct.pack("<i", len(dtype_b)) + dtype_b
        out += arr.tobytes()
    return bytes(out)


def _decode_region(blob: bytes) -> dict[str, np.ndarray]:
    pos = 0

    def take(fmt: str):
        nonlocal pos
        size = struct.calcsize(fmt)
        vals = struct.unpack_from(fmt, blob, pos)
        pos += size
        return vals

    (narrays,) = take("<i")
    out: dict[str, np.ndarray] = {}
    for _ in range(narrays):
        (name_len,) = take("<i")
        name = blob[pos : pos + name_len].decode("utf-8")
        pos += name_len
        (ndim,) = take("<i")
        shape = take(f"<{ndim}q") if ndim else ()
        (dtype_len,) = take("<i")
        dtype = np.dtype(blob[pos : pos + dtype_len].decode("ascii"))
        pos += dtype_len
        count = int(np.prod(shape)) if shape else 1
        nbytes = count * dtype.itemsize
        arr = np.frombuffer(blob[pos : pos + nbytes], dtype=dtype).reshape(shape)
        pos += nbytes
        out[name] = arr.copy()
    return out


def save_checkpoint(
    env: RankEnv, name: str, arrays: Mapping[str, np.ndarray]
):
    """Collectively write each rank's named arrays to one shared file.

    Coroutine; returns the checkpoint's total size in bytes.
    """
    region = _encode_region(arrays)
    sizes = yield from collectives.allgather(env.comm, len(region))
    header = struct.pack("<q", env.size) + struct.pack(f"<{env.size}q", *sizes)
    total = len(header) + sum(sizes)

    stripe = env.pfs.spec.stripe_size
    cfg = TcioConfig.sized_for(max(total, stripe), env.size, stripe)
    fh = yield from TcioFile.open(env, name, TCIO_WRONLY, cfg)
    if env.rank == 0:
        yield from fh.write_at(0, header)
    offset = len(header) + sum(sizes[: env.rank])
    yield from fh.write_at(offset, region)
    yield from fh.close()
    return total


def load_checkpoint(env: RankEnv, name: str):
    """Collectively read back this rank's arrays from a checkpoint file.

    Coroutine. The restoring job may use a different process count only if it matches
    the saver's (each region belongs to one saving rank); a mismatch raises
    TcioError with both counts.
    """
    pfs_size = env.pfs.lookup(name).size
    stripe = env.pfs.spec.stripe_size
    cfg = TcioConfig.sized_for(max(pfs_size, stripe), env.size, stripe)
    fh = yield from TcioFile.open(env, name, TCIO_RDONLY, cfg)

    if pfs_size < _DIR_ENTRY:
        yield from fh.close()
        raise TcioError(
            f"checkpoint {name!r} is truncated: {pfs_size} bytes, but the "
            f"rank-count header alone needs {_DIR_ENTRY} (offset 0)"
        )
    head = bytearray(_DIR_ENTRY)
    yield from fh.read_at(0, head)
    yield from fh.fetch()
    (nranks,) = struct.unpack("<q", bytes(head))
    if nranks < 1 or _DIR_ENTRY * (1 + nranks) > pfs_size:
        yield from fh.close()
        raise TcioError(
            f"checkpoint {name!r} header is corrupt: rank count {nranks} at "
            f"offset 0 implies a {_DIR_ENTRY * (1 + max(nranks, 0))}-byte "
            f"directory, file holds {pfs_size} bytes"
        )
    if nranks != env.size:
        yield from fh.close()
        raise TcioError(
            f"checkpoint was saved by {nranks} ranks, restoring with {env.size}"
        )
    directory = bytearray(_DIR_ENTRY * nranks)
    yield from fh.read_at(_DIR_ENTRY, directory)
    yield from fh.fetch()
    sizes = list(struct.unpack(f"<{nranks}q", bytes(directory)))
    body = _DIR_ENTRY * (1 + nranks)
    for saver, size in enumerate(sizes):
        entry_off = _DIR_ENTRY * (1 + saver)
        if size < 0:
            yield from fh.close()
            raise TcioError(
                f"checkpoint {name!r} directory is corrupt: rank {saver}'s "
                f"region size {size} at offset {entry_off} is negative"
            )
    if body + sum(sizes) > pfs_size:
        yield from fh.close()
        raise TcioError(
            f"checkpoint {name!r} region table is truncated: directory "
            f"(offsets 0..{body}) promises {sum(sizes)} region bytes, file "
            f"holds {pfs_size - body} past the directory"
        )

    offset = body + sum(sizes[: env.rank])
    region = bytearray(sizes[env.rank])
    yield from fh.read_at(offset, region)
    yield from fh.fetch()
    yield from fh.close()
    return _decode_region(bytes(region))
