"""The level-2 buffer: the shared, segment-partitioned staging area.

Each rank exposes ``segments_per_process`` segment slots through an RMA
window; global file segment ``g`` lives on rank ``g % P`` at slot
``g // P`` (equations (1)-(3)). Level-1 flushes arrive as one indexed
one-sided Put per flush; lazy reads are served with one-sided Gets after a
reader-loads-and-caches protocol fills the owning slot from storage.

A host-side :class:`SegmentDirectory` (shared across ranks through
``world.shared``) tracks which global segments are dirty (hold write data)
or loaded (hold file data). In the C library this metadata rides inside the
window itself; keeping it host-side is a simulation shortcut that does not
change any charged cost — the flag bytes would travel inside the same
transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.obs.spans import NULL_TRACER, Tracer
from repro.sim.api import run_coroutine
from repro.sim.engine import active_process
from repro.sim.sync import SimEvent
from repro.simmpi.collectives import barrier
from repro.simmpi.comm import Communicator
from repro.simmpi.rma import LOCK_EXCLUSIVE, LOCK_SHARED, Window
from repro.tcio.mapping import SegmentMapping
from repro.tcio.stats import TcioStats
from repro.util.errors import RetryBudgetExceeded, RmaTransientError, TcioError


@dataclass
class SegmentDirectory:
    """Shared per-file metadata about level-2 segment contents."""

    dirty: set[int] = field(default_factory=set)  # global segments with writes
    loaded: set[int] = field(default_factory=set)  # global segments with file data
    loading: dict[int, SimEvent] = field(default_factory=dict)
    eof: int = 0  # high-water mark of written offsets (all ranks)
    #: Degradation state (fault recovery): segments whose owner was
    #: unreachable past the retry budget. ``direct`` segments bypass
    #: level 2 on reads (every rank goes straight to the PFS);
    #: ``fallback_ranges[g]`` lists (start, stop) byte ranges within
    #: segment *g* that some rank already wrote directly to the PFS, so
    #: the owner's whole-segment writeback must skip them.
    direct: set[int] = field(default_factory=set)
    fallback_ranges: dict[int, list[tuple[int, int]]] = field(default_factory=dict)
    #: Provenance of deposited write data: ``deposited[g]`` lists
    #: ``(disp, length, src_rank)`` extents that *other* ranks pushed into
    #: segment *g*'s owner slot. Crash tooling uses it to tell exactly
    #: whose bytes sat in a dead rank's volatile memory, and the fallback
    #: path checks it to report (not silently lose) data at risk.
    deposited: dict[int, list[tuple[int, int, int]]] = field(default_factory=dict)
    #: Epoched-durability state (``journal="epoch"``): the last epoch whose
    #: commit mark landed in the PFS, and the segments already journaled +
    #: written back by an earlier epoch (so later flushes skip them unless
    #: they get dirtied again).
    committed_epoch: int = 0
    flushed: set[int] = field(default_factory=set)
    #: Geometry mirror for offline crash tooling (set at collective open).
    segment_size: int = 0
    nranks: int = 0


class Level2Buffer:
    """One rank's slice of the level-2 buffer plus its transfer engine."""

    def __init__(
        self,
        comm: Communicator,
        mapping: SegmentMapping,
        segments_per_process: int,
        directory: SegmentDirectory,
        stats: TcioStats,
        *,
        use_rma: bool = True,
        combine_indexed: bool = True,
        tracer: Optional[Tracer] = None,
    ):
        self.comm = comm
        self.rank = comm.rank
        self.mapping = mapping
        self.segment_size = mapping.segment_size
        self.segments_per_process = segments_per_process
        self.directory = directory
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.use_rma = use_rma
        self.combine_indexed = combine_indexed
        self.capacity = segments_per_process * self.segment_size
        self.data = np.zeros(self.capacity, dtype=np.uint8)
        self.window = Window(comm, self.data)
        self.faults = getattr(comm.world, "faults", None)

    @classmethod
    def create(
        cls,
        comm: Communicator,
        mapping: SegmentMapping,
        segments_per_process: int,
        directory: SegmentDirectory,
        stats: TcioStats,
        *,
        use_rma: bool = True,
        combine_indexed: bool = True,
        tracer: Optional[Tracer] = None,
    ):
        """Collectively construct one rank's level-2 slice (coroutine).

        Window registration itself is local; the trailing barrier makes
        creation collective, so every rank's window exists before any
        one-sided access targets it.
        """
        buf = cls(
            comm,
            mapping,
            segments_per_process,
            directory,
            stats,
            use_rma=use_rma,
            combine_indexed=combine_indexed,
            tracer=tracer,
        )
        yield from barrier(comm)
        return buf

    def _retry_rma(self, what: str, op):
        """Drive one RMA sequence (coroutine), retrying transient failures
        when faults are armed (RetryBudgetExceeded propagates to the
        recovery layer in tcio/file.py)."""
        if self.faults is None:
            return (yield from run_coroutine(op(0)))
        return (
            yield from self.faults.retry_call(
                op, retry_on=RmaTransientError, what=what
            )
        )

    # ------------------------------------------------------------------
    # placement helpers
    # ------------------------------------------------------------------
    def _slot_base(self, global_segment: int) -> int:
        slot = self.mapping.slot_of_segment(global_segment)
        if slot >= self.segments_per_process:
            raise TcioError(
                f"segment {global_segment} needs slot {slot}, but the level-2 "
                f"buffer holds {self.segments_per_process} segments per process "
                "(raise TcioConfig.segments_per_process)"
            )
        return slot * self.segment_size

    def local_slot(self, global_segment: int) -> np.ndarray:
        """This rank's in-memory view of a segment it owns."""
        if self.mapping.owner_of_segment(global_segment) != self.rank:
            raise TcioError(f"rank {self.rank} does not own segment {global_segment}")
        base = self._slot_base(global_segment)
        return self.data[base : base + self.segment_size]

    # ------------------------------------------------------------------
    # write path: level-1 flush -> owner's slot
    # ------------------------------------------------------------------
    def push_blocks(
        self, global_segment: int, blocks: list[tuple[int, int, bytes]]
    ):
        """Move one drained level-1 buffer into the owning slot (coroutine).

        ``blocks`` is ``[(disp, length, payload), ...]`` within the segment.
        """
        if not blocks:
            return
        owner = self.mapping.owner_of_segment(global_segment)
        base = self._slot_base(global_segment)
        nbytes = sum(length for _, length, _ in blocks)
        if owner == self.rank:
            slot = self.local_slot(global_segment)
            for disp, length, payload in blocks:
                slot[disp : disp + length] = np.frombuffer(payload, dtype=np.uint8)
            self.stats.inc("local_flushes")
        else:
            with self.tracer.span(
                "tcio.push", segment=global_segment, target=owner, bytes=nbytes
            ):
                targets = [
                    (base + disp, payload) for disp, _length, payload in blocks
                ]
                if not self.use_rma:
                    # Ablation: pay two-sided receive-side matching costs.
                    finish = self.comm.world.charge_matching(owner)
                    now = self.comm.world.engine.now
                    if finish > now:
                        yield from active_process().sleep(finish - now)

                def attempt(_attempt: int):
                    yield from self.window.lock(owner, LOCK_EXCLUSIVE)
                    try:
                        if self.combine_indexed:
                            self.window.put_indexed(targets, owner)
                        else:
                            # Ablation: one Put per block ("a large number of
                            # network connections, which would in turn degrade
                            # performance").
                            for off, payload in targets:
                                self.window.put(payload, owner, off)
                    finally:
                        self.window.unlock(owner)

                yield from self._retry_rma(
                    f"tcio.push(seg={global_segment})", attempt
                )
            self.stats.inc("remote_flushes")
            self.stats.inc("put_blocks", len(blocks))
        self.stats.inc("flushed_bytes", nbytes)
        d = self.directory
        d.dirty.add(global_segment)
        d.flushed.discard(global_segment)  # re-dirtied: next epoch re-journals
        record = d.deposited.setdefault(global_segment, [])
        for disp, length, _payload in blocks:
            record.append((disp, length, self.rank))

    def push_window_blocks(
        self, owner: int, blocks: list[tuple[int, bytes]]
    ):
        """Leader drain: one indexed Put of pre-coalesced window blocks
        (coroutine).

        ``blocks`` is ``[(window offset, payload), ...]`` already merged
        across this node's depositors (``repro.topo``) — the hierarchical
        counterpart of :meth:`push_blocks`, shipping many ranks' flushes
        to *owner* in a single RMA sequence. Same retry semantics:
        :class:`RetryBudgetExceeded` propagates to the caller's fallback.
        """
        if not blocks:
            return
        nbytes = sum(len(payload) for _, payload in blocks)
        if owner == self.rank:
            for off, payload in blocks:
                self.data[off : off + len(payload)] = np.frombuffer(
                    payload, dtype=np.uint8
                )
            self.stats.inc("local_flushes")
        else:
            with self.tracer.span(
                "topo.drain", target=owner, bytes=nbytes, blocks=len(blocks)
            ):

                def attempt(_attempt: int):
                    yield from self.window.lock(owner, LOCK_EXCLUSIVE)
                    try:
                        self.window.put_indexed(blocks, owner)
                    finally:
                        self.window.unlock(owner)

                yield from self._retry_rma(f"topo.drain(owner={owner})", attempt)
            self.stats.inc("remote_flushes")
            self.stats.inc("put_blocks", len(blocks))
        self.stats.inc("flushed_bytes", nbytes)
        # Provenance: map each window block back to its global segment
        # (slot s of rank o holds segment s * P + o). Staged blocks never
        # cross a slot boundary (staging coalesces per segment).
        d = self.directory
        nprocs = self.comm.size
        for off, payload in blocks:
            slot, disp = divmod(off, self.segment_size)
            g = slot * nprocs + owner
            d.flushed.discard(g)
            d.deposited.setdefault(g, []).append((disp, len(payload), self.rank))

    # ------------------------------------------------------------------
    # read path: reader-loads-and-caches, then one-sided gets
    # ------------------------------------------------------------------
    def ensure_loaded(self, global_segment: int, pfs_read):
        """Make sure the segment's file bytes sit in its owner's slot
        (coroutine).

        ``pfs_read(extent)`` is the caller's storage reader — a coroutine
        (or plain callable) yielding the bytes, charged to the calling
        rank. Returns the raw segment
        bytes when this call performed the load (the loader can then serve
        itself without a Get); returns None when the slot was already (or
        concurrently) loaded.
        """
        d = self.directory
        if (
            global_segment in d.loaded
            or global_segment in d.dirty
            or global_segment in d.direct
        ):
            return None
        event = d.loading.get(global_segment)
        if event is not None:
            # Another rank is loading; data is ready after the fire.
            yield from event.wait()
            return None
        event = SimEvent(f"tcio.load(seg={global_segment})", sticky=True)
        d.loading[global_segment] = event
        extent = self.mapping.segment_extent(global_segment)
        with self.tracer.span(
            "tcio.segment_load", segment=global_segment, bytes=extent.length
        ):
            payload = yield from run_coroutine(pfs_read(extent))
            owner = self.mapping.owner_of_segment(global_segment)
            base = self._slot_base(global_segment)
            degraded = False
            if owner == self.rank:
                self.local_slot(global_segment)[: len(payload)] = np.frombuffer(
                    payload, dtype=np.uint8
                )
            else:

                def attempt(_attempt: int):
                    yield from self.window.lock(owner, LOCK_EXCLUSIVE)
                    try:
                        self.window.put(payload, owner, base)
                    finally:
                        self.window.unlock(owner)

                try:
                    yield from self._retry_rma(
                        f"tcio.load(seg={global_segment})", attempt
                    )
                except RetryBudgetExceeded:
                    # The owner is unreachable: don't cache in level 2 at
                    # all — mark the segment direct so every reader goes
                    # straight to the PFS (the data IS in the file).
                    degraded = True
            # The loaded flag may only become visible once the put has
            # landed; unlock charges the drain lazily, so settle before
            # publishing.
            yield from active_process().settle()
        if degraded:
            d.direct.add(global_segment)
            if self.faults is not None:
                self.faults.note_fallback(
                    "tcio.load", segment=global_segment, owner=owner
                )
        else:
            d.loaded.add(global_segment)
        del d.loading[global_segment]
        event.fire()
        self.stats.inc("segment_loads")
        return payload

    def pull_blocks(
        self, global_segment: int, ranges: list[tuple[int, int]]
    ):
        """Fetch ``(disp, length)`` ranges of a resident segment (coroutine).

        Local slots are served by memcpy; remote ones with a single
        indexed one-sided Get under a shared lock.
        """
        owner = self.mapping.owner_of_segment(global_segment)
        base = self._slot_base(global_segment)
        if owner == self.rank:
            slot = self.local_slot(global_segment)
            out = [(disp, slot[disp : disp + ln].tobytes()) for disp, ln in ranges]
            self.stats.inc("local_gets", len(ranges))
            return out
        nbytes = sum(ln for _, ln in ranges)
        with self.tracer.span(
            "tcio.pull", segment=global_segment, target=owner, bytes=nbytes
        ):

            def attempt(_attempt: int):
                yield from self.window.lock(owner, LOCK_SHARED)
                try:
                    if self.combine_indexed:
                        return (
                            yield from self.window.get_indexed(
                                [(base + disp, ln) for disp, ln in ranges], owner
                            )
                        )
                    out = []
                    for disp, ln in ranges:
                        data = yield from self.window.get(owner, base + disp, ln)
                        out.append((base + disp, data))
                    return out
                finally:
                    self.window.unlock(owner)

            got = yield from self._retry_rma(
                f"tcio.pull(seg={global_segment})", attempt
            )
        self.stats.inc("get_blocks", len(ranges))
        self.stats.inc("fetched_bytes", nbytes)
        return [(off - base, data) for off, data in got]

    # ------------------------------------------------------------------
    def owned_dirty_segments(self) -> list[int]:
        """Global segments this rank must write back at close, in order."""
        return sorted(
            g
            for g in self.directory.dirty
            if self.mapping.owner_of_segment(g) == self.rank
        )
