"""The TCIO handle and the Program-1 API.

::

    tcio_file * tcio_open(char * fname, int mode)
    tcio_write   (fh, data, count, type)
    tcio_write_at(fh, offset, data, count, type)
    tcio_read    (fh, data, count, type)
    tcio_read_at (fh, offset, data, count, type)
    tcio_seek    (fh, offset, whence)
    tcio_flush   (fh)        # collective: level-1 -> level-2, MPI_Barrier
    tcio_fetch   (fh)        # load recorded lazy reads into their targets
    tcio_close   (fh)        # collective: barrier, level-2 -> file system

Write calls combine into the level-1 buffer and spill to the level-2
buffer (one-sided, indexed) when the access leaves the aligned segment;
read calls record (address, length, offset) and load lazily. ``tcio_close``
synchronizes, then each rank writes the dirty segments *it owns* to the
file system as large aligned accesses — the collective-I/O effect, achieved
without file views or application-level combine buffers.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

import numpy as np

from repro.faults.retry import pfs_retry
from repro.memsim.memory import Allocation
from repro.obs.spans import NULL_TRACER
from repro.sim.api import run_coroutine
from repro.sim.engine import active_process
from repro.simmpi import collectives
from repro.simmpi.datatypes import BYTE, Datatype
from repro.simmpi.mpi import RankEnv
from repro.tcio.level1 import Level1Buffer, PendingRead, ReadLog
from repro.tcio.level2 import Level2Buffer, SegmentDirectory
from repro.tcio.mapping import SegmentMapping
from repro.tcio.params import TcioConfig
from repro.tcio.stats import TcioStats
from repro.topo import (
    NodeTopology,
    StagingBuffer,
    charge_staging_copy,
    coalesce_blocks,
    split_by_node,
)
from repro.util.errors import (
    RankUnreachable,
    RetryBudgetExceeded,
    RmaTransientError,
    TcioError,
)
from repro.util.intervals import Extent

TCIO_RDONLY = 0x1
TCIO_WRONLY = 0x2

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2

Buffer = Union[bytes, bytearray, memoryview, np.ndarray]


def _as_payload(data: Buffer, count: Optional[int], datatype: Datatype) -> bytes:
    if isinstance(data, np.ndarray):
        raw = np.ascontiguousarray(data).tobytes()
    else:
        raw = bytes(data)
    if count is not None:
        need = count * datatype.size
        if need > len(raw):
            raise TcioError(
                f"buffer of {len(raw)} bytes too small for count={count} "
                f"x {datatype.size}B elements"
            )
        raw = raw[:need]
    return raw


def _as_dest(data: Buffer) -> memoryview:
    if isinstance(data, np.ndarray):
        if not data.flags.c_contiguous:
            raise TcioError("read target must be C-contiguous")
        view = memoryview(data).cast("B")
    else:
        view = memoryview(data)
        if view.readonly:
            raise TcioError("read target is read-only")
        view = view.cast("B")
    return view


class TcioFile:
    """One rank's TCIO handle on a shared file.

    Construct with ``fh = yield from TcioFile.open(...)`` — the open is a
    collective coroutine (it barriers), so there is no plain constructor.
    """

    @classmethod
    def open(
        cls,
        env: RankEnv,
        name: str,
        mode: int,
        config: Optional[TcioConfig] = None,
        comm=None,
    ):
        """Collective open over ``comm`` (default: the world communicator).

        Coroutine: ``fh = yield from TcioFile.open(env, name, mode)``.
        Passing a sub-communicator runs this handle's collective I/O over
        just that group — ParColl-style partitioned aggregation composes
        for free (see ``examples/partitioned_groups.py``).
        """
        fh = cls.__new__(cls)
        yield from fh._open(env, name, mode, config, comm)
        return fh

    def _open(
        self,
        env: RankEnv,
        name: str,
        mode: int,
        config: Optional[TcioConfig],
        comm,
    ):
        config = config or TcioConfig()
        config.validate()
        if mode not in (TCIO_RDONLY, TCIO_WRONLY):
            raise TcioError("mode must be TCIO_RDONLY or TCIO_WRONLY")
        self.env = env
        self.name = name
        self.mode = mode
        self.config = config
        self.comm = (comm if comm is not None else env.comm).dup()
        self.stats = TcioStats()
        self._closed = False
        self._position = 0
        hub = getattr(env.world, "trace", None)
        self._tracer = hub.tracer if hub is not None else NULL_TRACER
        self._plan = getattr(env.world, "faults", None)
        #: Survive-and-complete mode (``config.ft``): rank failures at
        #: collective points shrink the communicator and complete the
        #: flush over the survivors instead of aborting.
        self._ft = bool(config.ft) and mode == TCIO_WRONLY
        #: This rank's own deposits of the current (uncommitted) epoch,
        #: ``{gseg: [(disp, payload), ...]}`` — kept so a survivor can
        #: re-deposit them after a dead segment owner's volatile slot is
        #: re-partitioned away. Cleared once the epoch commits.
        self._shadow: dict[int, list[tuple[int, bytes]]] = {}
        #: Segment owners whose RMA target stayed unreachable past the
        #: retry budget; later flushes to them skip straight to the
        #: independent-write fallback instead of burning retries again.
        self._unreachable_owners: set[int] = set()
        #: Node-aggregation state (``config.aggregation == "node"``); all
        #: None/False on the flat path or when the job spans one node.
        self._topo: Optional[NodeTopology] = None
        self._node_comm = None
        self._staging: Optional[StagingBuffer] = None
        self._leader_world = -1
        self._staging_degraded = False

        with self._tracer.span("tcio.open", file=name):
            pfs = env.pfs
            if mode == TCIO_WRONLY:
                self.pfs_file = pfs.create(name)
                if self.pfs_file.size:
                    # Write handles have fresh-file semantics: dirty segments
                    # are written back whole, so stale bytes must not survive.
                    self.pfs_file.truncate(0)
                if config.journal == "epoch":
                    # Same fresh-file semantics for the journal: records
                    # from an earlier open of this name must not replay.
                    from repro.crash.journal import commit_name, rank_journal

                    journal = pfs.create(rank_journal(name, env.rank))
                    if journal.size:
                        journal.truncate(0)
                    if self.comm.rank == 0:
                        commit = pfs.create(commit_name(name))
                        if commit.size:
                            commit.truncate(0)
            else:
                self.pfs_file = pfs.lookup(name)

            node = env.world.node_of[env.rank]
            self.client = pfs.client(node)
            segment_size = config.resolve_segment_size(
                self.pfs_file.layout.stripe_size
            )
            self.mapping = SegmentMapping(segment_size, self.comm.size)

            # Collectively shared metadata: every rank reaches this setdefault
            # inside the collective open. Opens are collective and ordered, so
            # each rank's per-name open counter agrees globally and keys one
            # fresh directory per open generation (a handle never sees stale
            # dirty/loaded state from an earlier open of the same name).
            seq_key = ("tcio-openseq", name, env.rank)  # env.rank: world rank
            gen = env.world.shared.get(seq_key, 0)
            env.world.shared[seq_key] = gen + 1
            self.directory: SegmentDirectory = env.world.shared.setdefault(
                ("tcio-dir", name, gen), SegmentDirectory()
            )
            # Geometry mirror for offline crash tooling (fsck/recover dig
            # the directory out of ``world.shared`` after an abort).
            self.directory.segment_size = segment_size
            self.directory.nranks = self.comm.size
            self._journal_pos = 0  # append offset into this rank's journal

            # Simulated memory: one level-1 buffer + this rank's level-2 share.
            memory = env.world.memory
            self._level2_alloc = memory.allocate(
                env.rank,
                config.segments_per_process * segment_size,
                "tcio.level2",
            )
            self._allocs: list[Allocation] = [
                memory.allocate(env.rank, segment_size, "tcio.level1"),
                self._level2_alloc,
            ]

            self.level1 = Level1Buffer(segment_size)
            self.readlog = ReadLog(segment_size * config.read_window_segments)
            self.level2 = yield from Level2Buffer.create(
                self.comm,
                self.mapping,
                config.segments_per_process,
                self.directory,
                self.stats,
                use_rma=config.use_rma,
                combine_indexed=config.combine_indexed,
                tracer=self._tracer,
            )
            if (
                config.aggregation == "node"
                and mode == TCIO_WRONLY
                and self.comm.size > 1
            ):
                yield from self._setup_staging(segment_size, gen)
            yield from collectives.barrier(self.comm)

    def _setup_staging(self, segment_size: int, gen: int):
        """Arm the node-aggregation drain path (coroutine;
        ``aggregation="node"``).

        One staging buffer per node, published through ``world.shared``
        and keyed by the open generation; the node's leader (lowest comm
        rank on the node) backs it with simulated memory and drains it at
        every collective point. A single-node job keeps the flat path —
        every flush is intra-node already.
        """
        topo = NodeTopology.from_comm(self.comm)
        if topo.n_nodes < 2:
            return
        self._topo = topo
        self._node_comm = yield from split_by_node(self.comm, topo)
        my_node = topo.node_of_rank(self.comm.rank)
        self._leader_world = self.comm.world_rank(topo.leader_of(my_node))
        capacity = self.config.staging_segments * segment_size
        self._staging = self.env.world.shared.setdefault(
            ("tcio-stage", self.name, gen, my_node),
            StagingBuffer(my_node, self._leader_world, capacity=capacity),
        )
        if self.env.rank == self._leader_world:
            self._allocs.append(
                self.env.world.memory.allocate(
                    self.env.rank, capacity, "topo.staging"
                )
            )

    # There is deliberately no context-manager protocol: ``close()`` is a
    # collective coroutine and ``__exit__`` cannot ``yield from``. Spell
    # the old ``with`` pattern as::
    #
    #     fh = yield from tcio_open(env, name, mode)
    #     try:
    #         ...
    #         yield from fh.close()
    #     except BaseException:
    #         fh.abort()   # local-only teardown; never deadlocks peers
    #         raise

    # ------------------------------------------------------------------
    # positioning
    # ------------------------------------------------------------------
    def seek(self, offset: int, whence: int = SEEK_SET) -> int:
        """tcio_seek: move the handle's position (SET/CUR/END)."""
        self._check_open()
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = self._position + offset
        elif whence == SEEK_END:
            base = self.pfs_file.size if self.mode == TCIO_RDONLY else self.directory.eof
            new = base + offset
        else:
            raise TcioError(f"bad seek whence {whence}")
        if new < 0:
            raise TcioError(f"seek to negative offset {new}")
        self._position = new
        return new

    def tell(self) -> int:
        """The current file position in bytes."""
        return self._position

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def write(self, data: Buffer, count: Optional[int] = None,
              datatype: Datatype = BYTE):
        """POSIX-style sequential write at the current position (coroutine)."""
        n = yield from self.write_at(self._position, data, count, datatype)
        self._position += n
        return n

    def write_at(self, offset: int, data: Buffer, count: Optional[int] = None,
                 datatype: Datatype = BYTE):
        """Write at an explicit byte offset (coroutine; pointer unmoved)."""
        self._check_open(writing=True)
        payload = _as_payload(data, count, datatype)
        if not payload:
            return 0
        length = len(payload)
        self._charge_memcpy(length)
        # Inlined mapping.locate: the same segment-boundary walk without a
        # BlockLocation allocation per piece — write_at is the simulator's
        # single hottest entry point (one call per application block).
        level1 = self.level1
        seg_size = self.mapping.segment_size
        pos = 0
        cur = offset
        end = offset + length
        while cur < end:
            gseg = cur // seg_size
            seg_end = (gseg + 1) * seg_size
            take = (end if end < seg_end else seg_end) - cur
            if level1.aligned_segment != gseg:
                if level1.aligned_segment is not None:
                    yield from self._flush_level1()
                level1.align(gseg)
            level1.place(
                cur - gseg * seg_size,
                payload if take == length else payload[pos : pos + take],
            )
            pos += take
            cur += take
        if end > self.directory.eof:
            self.directory.eof = end
        self.stats.inc("write_calls")
        self.stats.inc("written_bytes", len(payload))
        return len(payload)

    def _flush_level1(self):
        if self.level1.empty:
            self.level1.aligned_segment = None
            return
        gseg, blocks = self.level1.take()
        # Crash points bracket the deposit: before it, this rank's level-1
        # data dies with the rank; after it, the data sits in the owner's
        # volatile level-2 memory (journaling decides whether it survives).
        yield from self._crash_point("pre-deposit")
        while True:
            owner = self.mapping.owner_of_segment(gseg)
            try:
                yield from self._deposit(gseg, owner, blocks)
                break
            except RankUnreachable:
                if not self._ft:
                    raise
                # The owner (or a collective peer) died under this deposit:
                # shrink, re-partition, and retry against the new owner.
                yield from self._ft_recover()
        yield from self._crash_point("post-deposit")

    def _deposit(self, gseg: int, owner: int, blocks: list):
        if self._ft:
            self._shadow.setdefault(gseg, []).extend(
                (disp, payload) for disp, _length, payload in blocks
            )
        if (
            self._staging is not None
            and not self._staging_degraded
            and owner != self.comm.rank
            and owner not in self._unreachable_owners
            and not self._topo.same_node(owner, self.comm.rank)
        ):
            staged = yield from self._try_stage(gseg, owner, blocks)
            if staged:
                return
        if owner in self._unreachable_owners:
            yield from self._fallback_flush(gseg, blocks)
            return
        try:
            yield from self.level2.push_blocks(gseg, blocks)
        except RetryBudgetExceeded:
            # Graceful degradation: the segment owner is unreachable past
            # the retry budget, so this rank's data goes to the file
            # system directly (independent-write fallback) — the
            # collective never wedges on a dead peer.
            self._unreachable_owners.add(owner)
            yield from self._fallback_flush(gseg, blocks)

    def _crash_point(self, step: str):
        """Named crash-injection point (one attribute test when unfaulted).

        Coroutine: delivering a crash needs the victim parked, so the
        world's crash hook may block the caller momentarily.
        """
        if self._plan is not None:
            yield from run_coroutine(self.env.world.crash_point(step, self.env.rank))

    def _try_stage(self, gseg: int, owner: int, blocks: list):
        """Deposit one drained level-1 buffer into the node staging buffer.

        Returns False — and the caller takes the flat path — when the
        deposit would overflow the staging capacity, or when the node
        leader stays unreachable past the retry budget (after which the
        whole handle degrades to flat: protocol agreement with the leader
        is gone, burning more retries buys nothing).
        """
        stage = self._staging
        nbytes = sum(length for _, length, _ in blocks)
        if stage.would_overflow(nbytes):
            self._count("topo.staging.overflow", nbytes)
            return False
        self.level2._slot_base(gseg)  # capacity check before committing
        if self._plan is not None and self.env.rank != self._leader_world:
            # A deposit crosses node memory shared with the leader; treat
            # it like an RMA toward the leader for fault purposes.
            def attempt(_attempt: int) -> None:
                if self._plan.rma_fault(
                    "staging", self.env.rank, self._leader_world
                ):
                    active_process().charge(self._plan.spec.rma_fail_delay)
                    raise RmaTransientError(
                        "staging", self.env.rank, self._leader_world
                    )

            try:
                yield from self._plan.retry_call(
                    attempt,
                    retry_on=RmaTransientError,
                    what=f"topo.deposit(seg={gseg})",
                )
            except RetryBudgetExceeded:
                self._staging_degraded = True
                self._plan.note_fallback(
                    "topo.deposit", rank=self.env.rank,
                    leader=self._leader_world,
                )
                return False
        yield from charge_staging_copy(self.env.world, self.env.rank, nbytes)
        stage.deposit(
            owner,
            [(gseg, disp, payload) for disp, _length, payload in blocks],
            nbytes,
        )
        self._count("topo.deposit.bytes", nbytes)
        self._count("topo.deposit.blocks", len(blocks))
        self._observe_occupancy(stage)
        return True

    def _node_drain(self):
        """Collective staging drain: the leader ships coalesced deposits.

        Runs at every collective point (flush/close) after the local
        level-1 drain. A node barrier makes every member's deposits
        visible; then the leader issues one merged indexed RMA sequence
        per remote owner — or falls back to direct PFS writes for owners
        that stay unreachable past the retry budget.
        """
        if self._staging is None:
            return
        yield from collectives.barrier(self._node_comm)
        if self._node_comm.rank != 0:
            return
        stage = self._staging
        for owner in stage.keys():
            pieces = stage.drain(owner)
            if not pieces:
                continue
            nbytes = sum(len(payload) for _, _, payload in pieces)
            if owner in self._unreachable_owners:
                yield from self._drain_fallback(owner, pieces)
                continue
            # Leader-side pickup: reading the deposits out of node memory
            # to build the merged message is a second memcpy pass.
            yield from charge_staging_copy(self.env.world, self.env.rank, nbytes)
            win_blocks = coalesce_blocks(
                [
                    (self.level2._slot_base(g) + disp, payload)
                    for g, disp, payload in pieces
                ]
            )
            try:
                yield from self.level2.push_window_blocks(owner, win_blocks)
            except RetryBudgetExceeded:
                self._unreachable_owners.add(owner)
                if self._plan is not None:
                    self._plan.note_fallback(
                        "topo.drain", owner=owner, rank=self.env.rank
                    )
                yield from self._drain_fallback(owner, pieces)
                continue
            for g in sorted({g for g, _, _ in pieces}):
                self.directory.dirty.add(g)
            self._count("topo.drain.messages", 1)
            self._count("topo.drain.bytes", nbytes)

    def _drain_fallback(self, owner: int, pieces: list):
        """Write one owner's staged deposits straight to the PFS.

        Reuses the flat fallback machinery segment by segment, so the
        written ranges are published and the (unreachable) owner's
        writeback skips them.
        """
        by_seg: dict[int, list[tuple[int, int, bytes]]] = {}
        for g, disp, payload in pieces:
            by_seg.setdefault(g, []).append((disp, len(payload), payload))
        for g in sorted(by_seg):
            yield from self._fallback_flush(g, by_seg[g])

    def _count(self, name: str, amount: float = 0.0) -> None:
        hub = getattr(self.env.world, "trace", None)
        if hub is not None:
            hub.count(name, amount)

    def _observe_occupancy(self, stage: StagingBuffer) -> None:
        hub = getattr(self.env.world, "trace", None)
        if hub is not None:
            hub.registry.histogram("topo.staging.occupancy").observe(stage.used)

    def _fallback_flush(self, gseg: int, blocks: list):
        """Write one drained level-1 buffer straight to the PFS (coroutine).

        The written byte ranges are published in the shared directory so
        the segment owner's whole-segment writeback at close skips them
        (otherwise it would overwrite these bytes with slot zeros).
        """
        seg_start = self.mapping.segment_extent(gseg).start
        ranges = self.directory.fallback_ranges.setdefault(gseg, [])
        nbytes = sum(length for _, length, _ in blocks)
        self._warn_data_at_risk(gseg, blocks)
        with self._tracer.span(
            "tcio.fallback_flush", segment=gseg, bytes=nbytes, rank=self.env.rank
        ):
            for disp, length, payload in blocks:
                yield from pfs_retry(
                    self.env.world,
                    "tcio.fallback_flush",
                    lambda t, _off=seg_start + disp, _p=payload: self.client.write(
                        self.pfs_file, _off, _p,
                        owner=self.env.rank, lock_timeout=t,
                    ),
                )
                ranges.append((disp, disp + length))
        if self._plan is not None:
            self._plan.note_fallback("tcio.flush", segment=gseg, rank=self.env.rank)
        self.stats.inc("flushed_bytes", nbytes)

    def _warn_data_at_risk(self, gseg: int, blocks: list) -> None:
        """Detect the silent-loss hazard of degraded (fallback) flushes.

        The ranges this fallback writes directly become skip ranges for
        the owner's whole-segment writeback — including any bytes *other*
        ranks already deposited into the (unreachable) owner's slot there.
        Those deposits would silently never reach the file; count and warn
        so the loss is at least detected and attributable.
        """
        at_risk = 0
        victims: set[int] = set()
        for disp, length, src in self.directory.deposited.get(gseg, ()):
            if src == self.env.rank:
                continue
            for bdisp, blen, _payload in blocks:
                lo, hi = max(disp, bdisp), min(disp + length, bdisp + blen)
                if hi > lo:
                    at_risk += hi - lo
                    victims.add(src)
        if at_risk:
            self._count("faults.data_at_risk", at_risk)
            # On a shared PFS the alarm must say WHOSE data is at risk:
            # several tenants' fallbacks can fire in one run and an
            # unattributed warning is unactionable.
            job = self.env.world.job
            jtag = f"job {job}: " if job else ""
            warnings.warn(
                f"{jtag}tcio fallback flush of segment {gseg} overlaps "
                f"{at_risk} bytes deposited by rank(s) {sorted(victims)} "
                "into the unreachable owner's level-2 slot; those deposits "
                "will not be written back",
                RuntimeWarning,
                stacklevel=3,
            )
            if self._plan is not None:
                detail = dict(segment=gseg, bytes=at_risk, rank=self.env.rank)
                if job is not None:
                    detail["job"] = job
                self._plan.record("tcio.data_at_risk", **detail)

    # ------------------------------------------------------------------
    # reads (lazy by default)
    # ------------------------------------------------------------------
    def read(self, dest: Buffer, count: Optional[int] = None,
             datatype: Datatype = BYTE):
        """Record a sequential read into *dest* (coroutine); data lands at
        fetch time."""
        n = yield from self.read_at(self._position, dest, count, datatype)
        self._position += n
        return n

    def read_at(self, offset: int, dest: Buffer, count: Optional[int] = None,
                datatype: Datatype = BYTE):
        """Record a read at an explicit offset into *dest* (coroutine)."""
        self._check_open(reading=True)
        view = _as_dest(dest)
        nbytes = len(view) if count is None else count * datatype.size
        if nbytes > len(view):
            raise TcioError(f"read target of {len(view)} bytes < {nbytes} requested")
        if nbytes == 0:
            return 0
        if self.readlog.overflows_with(offset, nbytes):
            # "...either the file domain of cached reads exceeds the size
            # of the level-1 buffer, or the application explicitly requests"
            yield from self.fetch()
        self.readlog.record(
            PendingRead(dest=view, dest_offset=0, file_offset=offset, length=nbytes)
        )
        self.stats.inc("read_calls")
        self.stats.inc("read_bytes", nbytes)
        if not self.config.lazy_reads:
            yield from self.fetch()
        return nbytes

    def read_now(self, offset: int, nbytes: int):
        """Convenience: read + immediate fetch, returning the bytes
        (coroutine)."""
        out = bytearray(nbytes)
        yield from self.read_at(offset, out, nbytes, BYTE)
        yield from self.fetch()
        return bytes(out)

    def fetch(self):
        """tcio_fetch: satisfy every recorded read (coroutine)."""
        self._check_open(reading=True)
        pending = self.readlog.drain()
        if not pending:
            return
        self.stats.inc("fetches")
        with self._tracer.span("tcio.fetch", requests=len(pending)):
            yield from self._fetch_pending(pending)

    def _fetch_pending(self, pending: list[PendingRead]):
        # Group the requested byte ranges by global segment.
        by_segment: dict[int, list[tuple[int, int, memoryview]]] = {}
        for req in pending:
            covered = 0
            for loc in self.mapping.locate(req.file_offset, req.length):
                gseg = loc.segment * self.mapping.nranks + loc.rank
                dest_slice = req.dest[
                    req.dest_offset + covered : req.dest_offset + covered + loc.length
                ]
                by_segment.setdefault(gseg, []).append(
                    (loc.disp, loc.length, dest_slice)
                )
                covered += loc.length
        # Service order matters: if every rank walked segments in file
        # order, the whole job would convoy behind one loader per segment.
        # Each rank serves the segments it owns first (it is that data's
        # natural I/O delegator), then the rest rotated by rank, and load
        # triggering runs as a first pass that skips segments some other
        # rank is already loading — so distinct ranks drive distinct
        # storage reads concurrently.
        rank = self.env.rank
        segs = sorted(by_segment)

        def service_key(g: int) -> tuple[int, int]:
            owned = 0 if self.mapping.owner_of_segment(g) == rank else 1
            return (owned, (g + rank) % max(1, len(segs)))

        order = sorted(segs, key=service_key)
        d = self.directory
        raw_by_seg: dict[int, bytes] = {}
        for gseg in order:  # pass 1: load the segments this rank owns
            if (
                self.mapping.owner_of_segment(gseg) == rank
                and gseg not in d.loaded
                and gseg not in d.dirty
                and gseg not in d.loading
            ):
                raw = yield from self._ensure_segment(gseg)
                if raw is not None:
                    raw_by_seg[gseg] = raw
        for gseg in order:  # pass 2: serve every request
            yield from self._fetch_segment(
                gseg, by_segment[gseg], raw_by_seg.get(gseg)
            )

    def _ensure_segment(self, gseg: int):
        """Make sure *gseg* is resident in level 2 (coroutine)."""

        def pfs_read(ext: Extent):
            return (
                yield from pfs_retry(
                    self.env.world,
                    "tcio.segment_load",
                    lambda t: self.client.read(
                        self.pfs_file, ext.start, ext.length,
                        owner=self.env.rank, lock_timeout=t,
                    ),
                )
            )

        return (yield from self.level2.ensure_loaded(gseg, pfs_read))

    def _fetch_segment(
        self,
        gseg: int,
        requests: list[tuple[int, int, memoryview]],
        raw: Optional[bytes] = None,
    ):
        if raw is None and gseg not in self.directory.direct:
            raw = yield from self._ensure_segment(gseg)
        if raw is not None:
            # This rank performed the load: serve straight from the bytes
            # (works for degraded segments too — the loader has the data).
            for disp, length, dest in requests:
                dest[:] = raw[disp : disp + length]
            self._charge_memcpy(sum(ln for _, ln, _ in requests))
            return
        if gseg in self.directory.direct:
            # Degraded segment: its owner was unreachable, nothing is
            # cached in level 2 — read straight from the file system.
            yield from self._fallback_fetch(gseg, requests)
            return
        ranges = [(disp, length) for disp, length, _ in requests]
        try:
            blocks = yield from self.level2.pull_blocks(gseg, ranges)
        except RetryBudgetExceeded:
            self.directory.direct.add(gseg)
            if self._plan is not None:
                self._plan.note_fallback(
                    "tcio.fetch", segment=gseg, rank=self.env.rank
                )
            yield from self._fallback_fetch(gseg, requests)
            return
        for (disp, length, dest), (_got_disp, data) in zip(requests, blocks):
            dest[:] = data[:length]
        self._charge_memcpy(sum(ln for _, ln, _ in requests))

    def _fallback_fetch(
        self, gseg: int, requests: list[tuple[int, int, memoryview]]
    ):
        """Serve degraded-segment reads directly from the PFS (coroutine)."""
        seg_start = self.mapping.segment_extent(gseg).start
        nbytes = sum(ln for _, ln, _ in requests)
        with self._tracer.span(
            "tcio.fallback_fetch", segment=gseg, bytes=nbytes, rank=self.env.rank
        ):
            for disp, length, dest in requests:
                data = yield from pfs_retry(
                    self.env.world,
                    "tcio.fallback_fetch",
                    lambda t, _off=seg_start + disp, _n=length: self.client.read(
                        self.pfs_file, _off, _n,
                        owner=self.env.rank, lock_timeout=t,
                    ),
                )
                dest[:] = data
        self.stats.inc("fetched_bytes", nbytes)
        self._charge_memcpy(nbytes)

    # ------------------------------------------------------------------
    # flush / close (collective)
    # ------------------------------------------------------------------
    def flush(self):
        """tcio_flush: collective level-1 drain (coroutine; "invokes
        MPI_Barrier").

        With ``journal="epoch"`` every flush is also a durability point:
        the drained data is journaled, committed, and written back in
        place as one epoch of the two-phase protocol.
        """
        self._check_open()
        with self._tracer.span("tcio.flush"):
            if self.mode == TCIO_WRONLY:
                yield from self._ft_guard(self._flush_write_body)
            else:
                yield from collectives.barrier(self.comm)

    def _flush_write_body(self):
        yield from self._flush_level1()
        yield from self._node_drain()
        yield from collectives.barrier(self.comm)
        if self.config.journal == "epoch":
            yield from self._flush_epoch()

    def close(self):
        """tcio_close: synchronize, then level-2 -> file system (coroutine)."""
        self._check_open()
        with self._tracer.span("tcio.close", file=self.name):
            if self.mode == TCIO_WRONLY:
                yield from self._ft_guard(self._close_write_body)
            else:
                if not self.readlog.empty:
                    yield from self.fetch()
                yield from collectives.barrier(self.comm)
            self._release()

    def _close_write_body(self):
        yield from self._flush_level1()
        yield from self._node_drain()
        # "issues MPI_barrier to synchronize among processes before
        # outputting data from the level-2 buffers to file system."
        yield from collectives.barrier(self.comm)
        if self.config.journal == "epoch":
            yield from self._flush_epoch()
        else:
            eof = yield from collectives.allreduce(
                self.comm, self.directory.eof, max
            )
            self.directory.eof = eof
            segs = list(self.level2.owned_dirty_segments())
            if self.config.batched_writeback:
                yield from self._write_back_batch(segs, eof)
                self.directory.flushed.update(segs)
            else:
                for gseg in segs:
                    yield from self._write_back_segment(gseg, eof)
                    # Progress marker for crash tooling: fsck counts
                    # dirty-but-unflushed segments as lost after a
                    # journal-off crash.
                    self.directory.flushed.add(gseg)
            yield from collectives.barrier(self.comm)

    def _write_back_segment(self, gseg: int, eof: int):
        """In-place PFS write of one owned dirty segment (clamped to eof;
        coroutine)."""
        extent = self.mapping.segment_extent(gseg)
        stop = min(extent.stop, eof)
        if stop <= extent.start:
            return
        slot = self.level2.local_slot(gseg)
        with self._tracer.span("tcio.writeback", segment=gseg):
            # Skip byte ranges some rank already wrote directly
            # (fallback flushes): the slot holds zeros there, and
            # a whole-segment write would clobber their data.
            for lo, hi in self._writeback_pieces(gseg, stop - extent.start):
                yield from pfs_retry(
                    self.env.world,
                    "tcio.writeback",
                    lambda t, _off=extent.start + lo,
                    _p=slot[lo:hi].tobytes(): self.client.write(
                        self.pfs_file, _off, _p,
                        owner=self.env.rank, lock_timeout=t,
                    ),
                )
        self.stats.inc("segment_writebacks")

    def _write_back_batch(self, segments, eof: int):
        """In-place PFS write of all owned dirty *segments* as ONE batched
        ``write_vec`` (coroutine; the ``batched_writeback`` opt-in).

        Byte-identical to calling :meth:`_write_back_segment` per segment
        — the same pieces land, fallback skip ranges included — but the
        whole drain costs O(1) scheduler events. A retried batch (lock
        timeout under fault plans) re-writes the same bytes, so the
        result stays idempotent.
        """
        pieces: list[tuple[int, bytes]] = []
        nsegs = 0
        for gseg in segments:
            extent = self.mapping.segment_extent(gseg)
            stop = min(extent.stop, eof)
            if stop <= extent.start:
                continue
            slot = self.level2.local_slot(gseg)
            for lo, hi in self._writeback_pieces(gseg, stop - extent.start):
                pieces.append((extent.start + lo, slot[lo:hi].tobytes()))
            nsegs += 1
        if pieces:
            with self._tracer.span(
                "tcio.writeback_batch", segments=nsegs, pieces=len(pieces)
            ):
                yield from pfs_retry(
                    self.env.world,
                    "tcio.writeback",
                    lambda t: self.client.write_vec(
                        self.pfs_file, pieces,
                        owner=self.env.rank, lock_timeout=t,
                    ),
                )
        self.stats.inc("segment_writebacks", nsegs)

    def _flush_epoch(self):
        """One epoch of the two-phase journaled writeback protocol
        (coroutine).

        Phase 1: every owner appends a write-ahead record (extents +
        checksummed payload) per owned dirty-unflushed segment to its
        per-rank journal file. Then, after a barrier proving every record
        is durable, rank 0 appends the epoch's commit mark; only now does
        the epoch count. Phase 2 writes the data in place — a crash
        anywhere re-creates a committed prefix: ``repro.crash.recover``
        replays journals up to the last commit mark and truncates to that
        epoch's eof. See ``docs/faults.md``.
        """
        from repro.crash.journal import commit_name, pack_commit, rank_journal

        d = self.directory
        eof = yield from collectives.allreduce(self.comm, d.eof, max)
        d.eof = eof
        todo = [g for g in self.level2.owned_dirty_segments() if g not in d.flushed]
        total = yield from collectives.allreduce(
            self.comm, len(todo), lambda a, b: a + b
        )
        if total == 0:
            yield from collectives.barrier(self.comm)
            self._shadow.clear()
            return
        epoch = d.committed_epoch + 1
        with self._tracer.span("tcio.flush_epoch", epoch=epoch, segments=len(todo)):
            journal = self.env.pfs.create(rank_journal(self.name, self.env.rank))
            for gseg in todo:
                yield from self._journal_segment(journal, epoch, gseg, eof)
            yield from collectives.barrier(self.comm)
            yield from self._crash_point("pre-commit")
            # This barrier is what makes "pre-commit" mean what it says:
            # no rank may write the commit mark until every rank survived
            # its pre-commit crash point (otherwise resume order could let
            # rank 0 commit before the victim even reaches the point).
            yield from collectives.barrier(self.comm)
            if self.comm.rank == 0:
                commit = self.env.pfs.create(commit_name(self.name))
                mark = pack_commit(epoch, eof)
                yield from pfs_retry(
                    self.env.world,
                    "tcio.journal.commit",
                    lambda t, _off=commit.size, _p=mark: self.client.write(
                        commit, _off, _p, owner=self.env.rank, lock_timeout=t,
                    ),
                )
                # Journal metrics live only under dotted registry names:
                # the legacy as_dict() key set is frozen by compat tests.
                self.stats.registry.counter("tcio.journal.commits").inc()
                self._count("crash.journal.commits", 1)
            yield from collectives.barrier(self.comm)
            yield from self._crash_point("post-commit")
            if self.config.batched_writeback:
                yield from self._write_back_batch(todo, eof)
                d.flushed.update(todo)
            else:
                for gseg in todo:
                    yield from self._write_back_segment(gseg, eof)
                    d.flushed.add(gseg)
            d.committed_epoch = epoch
            yield from collectives.barrier(self.comm)
            # Everything deposited so far is durable (committed + written
            # back): survivors will never need to re-deposit it.
            self._shadow.clear()

    def _journal_segment(self, journal, epoch: int, gseg: int, eof: int):
        """Append one segment's write-ahead record to this rank's journal
        (coroutine).

        The record goes out as two PFS writes (header+extents, then the
        checksummed payload) with a crash point between them, so a
        mid-flush crash produces exactly the torn-record artifact the
        recovery path must tolerate.
        """
        from repro.crash.journal import pack_record_head

        extent = self.mapping.segment_extent(gseg)
        stop = min(extent.stop, eof)
        if stop <= extent.start:
            return
        slot = self.level2.local_slot(gseg)
        pieces = self._writeback_pieces(gseg, stop - extent.start)
        extents = [(extent.start + lo, extent.start + hi) for lo, hi in pieces]
        payload = b"".join(slot[lo:hi].tobytes() for lo, hi in pieces)
        head = pack_record_head(epoch, gseg, extents, payload)
        with self._tracer.span(
            "tcio.journal_record", segment=gseg, epoch=epoch, bytes=len(payload)
        ):
            pos = self._journal_pos
            yield from pfs_retry(
                self.env.world,
                "tcio.journal.head",
                lambda t, _p=head: self.client.write(
                    journal, pos, _p, owner=self.env.rank, lock_timeout=t,
                ),
            )
            yield from self._crash_point("mid-flush")
            yield from pfs_retry(
                self.env.world,
                "tcio.journal.payload",
                lambda t, _p=payload: self.client.write(
                    journal, pos + len(head), _p,
                    owner=self.env.rank, lock_timeout=t,
                ),
            )
        self._journal_pos = pos + len(head) + len(payload)
        self.stats.registry.counter("tcio.journal.records").inc()
        self.stats.registry.counter("tcio.journal.bytes").inc(len(head) + len(payload))
        self._count("crash.journal.bytes", len(head) + len(payload))

    # ------------------------------------------------------------------
    # survive-and-complete fault tolerance (``config.ft``)
    # ------------------------------------------------------------------
    def _ft_guard(self, body):
        """Run collective *body* (a coroutine factory), surviving rank
        failures when FT is armed (coroutine).

        A non-FT handle propagates :class:`RankUnreachable` unchanged (the
        job aborts). An FT handle shrinks to the survivor communicator,
        re-partitions level 2, and reruns *body* — whose phases are all
        idempotent over the shared directory (re-journaled records
        supersede, re-writebacks land the same bytes).
        """
        if not self._ft:
            return (yield from body())
        while True:
            try:
                return (yield from body())
            except RankUnreachable:
                yield from self._ft_recover()

    def _ft_recover(self):
        """Shrink-and-rebuild until it sticks (coroutine): a cascading
        failure during recovery itself restarts recovery on the freshly
        shrunken survivor set."""
        while True:
            try:
                yield from self._survive()
                return
            except RankUnreachable:
                continue

    def ft_join_recovery(self):
        """Join a pending survivor recovery, if any (collective coroutine).

        Service loops learn of a member's death *outside* any handle call
        — an interrupt at an idle receive, or a request arriving from an
        adopted client. The recovery round itself is collective over the
        survivors, so such a rank must still rendezvous with the peers
        already recovering inside a deposit retry or :meth:`_ft_guard`;
        calling this does exactly that. No-op when FT is off or every
        member of the handle communicator is alive.
        """
        if not self._ft:
            return
        while set(self.comm.group_world_ranks()) & self.env.world.dead_ranks:
            yield from self._ft_recover()

    def _survive(self):
        """One survive-and-complete recovery round (collective coroutine).

        ULFM-style: every survivor lands here after catching
        :class:`RankUnreachable` (write handles reach a collective point —
        flush/close/deposit — within bounded work, so nobody is left
        behind). The round

        1. shrinks the communicator to the re-numbered survivors,
        2. picks a resume epoch strictly past every journaled epoch, so
           the survivor epoch's records supersede any stale record a
           later commit mark would otherwise resurrect,
        3. replays the dead ranks' committed-but-not-written-back journal
           records into the data file (what ``crash.recover`` would do,
           but online and charged through the PFS client),
        4. rebuilds the level-2 partition over the survivors: alive old
           owners migrate their full slot images; dead-owned segments are
           rebased from the (replayed) file image and the survivors'
           shadow deposits are re-pushed; segments inside eof that no one
           ever deposited (the dead rank's level-1-only writes) are
           adopted so the next epoch keeps fsck's byte accounting
           complete,
        5. swaps the handle onto the new communicator/mapping/buffer.

        The only data lost is what existed solely in dead volatile
        memory: the dead ranks' level-1 buffers and their uncommitted
        own-slot deposits.
        """
        from repro.crash.journal import (
            commit_name,
            committed_state,
            iter_records,
            rank_journal,
        )

        d = self.directory
        world = self.env.world
        pfs = self.env.pfs
        memory = world.memory
        old_members = self.comm.group_world_ranks()
        with self._tracer.span("tcio.survive", file=self.name):
            new_comm = yield from self.comm.shrink()
            dead = tuple(r for r in old_members if r in world.dead_ranks)
            self._count("tcio.ft.survives", 1)

            # -- resume epoch + committed replay set --------------------
            commit_epoch = 0
            if pfs.exists(commit_name(self.name)):
                commit_epoch, _ = committed_state(
                    pfs.lookup(commit_name(self.name)).contents()
                )
            resume = max(d.committed_epoch, commit_epoch)
            replay = []  # committed dead-rank records never written back
            for member in old_members:
                jname = rank_journal(self.name, member)
                if not pfs.exists(jname):
                    continue
                for rec in iter_records(pfs.lookup(jname).contents()):
                    if rec.torn:
                        continue
                    resume = max(resume, rec.epoch)
                    if (
                        member in world.dead_ranks
                        and rec.epoch <= commit_epoch
                        and rec.gseg not in d.flushed
                    ):
                        replay.append((rec.epoch, jname, rec))
            d.committed_epoch = resume
            replay.sort(key=lambda row: (row[0], row[1], row[2].gseg))
            if new_comm.rank == 0:
                for _epoch, _jname, rec in replay:
                    with self._tracer.span(
                        "tcio.ft.replay", segment=rec.gseg, epoch=rec.epoch
                    ):
                        for i, (lo, _hi) in enumerate(rec.extents):
                            yield from pfs_retry(
                                world,
                                "tcio.ft.replay",
                                lambda t, _off=lo, _p=rec.piece(i): self.client.write(
                                    self.pfs_file, _off, _p,
                                    owner=self.env.rank, lock_timeout=t,
                                ),
                            )
                    self._count("tcio.ft.replayed_bytes", rec.nbytes)
            yield from collectives.barrier(new_comm)

            # -- rebuild the level-2 partition over the survivors -------
            seg = self.mapping.segment_size
            total_segments = -(-d.eof // seg) if d.eof else 0
            pending = sorted(g for g in d.dirty if g not in d.flushed)
            abandoned = [
                g
                for g in range(total_segments)
                if g not in d.dirty and g not in d.flushed
            ]
            # Preserve the aggregate capacity of the old partition: the
            # handle stays open after recovery (delegate failover keeps
            # writing), so the survivors must be able to hold every
            # segment the *full* job was provisioned for, not just the
            # eof reached so far.
            per_rank = max(
                -(-max(total_segments, 1) // new_comm.size),
                -(
                    -self.config.segments_per_process
                    * len(old_members)
                    // new_comm.size
                ),
            )
            new_mapping = SegmentMapping(seg, new_comm.size)
            new_alloc = memory.allocate(
                self.env.rank, per_rank * seg, "tcio.level2"
            )
            try:
                old_level2, old_mapping = self.level2, self.mapping
                new_level2 = yield from Level2Buffer.create(
                    new_comm,
                    new_mapping,
                    per_rank,
                    d,
                    self.stats,
                    use_rma=self.config.use_rma,
                    combine_indexed=self.config.combine_indexed,
                    tracer=self._tracer,
                )

                def read_base(g: int, limit: int):
                    return (
                        yield from pfs_retry(
                            world,
                            "tcio.ft.rebase",
                            lambda t, _off=g * seg, _n=limit: self.client.read(
                                self.pfs_file, _off, _n,
                                owner=self.env.rank, lock_timeout=t,
                            ),
                        )
                    )

                for g in pending:
                    limit = min(seg, d.eof - g * seg)
                    if limit <= 0:
                        continue
                    old_owner_world = old_members[old_mapping.owner_of_segment(g)]
                    if old_owner_world in world.dead_ranks:
                        # Dead owner: its slot is gone. The new owner
                        # rebases from the file image (current after the
                        # committed replay above); the shadow replay below
                        # re-applies every survivor's deposits.
                        if new_mapping.owner_of_segment(g) == new_comm.rank:
                            base = yield from read_base(g, limit)
                            new_level2.local_slot(g)[: len(base)] = np.frombuffer(
                                base, dtype=np.uint8
                            )
                    elif old_owner_world == self.env.rank:
                        # Alive owner: hand the full slot image (every
                        # rank's deposits, the dead one's included) to the
                        # segment's new owner.
                        payload = old_level2.local_slot(g)[:limit].tobytes()
                        yield from new_level2.push_blocks(g, [(0, limit, payload)])
                yield from collectives.barrier(new_comm)
                shadow_bytes = 0
                for g, blocks in sorted(self._shadow.items()):
                    if g not in d.dirty or g in d.flushed:
                        continue
                    old_owner_world = old_members[old_mapping.owner_of_segment(g)]
                    if old_owner_world not in world.dead_ranks:
                        continue
                    yield from new_level2.push_blocks(
                        g, [(disp, len(p), p) for disp, p in blocks]
                    )
                    shadow_bytes += sum(len(p) for _disp, p in blocks)
                if shadow_bytes:
                    self._count("tcio.ft.shadow_bytes", shadow_bytes)
                abandoned_bytes = 0
                for g in abandoned:
                    limit = min(seg, d.eof - g * seg)
                    if limit <= 0:
                        continue
                    if new_mapping.owner_of_segment(g) == new_comm.rank:
                        base = yield from read_base(g, limit)
                        new_level2.local_slot(g)[: len(base)] = np.frombuffer(
                            base, dtype=np.uint8
                        )
                        d.dirty.add(g)
                        abandoned_bytes += limit
                if abandoned_bytes:
                    self._count("tcio.ft.abandoned_bytes", abandoned_bytes)
                yield from collectives.barrier(new_comm)
            except BaseException:
                memory.free(new_alloc)
                raise

            # -- swap the handle onto the survivor partition ------------
            self.comm = new_comm
            self.mapping = new_mapping
            self.level2 = new_level2
            d.nranks = new_comm.size
            d.loaded.clear()  # old slots are gone; reads must reload
            memory.free(self._level2_alloc)
            self._allocs.remove(self._level2_alloc)
            self._level2_alloc = new_alloc
            self._allocs.append(new_alloc)
            # Old-communicator rank ids are meaningless now.
            self._unreachable_owners = set()

    # ------------------------------------------------------------------
    # epoch-handoff observability (the I/O-server write-behind loop)
    # ------------------------------------------------------------------
    @property
    def committed_epoch(self) -> int:
        """The last durably committed journal epoch (0 before the first).

        With ``journal="epoch"`` every collective flush hands one epoch
        of buffered data to the write-behind path; delegate servers
        (``repro.ioserver``) report this as the durability frontier their
        clients' acknowledged-but-unflushed writes are waiting on.
        """
        return self.directory.committed_epoch

    @property
    def pending_write_behind(self) -> int:
        """Owned dirty segments not yet flushed to the file system.

        The backlog the next epoch's write-behind must move: what a
        delegate server loses to a crash *minus* whatever the journal can
        replay. Zero right after a flush/close.
        """
        return sum(
            1
            for g in self.level2.owned_dirty_segments()
            if g not in self.directory.flushed
        )

    def abort(self) -> None:
        """Tear the handle down locally (no collectives; exception path).

        ``close()`` is collective: calling it while unwinding an exception
        on one rank would deadlock the others, so a failing body calls
        ``abort()`` instead — simulated memory is released and the handle
        marked closed without any communication.
        """
        self._release()

    _abort = abort  # backwards-compatible spelling

    def _release(self) -> None:
        memory = self.env.world.memory
        for alloc in self._allocs:
            memory.free(alloc)
        self._allocs = []
        self._closed = True

    def _writeback_pieces(self, gseg: int, limit: int) -> list[tuple[int, int]]:
        """The [lo, hi) slot ranges to write back for one owned segment.

        The complement, within ``[0, limit)``, of the segment's published
        fallback ranges (the whole range when no fallback happened).
        """
        skips = self.directory.fallback_ranges.get(gseg)
        if not skips:
            return [(0, limit)]
        merged: list[list[int]] = []
        for start, stop in sorted(skips):
            start, stop = max(0, min(start, limit)), max(0, min(stop, limit))
            if stop <= start:
                continue
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], stop)
            else:
                merged.append([start, stop])
        pieces: list[tuple[int, int]] = []
        pos = 0
        for start, stop in merged:
            if start > pos:
                pieces.append((pos, start))
            pos = stop
        if pos < limit:
            pieces.append((pos, limit))
        return pieces

    # ------------------------------------------------------------------
    def _charge_memcpy(self, nbytes: int) -> None:
        if nbytes > 0:
            self.env.compute(nbytes / self.env.world.fabric.spec.memcpy_bandwidth)

    def _check_open(self, *, writing: bool = False, reading: bool = False) -> None:
        if self._closed:
            raise TcioError("TCIO handle is closed")
        if writing and self.mode != TCIO_WRONLY:
            raise TcioError("handle not opened for writing")
        if reading and self.mode != TCIO_RDONLY:
            raise TcioError("handle not opened for reading")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TcioFile {self.name!r} rank={self.env.rank} mode={self.mode}>"


# ----------------------------------------------------------------------
# Program 1's free-function spelling of the API
# ----------------------------------------------------------------------


def tcio_open(env: RankEnv, fname: str, mode: int,
              config: Optional[TcioConfig] = None):
    """Collective open (coroutine); mode is TCIO_RDONLY or TCIO_WRONLY."""
    return (yield from TcioFile.open(env, fname, mode, config))


def tcio_write(fh: TcioFile, data: Buffer, count: Optional[int] = None,
               datatype: Datatype = BYTE):
    """Program 1: sequential write at the current position (coroutine)."""
    return (yield from fh.write(data, count, datatype))


def tcio_write_at(fh: TcioFile, offset: int, data: Buffer,
                  count: Optional[int] = None, datatype: Datatype = BYTE):
    """Program 1: write at an explicit offset (coroutine)."""
    return (yield from fh.write_at(offset, data, count, datatype))


def tcio_read(fh: TcioFile, dest: Buffer, count: Optional[int] = None,
              datatype: Datatype = BYTE):
    """Program 1: record a sequential lazy read into *dest* (coroutine)."""
    return (yield from fh.read(dest, count, datatype))


def tcio_read_at(fh: TcioFile, offset: int, dest: Buffer,
                 count: Optional[int] = None, datatype: Datatype = BYTE):
    """Program 1: record a lazy read at an explicit offset (coroutine)."""
    return (yield from fh.read_at(offset, dest, count, datatype))


def tcio_seek(fh: TcioFile, offset: int, whence: int = SEEK_SET) -> int:
    """Program 1: move the file position."""
    return fh.seek(offset, whence)


def tcio_flush(fh: TcioFile):
    """Program 1: collective level-1 -> level-2 drain (coroutine)."""
    yield from fh.flush()


def tcio_fetch(fh: TcioFile):
    """Program 1: load all recorded lazy reads (coroutine)."""
    yield from fh.fetch()


def tcio_close(fh: TcioFile):
    """Program 1: collective close (coroutine; level-2 -> file system)."""
    yield from fh.close()
