"""TCIO configuration.

"To use TCIO, a user needs to specify the segment size and the number of
segments per process" (Section IV.B). The segment size defaults to the file
system's lock granularity (= Lustre stripe size), the rule Section IV.A
derives: smaller segments contend for locks, larger ones unbalance the
level-2 distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.errors import TcioError


@dataclass(frozen=True)
class TcioConfig:
    """Tunables of one TCIO file handle.

    Attributes
    ----------
    segment_size:
        Level-2 segment bytes; ``None`` adopts the file system's lock
        granularity (the paper's choice). The level-1 buffer is the same
        size ("we set them to be equal, and each level-1 buffer is aligned
        with one level-2 buffer segment").
    segments_per_process:
        Level-2 capacity per rank. ``segments_per_process * segment_size *
        nranks`` must cover the file domain the application touches.
    use_rma:
        Ablation switch: ``True`` (paper) moves level-1 flushes with
        one-sided Put/Get under lock-request synchronization; ``False``
        routes them over two-sided isend/irecv to a progress loop — the
        design the paper rejects because per-datum I/O calls have no
        matching receive counts.
    combine_indexed:
        Ablation switch: ``True`` (paper) combines all blocks of a flush
        into one indexed transfer; ``False`` issues one Put/Get per block
        ("a large number of network connections, which would in turn
        degrade the performance").
    lazy_reads:
        Ablation switch: ``True`` (paper) defers data movement to
        ``tcio_fetch``/overflow; ``False`` fetches inside every read call.
    read_window_segments:
        How many segments of file domain pending lazy reads may span
        before an automatic fetch triggers. Pending reads are *metadata*
        (address, length, offset — the paper's own lazy-read records), so
        a wide window costs no staging memory; it lets distinct ranks
        drive distinct segment loads concurrently and spreads one fetch's
        one-sided gets over many owner nodes instead of convoying on one.
        The paper specifies only the trigger ("the file domain of cached
        reads exceeds the size of the level-1 buffer"), not the width;
        set 1 for the strictest reading (ablation).
    aggregation:
        ``"flat"`` (default, the paper's design) drains every level-1
        flush straight to the segment owner over the fabric. ``"node"``
        routes flushes whose owner lives on another node through the
        node's staging buffer instead: one leader per node coalesces them
        into a single indexed RMA per remote owner at the next collective
        point (``tcio_flush``/``tcio_close``). See ``docs/topology.md``.
        Write handles only; reads always use the flat path. Must agree
        across the ranks of one collective open.
    staging_segments:
        Capacity of the per-node staging buffer, in segments (only used
        with ``aggregation="node"``; allocated on the leader's ``memsim``
        budget). Deposits that would overflow fall back to the flat path.
    journal:
        Durability mode for flushes. ``"off"`` (default, the paper's
        design) writes segments back in place with no crash protection.
        ``"epoch"`` makes every flush an epoch of the two-phase journaled
        protocol: owners append write-ahead records (extents + checksum)
        to per-rank journal files before touching file data, and an epoch
        only counts once its commit mark lands — ``repro.crash.recover``
        can then rebuild a consistent image after a fail-stop crash. See
        ``docs/faults.md``. Write handles only; must agree across ranks.
    batched_writeback:
        Opt-in: drain all of a rank's dirty segments through one batched
        ``PfsClient.write_vec`` call at flush/close, so an N-segment
        writeback costs O(1) scheduler events instead of O(N). Bytes are
        identical to the per-segment path (gated by a differential test);
        virtual timing may shift slightly because extent locks release at
        batch end. Default off to keep existing runs bit-identical.
    ft:
        Opt-in survive-and-complete fault tolerance (ULFM-style). When a
        member of the collective dies mid-protocol, the survivors shrink
        to a re-numbered communicator, re-partition the level-2 file
        domain, replay the dead rank's committed journal records, and
        complete the flush instead of aborting. Requires
        ``journal="epoch"`` (the survivor flush is built on the epoched
        durability protocol) and ``aggregation="flat"``. The only data
        lost is what sat solely in the dead rank's volatile memory —
        its level-1 buffer and its uncommitted own-slot deposits. See
        ``docs/faults.md``.
    """

    segment_size: Optional[int] = None
    segments_per_process: int = 16
    use_rma: bool = True
    combine_indexed: bool = True
    lazy_reads: bool = True
    read_window_segments: int = 64
    aggregation: str = "flat"
    staging_segments: int = 32
    journal: str = "off"
    batched_writeback: bool = False
    ft: bool = False

    def validate(self) -> None:
        """Raise TcioError on out-of-range parameters."""
        if self.segment_size is not None and self.segment_size < 1:
            raise TcioError("segment_size must be positive")
        if self.segments_per_process < 1:
            raise TcioError("segments_per_process must be positive")
        if self.read_window_segments < 1:
            raise TcioError("read_window_segments must be positive")
        if self.aggregation not in ("flat", "node"):
            raise TcioError("aggregation must be 'flat' or 'node'")
        if self.staging_segments < 1:
            raise TcioError("staging_segments must be positive")
        if self.journal not in ("off", "epoch"):
            raise TcioError("journal must be 'off' or 'epoch'")
        if self.ft:
            if self.journal != "epoch":
                raise TcioError("ft requires journal='epoch'")
            if self.aggregation != "flat":
                raise TcioError("ft requires aggregation='flat'")

    def resolve_segment_size(self, lock_granularity: int) -> int:
        """The effective segment size (explicit or the lock granularity)."""
        size = self.segment_size if self.segment_size is not None else lock_granularity
        if size < 1:
            raise TcioError("resolved segment size must be positive")
        return size

    @staticmethod
    def sized_for(file_bytes: int, nranks: int, segment_size: int) -> "TcioConfig":
        """A config whose level-2 capacity covers *file_bytes* exactly —
        what the benchmark drivers use, and what makes TCIO's level-2
        memory equal OCIO's temporary buffer (the Fig. 6 comparison)."""
        total_segments = -(-file_bytes // segment_size)
        per_rank = -(-total_segments // nranks)
        return TcioConfig(
            segment_size=segment_size, segments_per_process=max(1, per_rank)
        )
