"""Topology discovery and intra-node aggregation (``repro.topo``).

The cost model charges per network message and per connection; both grow
with the number of *ranks* talking across nodes. This package recovers the
cores-per-node factor (Kang et al., "Improving MPI Collective I/O
Performance With Intra-node Request Aggregation"): ranks sharing a node
deposit their outbound pieces into a node-local staging buffer at memory
bandwidth, and one elected leader per node issues a single coalesced
inter-node message per remote target.

* :mod:`repro.topo.topology` — node groups, leader election,
  ``split_by_node`` communicator splitting.
* :mod:`repro.topo.staging` — the node-local staging buffer and the
  interval coalescing the leader applies before the wire.

See ``docs/topology.md`` for the integration into TCIO
(``TcioConfig.aggregation``) and two-phase OCIO (``IoHints.cb_aggregation``).
"""

from repro.topo.staging import StagingBuffer, charge_staging_copy, coalesce_blocks
from repro.topo.topology import NodeTopology, node_leader_ranks, split_by_node

__all__ = [
    "NodeTopology",
    "node_leader_ranks",
    "split_by_node",
    "StagingBuffer",
    "charge_staging_copy",
    "coalesce_blocks",
]
