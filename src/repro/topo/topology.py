"""Node topology: which ranks share a node, and who leads each node.

Placement is already global knowledge in the simulator (``MpiWorld.node_of``
is derived from ``ClusterSpec.cores_per_node``), so discovery needs no
communication — exactly like ``MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)``,
whose result every rank can compute from local hardware information. Only
:func:`split_by_node`, which materializes the node groups as communicators,
is collective.

Leader election is deterministic: the lowest communicator rank on each node
leads it. Every rank computes the same answer with no messages, and the
leader is local rank 0 of the node communicator returned by
:func:`split_by_node` (members are ordered by parent rank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, TYPE_CHECKING

from repro.simmpi.comm import Communicator
from repro.simmpi.group import GroupSpec, SubCommunicator
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.spec import ClusterSpec


@dataclass(frozen=True)
class NodeTopology:
    """The node placement of one communicator's ranks.

    ``node_of_rank(r)`` maps a *communicator-local* rank to its node id;
    node ids are whatever the fabric uses (they need not be contiguous from
    zero when the communicator spans a subset of nodes).
    """

    _node_of: tuple[int, ...]  # local rank -> node id

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_node_of(cls, node_of: Sequence[int]) -> "NodeTopology":
        """Build from an explicit local-rank -> node mapping."""
        if not node_of:
            raise SimulationError("topology needs at least one rank")
        return cls(tuple(node_of))

    @classmethod
    def from_comm(cls, comm: Communicator) -> "NodeTopology":
        """The topology of *comm*'s ranks (sub-communicators translate)."""
        world = comm.world
        return cls.from_node_of(
            [world.node_of[comm.world_rank(r)] for r in range(comm.size)]
        )

    @classmethod
    def from_cluster(cls, spec: "ClusterSpec", nranks: int) -> "NodeTopology":
        """The default dense placement ``rank // cores_per_node``."""
        return cls.from_node_of([r // spec.cores_per_node for r in range(nranks)])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nranks(self) -> int:
        """Number of ranks covered."""
        return len(self._node_of)

    @property
    def nodes(self) -> tuple[int, ...]:
        """The distinct node ids, in ascending order."""
        return tuple(sorted(set(self._node_of)))

    @property
    def n_nodes(self) -> int:
        """Number of distinct nodes."""
        return len(set(self._node_of))

    def node_of_rank(self, rank: int) -> int:
        """The node id hosting local rank *rank*."""
        try:
            return self._node_of[rank]
        except IndexError:
            raise SimulationError(f"rank {rank} outside topology") from None

    def ranks_on_node(self, node: int) -> tuple[int, ...]:
        """All local ranks on *node*, ascending."""
        return tuple(r for r, n in enumerate(self._node_of) if n == node)

    def leader_of(self, node: int) -> int:
        """The node's leader: its lowest local rank."""
        for r, n in enumerate(self._node_of):
            if n == node:
                return r
        raise SimulationError(f"no ranks on node {node}")

    def leaders(self) -> tuple[int, ...]:
        """One leader per node, in node order."""
        return tuple(self.leader_of(n) for n in self.nodes)

    def is_leader(self, rank: int) -> bool:
        """True when *rank* leads its node."""
        return self.leader_of(self.node_of_rank(rank)) == rank

    def same_node(self, a: int, b: int) -> bool:
        """True when local ranks *a* and *b* share a node."""
        return self.node_of_rank(a) == self.node_of_rank(b)


def node_leader_ranks(node_of: Sequence[int]) -> tuple[int, ...]:
    """One delegate per node: the lowest rank placed on each node.

    The default placement of :mod:`repro.ioserver` delegate servers —
    node leaders keep client→delegate traffic intra-node wherever a node
    hosts both. Pure local computation (``node_of`` is global knowledge),
    so every rank derives the identical delegate set with no messages;
    returned in ascending rank order.
    """
    first_rank: dict[int, int] = {}
    for rank, node in enumerate(node_of):
        if node not in first_rank:
            first_rank[node] = rank
    return tuple(sorted(first_rank.values()))


def split_by_node(comm: Communicator, topo: NodeTopology | None = None):
    """``MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)``: one communicator per node.

    Collective coroutine over *comm*: ``node_comm = yield from
    split_by_node(comm)``. Members keep their parent order, so the node's
    leader (lowest parent rank) is local rank 0 of the result.

    Unlike the general ``comm_split`` (which allgathers colors, paying
    P log P messages), node membership is hardware information every rank
    already holds — real MPIs derive shared-memory communicators from local
    discovery the same way — so the groups are computed locally and only a
    barrier synchronizes the collective.
    """
    from repro.simmpi import collectives

    topo = topo if topo is not None else NodeTopology.from_comm(comm)
    my_node = topo.node_of_rank(comm.rank)
    group = GroupSpec(
        tuple(comm.world_rank(r) for r in topo.ranks_on_node(my_node))
    )
    # Every member bumps its own dup counter once inside the collective,
    # so the derived id agrees globally (same construction as comm_split).
    comm._dup_seq += 1
    new_id = (comm._comm_id, "node-split", comm._dup_seq, my_node)
    node_comm = SubCommunicator(
        comm.world, group, comm.world_rank(comm.rank), new_id
    )
    yield from collectives.barrier(comm)
    return node_comm
