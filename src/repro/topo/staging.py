"""The node-local staging buffer and the leader's interval coalescing.

A :class:`StagingBuffer` is host-side shared state (published through
``world.shared``, like TCIO's segment directory): all ranks of one node
deposit outbound pieces into keyed bins, and the node's leader drains whole
bins to build coalesced inter-node messages. Deposits and pickups are
*memory* traffic, not fabric messages — they reserve the node's memory
engine through :func:`charge_staging_copy` (contending with intra-node
messages for memcpy bandwidth) and count ``topo.staging.bytes`` instead of
``net.msg``. That distinction is the whole point: the aggregation trades
charged-per-message network traffic for charged-per-byte memory traffic.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Optional, Sequence

from repro.sim.engine import active_process
from repro.util.intervals import Extent, ExtentSet


class StagingBuffer:
    """One node's staging area, shared by the ranks placed on it.

    Pieces live in *bins* keyed by the caller (TCIO keys by remote segment
    owner; OCIO keys by collective-call sequence and aggregator). ``used``
    tracks resident payload bytes against an optional ``capacity``; callers
    check :meth:`would_overflow` first and fall back to their flat path
    when a deposit will not fit — staging never blocks.
    """

    def __init__(self, node: int, leader_world_rank: int,
                 capacity: Optional[int] = None):
        self.node = node
        self.leader_world_rank = leader_world_rank
        self.capacity = capacity
        self.used = 0
        self.peak = 0
        self.bins: dict[object, list] = {}
        self._bin_bytes: dict[object, int] = {}
        self._bin_allocs: dict[object, list] = {}

    def would_overflow(self, nbytes: int) -> bool:
        """True when depositing *nbytes* more would exceed capacity."""
        return self.capacity is not None and self.used + nbytes > self.capacity

    def deposit(self, key: object, items: Iterable, nbytes: int,
                allocation=None) -> None:
        """Append *items* to bin *key*, accounting *nbytes* of payload.

        ``allocation`` optionally attaches a ``memsim`` allocation backing
        the deposit; the drainer collects it via :meth:`drain_allocs` and
        frees it once the data has left the node.
        """
        self.bins.setdefault(key, []).extend(items)
        self._bin_bytes[key] = self._bin_bytes.get(key, 0) + nbytes
        if allocation is not None:
            self._bin_allocs.setdefault(key, []).append(allocation)
        self.used += nbytes
        self.peak = max(self.peak, self.used)

    def drain(self, key: object) -> list:
        """Remove and return bin *key*'s items (empty list when absent)."""
        self.used -= self._bin_bytes.pop(key, 0)
        return self.bins.pop(key, [])

    def drain_allocs(self, key: object) -> list:
        """Remove and return the allocations attached to bin *key*."""
        return self._bin_allocs.pop(key, [])

    def keys(self) -> list:
        """The populated bin keys, sorted (deterministic drain order)."""
        return sorted(self.bins)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<StagingBuffer node={self.node} used={self.used}"
            f"/{self.capacity} bins={len(self.bins)}>"
        )


def charge_staging_copy(world, rank: int, nbytes: int):
    """Occupy the calling rank until its node memcpy of *nbytes* completes.

    Coroutine. Reserves the node's memory engine through the fabric (so
    staging traffic contends with intra-node messages) without counting a
    network message — see ``Fabric.staging_copy``.
    """
    if nbytes <= 0:
        return
    t = world.fabric.staging_copy(rank, nbytes)
    now = world.engine.now
    if t > now:
        yield from active_process().sleep(t - now)


def coalesce_blocks(
    pieces: Sequence[tuple[int, bytes]]
) -> list[tuple[int, bytes]]:
    """Merge ``(offset, payload)`` pieces into maximal contiguous blocks.

    Touching or overlapping pieces collapse into one block per merged
    extent; payloads are painted in input order, so on overlap the later
    deposit wins — the same last-writer-wins the un-coalesced transfers
    would produce when applied in deposit order.
    """
    if not pieces:
        return []
    spans = ExtentSet(Extent(off, off + len(b)) for off, b in pieces if b)
    starts = [e.start for e in spans]
    bufs = [bytearray(e.length) for e in spans]
    for off, blk in pieces:
        if not blk:
            continue
        i = bisect.bisect_right(starts, off) - 1
        lo = off - starts[i]
        bufs[i][lo : lo + len(blk)] = blk
    return [(start, bytes(buf)) for start, buf in zip(starts, bufs)]
