"""Programming-effort metrics: Program 2 (OCIO) vs Program 3 (TCIO).

"Freeing application developers from writing extra code is a key
motivation of this work." (Section V.B.1). These metrics are measured
against this repository's own benchmark implementations — the executable
analogues of the paper's listings — by statically inspecting their source:
statement counts, distinct I/O-API calls, and which burden categories
(combine buffer, derived datatypes, file view) each implementation carries.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Callable

from repro.bench import synthetic
from repro.bench.config import Method

#: Markers of the three extra burdens Table III attributes to OCIO.
_BUFFER_MARKERS = ("combine", "allocate")
_DATATYPE_MARKERS = ("vector", "contiguous", "indexed", "struct")
_VIEW_MARKERS = ("set_view",)


@dataclass
class EffortMetrics:
    """Static programming-effort measurements of one implementation."""

    name: str
    statements: int = 0
    io_calls: int = 0
    call_names: set[str] = field(default_factory=set)
    needs_combine_buffer: bool = False
    needs_derived_datatypes: bool = False
    needs_file_view: bool = False

    @property
    def burden_count(self) -> int:
        """How many of the three OCIO burdens the listing carries."""
        return sum(
            (self.needs_combine_buffer, self.needs_derived_datatypes, self.needs_file_view)
        )


def _analyze(fns: "Callable | tuple[Callable, ...]", name: str) -> EffortMetrics:
    """Static metrics over one implementation (a function plus any helper
    functions that are genuinely part of its listing, e.g. Program 2's
    combine-buffer construction)."""
    if not isinstance(fns, tuple):
        fns = (fns,)
    source = "\n".join(textwrap.dedent(inspect.getsource(f)) for f in fns)
    tree = ast.parse(source)
    metrics = EffortMetrics(name=name)
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt) and not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            metrics.statements += 1
        if isinstance(node, ast.Call):
            call_name = ""
            if isinstance(node.func, ast.Attribute):
                call_name = node.func.attr
            elif isinstance(node.func, ast.Name):
                call_name = node.func.id
            if call_name:
                metrics.call_names.add(call_name)
    lowered = source.lower()
    metrics.needs_combine_buffer = any(m in lowered for m in _BUFFER_MARKERS)
    metrics.needs_derived_datatypes = any(m in lowered for m in _DATATYPE_MARKERS)
    metrics.needs_file_view = any(m in lowered for m in _VIEW_MARKERS)
    io_markers = ("write", "read", "open", "close", "seek", "set_view", "flush", "fetch")
    metrics.io_calls = sum(
        1 for n in metrics.call_names if any(m in n for m in io_markers)
    )
    return metrics


def effort_report() -> dict[Method, EffortMetrics]:
    """Effort metrics of the write paths of all three implementations."""
    return {
        Method.OCIO: _analyze(
            (synthetic._ocio_write, synthetic._combine_buffer), "OCIO (Program 2)"
        ),
        Method.TCIO: _analyze(synthetic._tcio_write, "TCIO (Program 3)"),
        Method.MPIIO: _analyze(synthetic._mpiio_write, "vanilla MPI-IO"),
    }
