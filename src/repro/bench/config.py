"""Benchmark configuration — Table I of the paper.

======  =============================================================
method  0: OCIO; 1: TCIO; 2: MPI-IO
NUMarray  number of arrays within each process
TYPEarray comma-separated type codes (c,s,i,f,d), e.g. "i,d"
LENarray  length of the arrays (elements)
SIZEaccess array elements per I/O access
======  =============================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.simmpi.datatypes import Primitive, type_from_code
from repro.util.errors import BenchmarkError


class Method(enum.Enum):
    """Table I's ``method`` parameter."""

    OCIO = 0
    TCIO = 1
    MPIIO = 2

    @classmethod
    def parse(cls, value: "Method | int | str") -> "Method":
        """Accept a Method, a Table I integer code, or a name string."""
        if isinstance(value, cls):
            return value
        if isinstance(value, int):
            return cls(value)
        text = value.strip()
        if text.isdigit():
            try:
                return cls(int(text))
            except ValueError:
                raise BenchmarkError(f"unknown method code {text!r}") from None
        try:
            return cls[text.upper().replace("-", "")]
        except KeyError:
            raise BenchmarkError(f"unknown method {value!r}") from None


@dataclass(frozen=True)
class BenchConfig:
    """One benchmark run's parameters (Table I), plus the process count."""

    method: Method = Method.TCIO
    num_arrays: int = 2
    type_codes: str = "i,d"
    len_array: int = 3
    size_access: int = 1
    nprocs: int = 2
    file_name: str = "bench.dat"
    #: Intra-node aggregation mode: "flat" (the paper's designs as-is) or
    #: "node" (route cross-node traffic through per-node leaders — maps to
    #: TcioConfig.aggregation and IoHints.cb_aggregation; docs/topology.md).
    aggregation: str = "flat"
    #: TCIO durability mode: "off" (the paper's design) or "epoch" (the
    #: journaled two-phase flush protocol — maps to TcioConfig.journal;
    #: docs/faults.md). Ignored by OCIO/MPI-IO methods.
    journal: str = "off"
    #: TCIO level-2 segment bytes; ``None`` keeps the paper's rule
    #: (segment = the file system's lock granularity — maps to
    #: TcioConfig.segment_size). A campaign sweep axis (docs/campaigns.md).
    segment_bytes: "int | None" = None
    #: OCIO collective-buffering aggregator count; ``None`` keeps the
    #: paper's every-rank-aggregates description (maps to IoHints.cb_nodes).
    #: A campaign sweep axis. Ignored by TCIO/MPI-IO methods.
    cb_nodes: "int | None" = None
    #: Opt-in batched TCIO writeback (maps to
    #: TcioConfig.batched_writeback; status in docs/performance.md).
    #: Bytes are identical either way; a campaign sweep axis. Ignored by
    #: OCIO/MPI-IO methods.
    batched_writeback: bool = False

    def __post_init__(self) -> None:
        if self.aggregation not in ("flat", "node"):
            raise BenchmarkError("aggregation must be 'flat' or 'node'")
        if self.journal not in ("off", "epoch"):
            raise BenchmarkError("journal must be 'off' or 'epoch'")
        if self.segment_bytes is not None and self.segment_bytes < 1:
            raise BenchmarkError("segment_bytes must be >= 1")
        if self.cb_nodes is not None and self.cb_nodes < 1:
            raise BenchmarkError("cb_nodes must be >= 1")
        if self.num_arrays < 1:
            raise BenchmarkError("NUMarray must be >= 1")
        if self.len_array < 1:
            raise BenchmarkError("LENarray must be >= 1")
        if self.size_access < 1:
            raise BenchmarkError("SIZEaccess must be >= 1")
        if self.len_array % self.size_access != 0:
            raise BenchmarkError("LENarray must be a multiple of SIZEaccess")
        if self.nprocs < 1:
            raise BenchmarkError("NUMproc must be >= 1")
        if len(self.types) != self.num_arrays:
            raise BenchmarkError(
                f"TYPEarray lists {len(self.types)} types for NUMarray={self.num_arrays}"
            )

    # ------------------------------------------------------------------
    @property
    def types(self) -> tuple[Primitive, ...]:
        """The primitive datatypes named by TYPEarray."""
        return tuple(type_from_code(c) for c in self.type_codes.split(","))

    @property
    def element_bytes(self) -> int:
        """Bytes of one same-index element group across all arrays."""
        return sum(t.size for t in self.types)

    @property
    def block_size(self) -> int:
        """Program 2/3's ``block_size``: one access's bytes across arrays."""
        return self.element_bytes * self.size_access

    @property
    def bytes_per_process(self) -> int:
        """Data bytes each process contributes."""
        return self.element_bytes * self.len_array

    @property
    def total_bytes(self) -> int:
        """The resulting shared-file size."""
        return self.bytes_per_process * self.nprocs

    @property
    def accesses_per_process(self) -> int:
        """I/O calls each process issues per phase."""
        return (self.len_array // self.size_access) * self.num_arrays

    def with_method(self, method: "Method | int | str") -> "BenchConfig":
        """A copy of the config with another method."""
        return replace(self, method=Method.parse(method))

    def scaled_len(self, scale: int) -> "BenchConfig":
        """Divide LENarray by *scale* (>=1 element), for size sweeps."""
        return replace(self, len_array=max(1, self.len_array // scale))
