"""The paper's synthetic benchmark (Section V.B).

Simulates the Fig. 2 workload: each process holds ``NUMarray`` in-memory
arrays whose same-index elements interleave into blocks placed round-robin
in one shared file. The benchmark runs the same workload through three I/O
methods (Table I): OCIO (Program 2: combine buffer + file view +
``MPI_File_write_all``), TCIO (Program 3: plain ``tcio_write_at`` calls),
and vanilla independent MPI-IO.
"""

from repro.bench.config import BenchConfig, Method
from repro.bench.synthetic import (
    reference_file_contents,
    run_benchmark,
    BenchResult,
)
from repro.bench.effort import effort_report, EffortMetrics

__all__ = [
    "BenchConfig",
    "Method",
    "reference_file_contents",
    "run_benchmark",
    "BenchResult",
    "effort_report",
    "EffortMetrics",
]
