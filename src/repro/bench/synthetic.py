"""The synthetic benchmark: Programs 2 & 3 and the vanilla-MPI-IO variant.

Workload (Fig. 2): process ``r`` owns ``NUMarray`` arrays; access ``i``
writes ``SIZEaccess`` elements of each array, and the combined block lands
at file offset ``r*block + i*block*P`` — small noncontiguous blocks from
all processes, interleaved round-robin.

Every run verifies the shared file byte-for-byte against
:func:`reference_file_contents` before any throughput is reported.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.bench.config import BenchConfig, Method
from repro.cluster.spec import ClusterSpec
from repro.faults import FaultPlan, FaultSpec
from repro.mpiio import IoHints, MpiFile, MODE_CREATE, MODE_RDONLY, MODE_RDWR
from repro.simmpi import collectives
from repro.simmpi.datatypes import BYTE, Contiguous
from repro.simmpi.mpi import MpiRunResult, RankEnv, run_mpi
from repro.sim.trace import TraceRecorder
from repro.tcio import TCIO_RDONLY, TCIO_WRONLY, TcioConfig, TcioFile
from repro.util.errors import BenchmarkError, OutOfMemoryError


# ----------------------------------------------------------------------
# workload construction (vectorized)
# ----------------------------------------------------------------------


def make_arrays(cfg: BenchConfig, rank: int) -> list[np.ndarray]:
    """The rank's in-memory arrays, deterministically valued.

    Array ``j`` holds ``(rank + 1) * (j + 1) + index`` cast to its dtype —
    unique enough to catch any misplaced block in verification.
    """
    out = []
    for j, t in enumerate(cfg.types):
        base = np.arange(cfg.len_array, dtype=np.int64)
        values = (rank + 1) * (j + 1) + base
        out.append(values.astype(t.np_dtype))
    return out


def _rank_blocks(cfg: BenchConfig, rank: int) -> np.ndarray:
    """(nblocks, block_size) uint8 matrix: the rank's file blocks in order."""
    nblocks = cfg.len_array // cfg.size_access
    blocks = np.empty((nblocks, cfg.block_size), dtype=np.uint8)
    col = 0
    for arr in make_arrays(cfg, rank):
        width = cfg.size_access * arr.dtype.itemsize
        view = arr.view(np.uint8).reshape(nblocks, width)
        blocks[:, col : col + width] = view
        col += width
    return blocks


def reference_file_contents(cfg: BenchConfig) -> bytes:
    """The byte-exact expected shared file."""
    nblocks = cfg.len_array // cfg.size_access
    stacked = np.empty((nblocks, cfg.nprocs, cfg.block_size), dtype=np.uint8)
    for r in range(cfg.nprocs):
        stacked[:, r, :] = _rank_blocks(cfg, r)
    return stacked.tobytes()


# ----------------------------------------------------------------------
# per-method writers
# ----------------------------------------------------------------------


def _combine_buffer(cfg: BenchConfig, rank: int, env: RankEnv) -> bytes:
    """Program 2 steps 1-2: the application-level combine buffer.

    Charged as one simulated allocation plus a memcpy of every byte —
    exactly the work OCIO forces on the application.
    """
    blocks = _rank_blocks(cfg, rank)
    env.compute(cfg.bytes_per_process / env.world.fabric.spec.memcpy_bandwidth)
    return blocks.tobytes()


def _bench_hints(cfg: BenchConfig) -> IoHints:
    """The collective-I/O hints a benchmark config implies."""
    return IoHints(cb_aggregation=cfg.aggregation, cb_nodes=cfg.cb_nodes)


def _ocio_write(env: RankEnv, cfg: BenchConfig):
    """Program 2: combine + file view + one collective write (coroutine)."""
    rank, P = env.rank, env.size
    memory = env.world.memory
    combine_alloc = memory.allocate(rank, cfg.bytes_per_process, "app.combine")
    buf = _combine_buffer(cfg, rank, env)
    etype = Contiguous(cfg.block_size, BYTE)
    filetype = etype.vector(cfg.len_array // cfg.size_access, 1, P)
    fh = yield from MpiFile.open(
        env, cfg.file_name, MODE_RDWR | MODE_CREATE, _bench_hints(cfg)
    )
    yield from fh.set_view(rank * cfg.block_size, etype, filetype)
    yield from fh.write_all(buf)
    yield from fh.close()
    memory.free(combine_alloc)


def _ocio_read(env: RankEnv, cfg: BenchConfig, verify: bool):
    rank, P = env.rank, env.size
    memory = env.world.memory
    combine_alloc = memory.allocate(rank, cfg.bytes_per_process, "app.combine")
    etype = Contiguous(cfg.block_size, BYTE)
    filetype = etype.vector(cfg.len_array // cfg.size_access, 1, P)
    fh = yield from MpiFile.open(env, cfg.file_name, MODE_RDONLY, _bench_hints(cfg))
    yield from fh.set_view(rank * cfg.block_size, etype, filetype)
    data = yield from fh.read_all(cfg.len_array // cfg.size_access, etype)
    yield from fh.close()
    # Scatter the combine buffer back into the arrays (charged memcpy).
    env.compute(cfg.bytes_per_process / env.world.fabric.spec.memcpy_bandwidth)
    if verify and data != _rank_blocks(cfg, rank).tobytes():
        raise BenchmarkError(f"rank {rank}: OCIO read returned wrong data")
    memory.free(combine_alloc)


def _tcio_config(cfg: BenchConfig, env: RankEnv) -> TcioConfig:
    stripe = cfg.segment_bytes or env.pfs.spec.stripe_size
    sized = TcioConfig.sized_for(cfg.total_bytes, env.size, stripe)
    if cfg.journal != "off":
        sized = replace(sized, journal=cfg.journal)
    if cfg.batched_writeback:
        sized = replace(sized, batched_writeback=True)
    if cfg.aggregation == "flat":
        return sized
    # Node mode: size the staging buffer to hold a whole node's share of
    # the file, so no deposit has to fall back on capacity in a single
    # write-then-close run (the benchmark has no mid-run flush).
    node_of = env.world.node_of[: env.size]
    ranks_per_node = max(node_of.count(n) for n in set(node_of))
    return replace(
        sized,
        aggregation="node",
        staging_segments=max(32, sized.segments_per_process * ranks_per_node),
    )


def _tcio_write(env: RankEnv, cfg: BenchConfig):
    """Program 3: per-block POSIX-style writes; TCIO does the rest
    (coroutine)."""
    arrays = make_arrays(cfg, env.rank)
    block = cfg.block_size
    fh = yield from TcioFile.open(env, cfg.file_name, TCIO_WRONLY, _tcio_config(cfg, env))
    for i in range(0, cfg.len_array, cfg.size_access):
        pos = env.rank * block + (i // cfg.size_access) * block * env.size
        for arr in arrays:
            yield from fh.write_at(pos, arr[i : i + cfg.size_access])
            pos += arr.dtype.itemsize * cfg.size_access
    yield from fh.close()
    return fh.stats.as_dict()


def _tcio_read(env: RankEnv, cfg: BenchConfig, verify: bool):
    rank, P = env.rank, env.size
    block = cfg.block_size
    sizes = [t.size for t in cfg.types]
    dests = [np.empty(cfg.len_array, dtype=t.np_dtype) for t in cfg.types]
    views = [memoryview(a).cast("B") for a in dests]
    fh = yield from TcioFile.open(env, cfg.file_name, TCIO_RDONLY, _tcio_config(cfg, env))
    for i in range(0, cfg.len_array, cfg.size_access):
        pos = rank * block + (i // cfg.size_access) * block * P
        for j in range(cfg.num_arrays):
            width = sizes[j] * cfg.size_access
            lo = i * sizes[j]
            yield from fh.read_at(pos, views[j][lo : lo + width])
            pos += width
    yield from fh.fetch()
    yield from fh.close()
    if verify:
        for got, exp in zip(dests, make_arrays(cfg, rank)):
            if not np.array_equal(got, exp):
                raise BenchmarkError(f"rank {rank}: TCIO read returned wrong data")
    return fh.stats.as_dict()


def _mpiio_write(env: RankEnv, cfg: BenchConfig):
    """Vanilla MPI-IO: one independent write per block piece (coroutine)."""
    arrays = make_arrays(cfg, env.rank)
    block = cfg.block_size
    fh = yield from MpiFile.open(env, cfg.file_name, MODE_RDWR | MODE_CREATE)
    for i in range(0, cfg.len_array, cfg.size_access):
        pos = env.rank * block + (i // cfg.size_access) * block * env.size
        for arr in arrays:
            yield from fh.write_at(pos, arr[i : i + cfg.size_access])
            pos += arr.dtype.itemsize * cfg.size_access
    yield from fh.close()


def _mpiio_read(env: RankEnv, cfg: BenchConfig, verify: bool):
    rank, P = env.rank, env.size
    block = cfg.block_size
    sizes = [t.size for t in cfg.types]
    dests = [np.empty(cfg.len_array, dtype=t.np_dtype) for t in cfg.types]
    views = [memoryview(a).cast("B") for a in dests]
    fh = yield from MpiFile.open(env, cfg.file_name, MODE_RDONLY)
    for i in range(0, cfg.len_array, cfg.size_access):
        pos = rank * block + (i // cfg.size_access) * block * P
        for j in range(cfg.num_arrays):
            width = sizes[j] * cfg.size_access
            lo = i * sizes[j]
            got = yield from fh.read_at(pos, width)
            views[j][lo : lo + width] = np.frombuffer(got, dtype=np.uint8)
            pos += width
    yield from fh.close()
    if verify:
        for got, exp in zip(dests, make_arrays(cfg, rank)):
            if not np.array_equal(got, exp):
                raise BenchmarkError(f"rank {rank}: MPI-IO read returned wrong data")


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------


@dataclass
class BenchResult:
    """One benchmark configuration's outcome."""

    config: BenchConfig
    elapsed: float = 0.0
    write_seconds: Optional[float] = None
    read_seconds: Optional[float] = None
    failed: bool = False
    fail_reason: str = ""
    #: SHA-256 of the shared file the write phase produced (byte-identity
    #: evidence for the parallel campaign runner's differential tests).
    file_sha256: str = ""
    tcio_stats: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    #: Phase name -> bound FaultPlan (only when faults were requested);
    #: gives callers the injection timeline and fallback log.
    fault_plans: dict = field(default_factory=dict)

    @property
    def write_throughput(self) -> Optional[float]:
        """Bytes/second of simulated time (None when failed/skipped)."""
        if self.failed or not self.write_seconds:
            return None
        return self.config.total_bytes / self.write_seconds

    @property
    def read_throughput(self) -> Optional[float]:
        """Bytes/second of simulated time (None when failed/skipped)."""
        if self.failed or not self.read_seconds:
            return None
        return self.config.total_bytes / self.read_seconds


def run_benchmark(
    cfg: BenchConfig,
    *,
    cluster: Optional[ClusterSpec] = None,
    do_write: bool = True,
    do_read: bool = True,
    verify: bool = True,
    trace: Optional[TraceRecorder] = None,
    faults: Optional[FaultSpec] = None,
    fault_seed: int = 0,
) -> BenchResult:
    """Run one (method, parameters) point; returns timings + verification.

    The write and read phases run as *separate simulated jobs*, matching
    the paper's methodology (separate measurements: a fresh job starts
    with cold network connections and matching queues). The read job's
    file system is seeded with the bytes the write job produced (or the
    reference contents if only reading). A simulated OOM (the Fig. 6/7
    48 GB failure) is reported as ``failed=True,
    fail_reason='out of memory'`` instead of raising.

    ``faults`` arms fault injection: each phase gets a fresh
    :class:`FaultPlan` derived from ``fault_seed`` (scoped ``"write"`` /
    ``"read"`` so the phases draw independent but reproducible fault
    streams); the bound plans land in ``result.fault_plans``. Byte
    verification runs exactly as in fault-free mode — a faulted run must
    still produce the reference file.
    """
    result = BenchResult(config=cfg)
    written: Optional[bytes] = None

    def make_plan(phase: str) -> Optional[FaultPlan]:
        if faults is None:
            return None
        plan = FaultPlan(faults, fault_seed, scope=phase)
        result.fault_plans[phase] = plan
        return plan

    def phase_main(phase: str):
        def main(env: RankEnv):
            memory = env.world.memory
            arrays_alloc = memory.allocate(
                env.rank, cfg.bytes_per_process, "app.arrays"
            )
            stats: dict = {}
            yield from collectives.barrier(env.comm)
            t0 = env.now
            if phase == "write":
                if cfg.method is Method.OCIO:
                    yield from _ocio_write(env, cfg)
                elif cfg.method is Method.TCIO:
                    stats = yield from _tcio_write(env, cfg)
                else:
                    yield from _mpiio_write(env, cfg)
            else:
                if cfg.method is Method.OCIO:
                    yield from _ocio_read(env, cfg, verify)
                elif cfg.method is Method.TCIO:
                    stats = yield from _tcio_read(env, cfg, verify)
                else:
                    yield from _mpiio_read(env, cfg, verify)
            yield from collectives.barrier(env.comm)
            memory.free(arrays_alloc)
            return env.now - t0, stats

        return main

    try:
        if do_write:
            run: MpiRunResult = run_mpi(
                cfg.nprocs,
                phase_main("write"),
                cluster=cluster,
                trace=trace,
                faults=make_plan("write"),
            )
            result.elapsed += run.elapsed
            result.write_seconds = max(t for t, _ in run.returns)
            result.tcio_stats = run.returns[0][1]
            result.counters.update(
                {f"write.{k}": v for k, v in run.trace.summary().items()}
            )
            written = run.pfs.lookup(cfg.file_name).contents()
            result.file_sha256 = hashlib.sha256(written).hexdigest()
            if verify:
                expected = reference_file_contents(cfg)
                if written != expected:
                    raise BenchmarkError(
                        f"{cfg.method.name}: shared file mismatch "
                        f"({len(written)} bytes vs {len(expected)} expected)"
                    )
        if do_read:
            contents = written if written is not None else reference_file_contents(cfg)

            def seed(pfs) -> None:
                f = pfs.create(cfg.file_name)
                f.write_bytes(0, contents)

            run = run_mpi(
                cfg.nprocs,
                phase_main("read"),
                cluster=cluster,
                trace=trace,
                pfs_init=seed,
                faults=make_plan("read"),
            )
            result.elapsed += run.elapsed
            result.read_seconds = max(t for t, _ in run.returns)
            if run.returns[0][1]:
                result.tcio_stats = run.returns[0][1]
            result.counters.update(
                {f"read.{k}": v for k, v in run.trace.summary().items()}
            )
    except OutOfMemoryError as exc:
        result.failed = True
        result.fail_reason = "out of memory"
        result.counters["oom_detail"] = str(exc)
    return result
