"""The seeded chaos soak: many randomized fault runs, zero tolerance.

One *iteration* draws a fault scenario from a seeded stream — which
family, which victim, which protocol step, which fault plan — runs it,
and checks the family's invariants. The three families:

* ``tenancy`` — two jobs share one PFS; one is killed by a fail-stop
  crash mid-protocol. The dead job must stay contained (the survivor
  completes with byte-oracle-identical output), no lock-manager queue
  may hold an orphaned waiter, and ``faults.data_at_risk`` stays under
  the bound (a journaled job flags nothing).
* ``tcio-survive`` — a bare TCIO job with ``TcioConfig.ft`` loses one
  rank at a drawn protocol step and must complete degraded: survivor
  bytes identical to the crash-free reference outside the victim's
  uncommitted region, fsck clean, at least one survive round recorded
  (:func:`repro.crash.harness.run_survive_cell`).
* ``server-failover`` — a delegate I/O-server session with
  ``IoServerConfig.failover`` loses one delegate at a drawn ``srv-*``
  step and must complete with the final image byte-identical to the
  analytic oracle — client-side replay loses *nothing*
  (:func:`repro.crash.harness.run_server_survive_cell`).

Everything is a pure function of the root seed: the drawn parameters,
the virtual-clock schedules, the final bytes, and the metrics document
— so CI can run the same seed twice and demand byte-identical reports
(the determinism job), and any violating iteration is replayable from
its ``(seed, index)`` alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.util.errors import ReproError
from repro.util.rng import derive_seed

#: Iteration families, in draw order. The weights lean on the cheap
#: tenancy runs; the survive families dominate wall-clock.
FAMILIES = ("tenancy", "tcio-survive", "server-failover")

#: Bound for the data-at-risk invariant: a chaos workload writes far
#: less than this, so anything larger signals runaway silent loss.
DATA_AT_RISK_BOUND = 1 << 20


class ChaosError(ReproError):
    """A malformed chaos configuration."""


@dataclass(frozen=True)
class ChaosConfig:
    """One soak campaign's shape."""

    iterations: int = 50
    seed: int = 0
    families: tuple[str, ...] = FAMILIES

    def validate(self) -> None:
        if self.iterations < 1:
            raise ChaosError("need at least one iteration")
        bad = [f for f in self.families if f not in FAMILIES]
        if bad:
            raise ChaosError(f"unknown families {bad} (choose from {FAMILIES})")
        if not self.families:
            raise ChaosError("need at least one family")


@dataclass
class IterationOutcome:
    """One iteration's draw, result, and any invariant violations."""

    index: int
    family: str
    seed: int
    params: dict
    violations: list[str] = field(default_factory=list)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def row(self) -> dict:
        """The iteration as a JSON-stable dict (metrics document row)."""
        return {
            "index": self.index,
            "family": self.family,
            "seed": self.seed,
            "params": self.params,
            "ok": self.ok,
            "violations": list(self.violations),
            "detail": self.detail,
        }


@dataclass
class ChaosReport:
    """A whole soak campaign's outcome."""

    config: ChaosConfig
    iterations: list[IterationOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(it.ok for it in self.iterations)

    @property
    def violations(self) -> list[IterationOutcome]:
        return [it for it in self.iterations if not it.ok]

    def metrics_payload(self) -> dict:
        """The deterministic soak document (pure function of the seed)."""
        by_family: dict[str, int] = {}
        for it in self.iterations:
            by_family[it.family] = by_family.get(it.family, 0) + 1
        return {
            "chaos": {
                "seed": self.config.seed,
                "iterations": self.config.iterations,
                "families": list(self.config.families),
                "by_family": by_family,
                "violations": sum(1 for it in self.iterations if not it.ok),
            },
            "rows": [it.row() for it in self.iterations],
        }

    def metrics_json(self) -> str:
        """Canonical serialization — the determinism job diffs this."""
        return json.dumps(self.metrics_payload(), indent=1, sort_keys=True) + "\n"

    def write_metrics(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.metrics_json())

    def render(self) -> str:
        lines = [
            f"chaos soak: {len(self.iterations)} iterations, "
            f"seed {self.config.seed}"
        ]
        for it in self.iterations:
            state = "ok " if it.ok else "FAIL"
            lines.append(
                f"  [{it.index:>3}] {state} {it.family:<16} "
                f"seed={it.seed} {it.detail}"
            )
            for v in it.violations:
                lines.append(f"        violated: {v}")
        bad = len(self.violations)
        lines.append(
            "  => zero invariant violations" if not bad
            else f"  => {bad} iteration(s) violated invariants"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the iteration families
# ----------------------------------------------------------------------


def _orphan_lock_waiters(pfs) -> int:
    """Waiters still queued on any file's lock manager after the run."""
    return sum(pfs.lookup(name).locks.queued_count for name in pfs.list_files())


def _iterate_tenancy(out: IterationOutcome) -> None:
    """Two jobs, one killed: containment + oracle + lock hygiene."""
    from repro.faults import FaultSpec
    from repro.tenancy import JobSpec, TenancyScenario, run_scenario
    from repro.util.errors import TenancyError

    s = out.seed
    steps = ("pre-deposit", "post-deposit", "mid-flush", "pre-commit")
    step = steps[derive_seed(s, "step") % len(steps)]
    crash_rank = derive_seed(s, "rank") % 4
    crash_after = 1 + derive_seed(s, "after") % 2
    victim_journal = "epoch" if derive_seed(s, "journal") % 2 else "off"
    if victim_journal == "off" and step in ("mid-flush", "pre-commit"):
        step = "post-deposit"  # epoch-only steps never fire unjournaled
    out.params = {
        "step": step, "crash_rank": crash_rank,
        "crash_after": crash_after, "victim_journal": victim_journal,
    }
    scenario = TenancyScenario(
        jobs=(
            JobSpec(name="alpha", workload="tcio", nranks=4, journal="epoch"),
            JobSpec(
                name="victim", workload="tcio", nranks=4,
                journal=victim_journal, arrival=0.0005,
            ),
        ),
        seed=derive_seed(s, "scenario") % (1 << 31),
    )
    spec = FaultSpec(
        crash_rank=crash_rank, crash_step=step, crash_after=crash_after
    )
    try:
        result = run_scenario(
            scenario, faults={"victim": spec}, solo_baseline=False
        )
    except TenancyError as exc:
        # verify=True raises when contention (or the crash) changed a
        # *clean* job's bytes — the central oracle violation.
        out.violations.append(f"byte oracle: {exc}")
        return
    alpha, victim = result.jobs["alpha"], result.jobs["victim"]
    crashed = bool(victim.world.dead_ranks)
    if alpha.aborted is not None:
        out.violations.append(
            f"crash escaped containment: survivor job aborted "
            f"({alpha.aborted})"
        )
    if crashed and victim.aborted is None:
        out.violations.append("victim job lost a rank yet reported clean")
    orphans = _orphan_lock_waiters(result.pfs)
    if orphans:
        out.violations.append(f"{orphans} orphan lock waiter(s) left queued")
    for name, job in result.jobs.items():
        at_risk = job.recorder.registry.counter("faults.data_at_risk").total
        if job.spec.journal == "epoch" and at_risk > 0:
            out.violations.append(
                f"job {name}: {int(at_risk)}b data_at_risk despite journal"
            )
        elif at_risk > DATA_AT_RISK_BOUND:
            out.violations.append(
                f"job {name}: data_at_risk {int(at_risk)}b over bound"
            )
    out.detail = (
        f"step={step} rank={crash_rank} "
        f"{'crashed+contained' if crashed else 'no hit (step unreached)'}"
    )


def _iterate_tcio_survive(out: IterationOutcome) -> None:
    """FT TCIO: one rank dies at a drawn step, the job completes."""
    from repro.crash.harness import STEPS, run_survive_cell

    s = out.seed
    step = STEPS[derive_seed(s, "step") % len(STEPS)]
    victim = derive_seed(s, "victim") % 4
    out.params = {"step": step, "victim": victim}
    cell = run_survive_cell(
        step, nranks=4, cores_per_node=2,
        seed=derive_seed(s, "plan") % (1 << 31), victim=victim,
    )
    if not cell.ok:
        out.violations.append(f"survive cell failed: {cell.detail}")
    out.detail = f"step={step} victim={victim} {cell.detail}"


def _iterate_server_failover(out: IterationOutcome) -> None:
    """Failover ioserver: one delegate dies, the session completes."""
    from repro.crash.harness import SERVER_STEPS, run_server_survive_cell

    s = out.seed
    step = SERVER_STEPS[derive_seed(s, "step") % len(SERVER_STEPS)]
    # The small shape has delegates (0, 2); draw which one dies.
    victim = (0, 2)[derive_seed(s, "victim") % 2]
    out.params = {"step": step, "victim": victim}
    cell = run_server_survive_cell(
        step, nclients=4, nranks=4, cores_per_node=2,
        seed=derive_seed(s, "plan") % (1 << 31), victim=victim,
    )
    if not cell.ok:
        out.violations.append(f"failover cell failed: {cell.detail}")
    out.detail = f"step={step} victim={victim} {cell.detail}"


_RUNNERS = {
    "tenancy": _iterate_tenancy,
    "tcio-survive": _iterate_tcio_survive,
    "server-failover": _iterate_server_failover,
}


def run_iteration(config: ChaosConfig, index: int) -> IterationOutcome:
    """Run iteration *index* of the campaign (pure function of the seed).

    Replayable in isolation: a violating row's ``(seed, index)`` is all
    it takes to rerun exactly that scenario under a debugger.
    """
    it_seed = derive_seed(config.seed, "chaos", index)
    family = config.families[it_seed % len(config.families)]
    out = IterationOutcome(index=index, family=family, seed=it_seed, params={})
    _RUNNERS[family](out)
    return out


def run_soak(
    config: Optional[ChaosConfig] = None, *, progress=None
) -> ChaosReport:
    """Run the whole campaign; *progress* (if given) sees each outcome."""
    config = config or ChaosConfig()
    config.validate()
    report = ChaosReport(config=config)
    for index in range(config.iterations):
        out = run_iteration(config, index)
        report.iterations.append(out)
        if progress is not None:
            progress(out)
    return report
