"""``repro.chaos`` — the seeded soak harness over fault scenarios.

Randomized-but-replayable robustness testing: every iteration derives
its whole scenario (family, victim, protocol step, fault plan) from the
campaign seed via :func:`repro.util.rng.derive_seed`, runs it on the
virtual cluster, and asserts the survive-and-complete invariants —
fsck-clean journals, byte oracles for every surviving job, no orphaned
lock waiters, bounded data-at-risk. See ``docs/faults.md``.
"""

from repro.chaos.soak import (
    DATA_AT_RISK_BOUND,
    FAMILIES,
    ChaosConfig,
    ChaosError,
    ChaosReport,
    IterationOutcome,
    run_iteration,
    run_soak,
)

__all__ = [
    "ChaosConfig",
    "ChaosError",
    "ChaosReport",
    "DATA_AT_RISK_BOUND",
    "FAMILIES",
    "IterationOutcome",
    "run_iteration",
    "run_soak",
]
