"""Collective operations built on simulated point-to-point messaging.

Algorithms follow the classic MPICH choices: dissemination barrier,
binomial-tree broadcast/reduce, recursive allgather, and the pairwise
(post-all-irecv, post-all-isend, waitall) all-to-all that the paper
describes for ROMIO's exchange phase. Every collective allocates a fresh
tag from the communicator's collective sequence so back-to-back collectives
never cross-match.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.simmpi.comm import (
    CTX_COLL,
    Communicator,
    Request,
    pack_object,
    unpack_object,
    wait_all,
)
from repro.sim.engine import active_process
from repro.sim.sync import SimBarrier
from repro.util.errors import MpiError


def _next_tag(comm: Communicator) -> int:
    comm._coll_seq += 1
    return comm._coll_seq


# ----------------------------------------------------------------------
# barrier
# ----------------------------------------------------------------------


def barrier(comm: Communicator):
    """Barrier with a dissemination-algorithm cost model (coroutine).

    Semantically a counter barrier (everyone leaves when the last rank
    arrives — one thread handoff per rank); each rank is charged the
    per-rank cost of ceil(log2 P) dissemination rounds of small messages,
    so the modeled time matches the message implementation without paying
    P*log(P) real context switches per call.
    """
    size = comm.size
    if size == 1:
        return
    comm._check_revoked("mpi.barrier")
    if comm.world.dead_ranks:
        # Fail-stop: a dead *member* means this barrier can never
        # complete; surface it at entry rather than parking forever.
        # The check is group-aware so a shrunken survivor communicator
        # (whose group excludes the dead) keeps working after a crash.
        dead_members = sorted(
            r for r in comm.group_world_ranks() if r in comm.world.dead_ranks
        )
        if dead_members:
            comm.world.check_alive(comm.rank, dead_members[0], "mpi.barrier")
    tag = _next_tag(comm)
    proc = active_process()
    rounds = max(1, (size - 1).bit_length())
    spec = comm.world.fabric.spec
    per_round = (
        spec.latency + 2.0 * spec.per_message_overhead + spec.match_overhead
    )
    proc.charge(rounds * per_round)
    yield from proc.settle()
    key = ("coll-barrier", comm._comm_id)
    bar = comm.world.shared.get(key)
    if bar is None:
        bar = SimBarrier(size, name=f"mpi-barrier-{comm._comm_id}")
        comm.world.shared[key] = bar
    yield from bar.wait()
    del tag


# ----------------------------------------------------------------------
# broadcast / gather / allgather
# ----------------------------------------------------------------------


def bcast(comm: Communicator, obj: Any, root: int = 0):
    """Binomial-tree broadcast of a Python object; returns it on every rank.

    Coroutine: ``value = yield from bcast(...)``.
    """
    size, rank = comm.size, comm.rank
    if not (0 <= root < size):
        raise MpiError(f"bad bcast root {root}")
    if size == 1:
        return obj
    tag = _next_tag(comm)
    vrank = (rank - root) % size  # virtual rank with root at 0
    payload: bytes | None = pack_object(obj) if rank == root else None
    if vrank != 0:
        # Receive from parent: clear the lowest set bit of vrank.
        parent_v = vrank & (vrank - 1)
        parent = (parent_v + root) % size
        payload = yield from comm.recv(parent, tag, context=CTX_COLL)
    assert payload is not None
    # Forward to children: vrank | (1 << k) for k above our lowest set bit.
    low = _lowest_set_bit_exclusive(vrank, size)
    mask = 1
    while mask < low:
        child_v = vrank | mask
        if child_v < size:
            yield from comm.isend(payload, (child_v + root) % size, tag, context=CTX_COLL)
        mask <<= 1
    return unpack_object(payload)


def _lowest_set_bit_exclusive(vrank: int, size: int) -> int:
    """The range of child masks for binomial trees: below vrank's lowest set
    bit, or the full tree span for the (virtual) root."""
    if vrank == 0:
        span = 1
        while span < size:
            span <<= 1
        return span
    return vrank & (-vrank)


def gather(comm: Communicator, obj: Any, root: int = 0):
    """Gather one object per rank to *root* (list indexed by rank) else None.

    Flat gather (each rank sends straight to the root): simple, and exactly
    how ROMIO collects per-rank access metadata.
    """
    size, rank = comm.size, comm.rank
    if not (0 <= root < size):
        raise MpiError(f"bad gather root {root}")
    tag = _next_tag(comm)
    if rank != root:
        yield from comm.send_object(obj, root, tag, context=CTX_COLL)
        return None
    out: list[Any] = [None] * size
    out[root] = obj
    reqs = []
    for src in range(size):
        if src != root:
            req = yield from comm.irecv(src, tag, context=CTX_COLL)
            reqs.append((src, req))
    yield from wait_all([req for _, req in reqs])
    for src, req in reqs:
        payload = req.payload
        assert payload is not None
        out[src] = unpack_object(payload)
    return out


def scatter(comm: Communicator, objs: Optional[Sequence[Any]], root: int = 0):
    """MPI_Scatter of Python objects: entry *i* of the root's list goes to
    rank *i*; returns the caller's entry."""
    size, rank = comm.size, comm.rank
    if not (0 <= root < size):
        raise MpiError(f"bad scatter root {root}")
    tag = _next_tag(comm)
    if rank == root:
        if objs is None or len(objs) != size:
            raise MpiError(f"scatter needs exactly {size} entries at the root")
        for dst in range(size):
            if dst != root:
                yield from comm.isend(pack_object(objs[dst]), dst, tag, context=CTX_COLL)
        return objs[root]
    payload = yield from comm.recv(root, tag, context=CTX_COLL)
    return unpack_object(payload)


def allgather(comm: Communicator, obj: Any):
    """Bruck-style allgather: ceil(log2 P) rounds, no root hotspot.

    Round k ships each rank's current collection (which doubles every
    round) to ``rank - 2^k``; after the last round every rank holds all P
    contributions. This is the algorithm class real MPIs use — a flat
    gather-to-root would serialize P matches at one rank and misattribute
    a quadratic cost to every metadata exchange.
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return [obj]
    tag = _next_tag(comm)
    collected: dict[int, Any] = {rank: obj}
    mask = 1
    round_no = 0
    while mask < size:
        dst = (rank - mask) % size
        src = (rank + mask) % size
        req = yield from comm.irecv(src, tag + round_no, context=CTX_COLL)
        yield from comm.isend(pack_object(collected), dst, tag + round_no, context=CTX_COLL)
        payload = yield from req.wait()
        assert payload is not None
        collected.update(unpack_object(payload))
        mask <<= 1
        round_no += 1
    comm._coll_seq += round_no
    if len(collected) != size:
        raise MpiError(f"allgather assembled {len(collected)}/{size} entries")
    return [collected[r] for r in range(size)]


def alltoall(comm: Communicator, send: Sequence[Any]):
    """Personalized all-to-all of Python objects.

    Posts every irecv, then every isend, then waits — the exact pattern the
    paper attributes to OCIO's exchange phase ("OCIO first issues MPI_Irecv
    to receive data from all processes, then issues MPI_Isend...").
    """
    size, rank = comm.size, comm.rank
    if len(send) != size:
        raise MpiError(f"alltoall needs {size} entries, got {len(send)}")
    tag = _next_tag(comm)
    recv_reqs: list[Request] = []
    for src in range(size):
        if src != rank:
            req = yield from comm.irecv(src, tag, context=CTX_COLL)
            recv_reqs.append(req)
    for dst in range(size):
        if dst != rank:
            yield from comm.isend(pack_object(send[dst]), dst, tag, context=CTX_COLL)
    yield from wait_all(recv_reqs)
    out: list[Any] = [None] * size
    out[rank] = send[rank]
    idx = 0
    for src in range(size):
        if src == rank:
            continue
        payload = recv_reqs[idx].payload
        idx += 1
        assert payload is not None
        out[src] = unpack_object(payload)
    return out


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------


def reduce(
    comm: Communicator, value: Any, op: Callable[[Any, Any], Any], root: int = 0
):
    """Binomial-tree reduction with a commutative/associative *op*."""
    size, rank = comm.size, comm.rank
    if not (0 <= root < size):
        raise MpiError(f"bad reduce root {root}")
    tag = _next_tag(comm)
    vrank = (rank - root) % size
    acc = value
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            yield from comm.send_object(acc, parent, tag, context=CTX_COLL)
            return None
        child_v = vrank | mask
        if child_v < size:
            child = (child_v + root) % size
            received = yield from comm.recv_object(child, tag, context=CTX_COLL)
            acc = op(acc, received)
        mask <<= 1
    return acc if rank == root else None


def allreduce(comm: Communicator, value: Any, op: Callable[[Any, Any], Any]):
    """Reduce to rank 0 then broadcast the result (coroutine)."""
    reduced = yield from reduce(comm, value, op, root=0)
    return (yield from bcast(comm, reduced, root=0))


def exscan(comm: Communicator, value: int):
    """Exclusive prefix sum of integers (rank 0 gets 0). Linear chain."""
    size, rank = comm.size, comm.rank
    tag = _next_tag(comm)
    prefix = 0
    if rank > 0:
        prefix = yield from comm.recv_object(rank - 1, tag, context=CTX_COLL)
    if rank + 1 < size:
        yield from comm.isend(pack_object(prefix + value), rank + 1, tag, context=CTX_COLL)
    return prefix
