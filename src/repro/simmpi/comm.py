"""Point-to-point messaging: send/recv/isend/irecv with MPI matching rules.

Matching follows MPI semantics: (context, source, tag) with ``ANY_SOURCE`` /
``ANY_TAG`` wildcards, non-overtaking order per (source, context, tag).
Transport uses the eager protocol for small messages (sender completes
locally; payload is buffered at the receiver) and rendezvous for large ones
(RTS/CTS handshake, data moves only once the receive is posted) — the
protocol split real MPIs use and the reason synchronized all-to-all phases
behave differently from TCIO's staggered one-sided traffic.
"""

from __future__ import annotations

import pickle
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional, TYPE_CHECKING

import numpy as np

from repro.sim.engine import active_process
from repro.sim.process import SimProcess
from repro.util.errors import MpiError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.mpi import MpiWorld

ANY_SOURCE = -1
ANY_TAG = -1

#: match contexts: user point-to-point vs. library-internal collectives
CTX_PT2PT = 0
CTX_COLL = 1


def _payload_bytes(data: Any) -> bytes:
    """Normalize a send payload to bytes (numpy arrays are C-order copies)."""
    if isinstance(data, bytes):
        return data
    if isinstance(data, (bytearray, memoryview)):
        return bytes(data)
    if isinstance(data, np.ndarray):
        return np.ascontiguousarray(data).tobytes()
    raise MpiError(f"unsupported send payload type {type(data).__name__}")


def pack_object(obj: Any) -> bytes:
    """Serialize a Python object for metadata messages (pickle)."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_object(payload: bytes) -> Any:
    """Deserialize a metadata message produced by :func:`pack_object`."""
    return pickle.loads(payload)


@dataclass
class Status:
    """Receive-side completion info (MPI_Status)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    count: int = 0


class _WaitGroup:
    """Shared completion counter: one thread handoff for N requests."""

    __slots__ = ("proc", "remaining")

    def __init__(self, proc: SimProcess, remaining: int):
        self.proc = proc
        self.remaining = remaining

    def one_done(self) -> None:
        """Count one completion; wake the waiter when all arrived."""
        self.remaining -= 1
        if self.remaining == 0:
            self.proc.wake()


class Request:
    """Handle for a nonblocking operation; complete via wait()/test()."""

    __slots__ = ("done", "payload", "status", "_waiter", "_group", "kind")

    def __init__(self, kind: str):
        self.kind = kind
        self.done = False
        self.payload: Optional[bytes] = None
        self.status = Status()
        self._waiter: Optional[SimProcess] = None
        self._group: Optional[_WaitGroup] = None

    def _complete(self, payload: Optional[bytes] = None) -> None:
        if self.done:
            raise MpiError(f"{self.kind} request completed twice")
        self.done = True
        self.payload = payload
        if self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            waiter.wake()
        if self._group is not None:
            group, self._group = self._group, None
            group.one_done()

    def test(self) -> bool:
        """Nonblocking completion check (MPI_Test)."""
        return self.done

    def wait(self):
        """Park until complete; returns the payload for receive requests.

        Coroutine: callers ``yield from req.wait()``. An interrupt thrown
        at the wait point (fail-stop notification) detaches the waiter so
        a late completion of the abandoned request cannot wake the process
        out of some *later* unrelated wait; a spurious wake re-parks.
        """
        if not self.done:
            proc = active_process()
            yield from proc.settle()
            while not self.done:
                if (self._waiter is not None and self._waiter is not proc) or (
                    self._group is not None
                ):
                    raise MpiError("two processes waiting on one request")
                self._waiter = proc
                try:
                    yield from proc.block(f"wait:{self.kind}")
                finally:
                    if self._waiter is proc:
                        self._waiter = None
        return self.payload


def wait_all(requests: list[Request]):
    """MPI_Waitall: a single park no matter how many requests.

    At P=1024 a two-phase exchange waits on ~1000 receives per rank;
    incomplete requests share a countdown group and the caller parks
    exactly once. Coroutine: ``yield from wait_all(reqs)``.
    """
    proc = active_process()
    yield from proc.settle()
    while True:
        pending = [r for r in requests if not r.done]
        if not pending:
            return
        group = _WaitGroup(proc, len(pending))
        for r in pending:
            if r._waiter is not None or r._group is not None:
                raise MpiError("request already being waited on")
            r._group = group
        try:
            yield from proc.block(f"waitall({len(pending)})")
        finally:
            # Detach on interrupt (fail-stop) so stragglers completing the
            # abandoned requests cannot wake this process elsewhere.
            for r in pending:
                if r._group is group:
                    r._group = None


@dataclass
class _Envelope:
    """A message either in flight or queued unexpected at the receiver."""

    src: int
    tag: int
    context: int
    payload: Optional[bytes]  # None until a rendezvous transfer lands
    size: int
    send_req: Optional[Request] = None
    arrived: bool = False  # eager data (or rendezvous RTS) reached receiver
    consumed: bool = False  # matched to a receive (lazy queue removal)
    seq: int = 0


@dataclass
class _PostedRecv:
    src: int
    tag: int
    context: int
    req: Request
    matched: bool = False  # lazy queue removal
    seq: int = 0


class Mailbox:
    """Per-rank matching state.

    Exact (context, source, tag) lookups are O(1) via keyed deques —
    essential because a P=1024 two-phase exchange delivers ~P^2 messages
    into P posted receives per rank. Wildcard posts/probes fall back to
    ordered scans of small side lists; consumed entries are removed
    lazily.
    """

    __slots__ = (
        "unexpected_by_key",
        "unexpected_all",
        "posted_by_key",
        "posted_wild",
        "_seq",
        "n_posted",
        "n_unexpected",
    )

    def __init__(self) -> None:
        self.unexpected_by_key: dict[tuple[int, int, int], Deque[_Envelope]] = {}
        self.unexpected_all: Deque[_Envelope] = deque()
        self.posted_by_key: dict[tuple[int, int, int], Deque[_PostedRecv]] = {}
        self.posted_wild: Deque[_PostedRecv] = deque()
        self._seq = 0
        self.n_posted = 0  # live (unmatched) posted receives
        self.n_unexpected = 0  # live (unconsumed) unexpected messages

    @property
    def queue_pressure(self) -> int:
        """Entries the matching engine must consider for a new arrival."""
        return self.n_posted + self.n_unexpected

    def next_seq(self) -> int:
        """Allocate the next posting/arrival sequence number."""
        self._seq += 1
        return self._seq

    # -- posted receives ------------------------------------------------
    def add_posted(self, post: _PostedRecv) -> None:
        """Queue a posted receive for matching."""
        post.seq = self.next_seq()
        self.n_posted += 1
        if post.src == ANY_SOURCE or post.tag == ANY_TAG:
            self.posted_wild.append(post)
        else:
            key = (post.context, post.src, post.tag)
            self.posted_by_key.setdefault(key, deque()).append(post)

    def match_posted(self, env: _Envelope) -> Optional[_PostedRecv]:
        """Earliest-posted receive matching *env* (marked matched)."""
        key = (env.context, env.src, env.tag)
        exact: Optional[_PostedRecv] = None
        dq = self.posted_by_key.get(key)
        if dq:
            while dq and dq[0].matched:
                dq.popleft()
            if dq:
                exact = dq[0]
        wild: Optional[_PostedRecv] = None
        for post in self.posted_wild:
            if not post.matched and _matches(env, post):
                wild = post
                break
        chosen = None
        if exact is not None and (wild is None or exact.seq < wild.seq):
            chosen = exact
            dq.popleft()  # type: ignore[union-attr]
        elif wild is not None:
            chosen = wild
        if chosen is not None:
            chosen.matched = True
            self.n_posted -= 1
        return chosen

    # -- unexpected messages ---------------------------------------------
    def add_unexpected(self, env: _Envelope) -> None:
        """Queue an arrived-but-unmatched message."""
        env.seq = self.next_seq()
        self.n_unexpected += 1
        key = (env.context, env.src, env.tag)
        self.unexpected_by_key.setdefault(key, deque()).append(env)
        self.unexpected_all.append(env)

    def match_unexpected(self, post: _PostedRecv) -> Optional[_Envelope]:
        """Earliest-arrived unexpected message matching *post* (consumed)."""
        if post.src == ANY_SOURCE or post.tag == ANY_TAG:
            while self.unexpected_all and self.unexpected_all[0].consumed:
                self.unexpected_all.popleft()
            for env in self.unexpected_all:
                if not env.consumed and _matches(env, post):
                    env.consumed = True
                    self.n_unexpected -= 1
                    return env
            return None
        key = (post.context, post.src, post.tag)
        dq = self.unexpected_by_key.get(key)
        if not dq:
            return None
        while dq and dq[0].consumed:
            dq.popleft()
        if not dq:
            return None
        env = dq.popleft()
        env.consumed = True
        self.n_unexpected -= 1
        return env


def _matches(env: _Envelope, post: _PostedRecv) -> bool:
    if env.context != post.context:
        return False
    if post.src != ANY_SOURCE and post.src != env.src:
        return False
    if post.tag != ANY_TAG and post.tag != env.tag:
        return False
    return True


class Communicator:
    """A group of ranks sharing a matching context.

    One Communicator object exists per (rank, group); it is only usable from
    that rank's simulated process (like ``MPI_COMM_WORLD`` seen from one
    rank).
    """

    def __init__(self, world: "MpiWorld", rank: int, comm_id: object = 0):
        self.world = world
        self._rank = rank
        self._comm_id = comm_id  # int or nested tuple (parent_id, dup_seq)
        self._coll_seq = 0  # per-rank collective sequence number
        self._dup_seq = 0

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self.world.nranks

    def world_rank(self, local_rank: int) -> int:
        """Translate a communicator-local rank to a world rank (identity
        for world-spanning communicators; overridden by sub-communicators)."""
        return local_rank

    def group_world_ranks(self) -> tuple[int, ...]:
        """World ranks of every member, in communicator rank order."""
        return tuple(range(self.world.nranks))

    # ------------------------------------------------------------------
    # ULFM-style fault tolerance (see repro.simmpi.ft)
    # ------------------------------------------------------------------
    @property
    def is_revoked(self) -> bool:
        """Whether :meth:`revoke` has been called on this communicator."""
        return self._comm_id in self.world.revoked

    def revoke(self) -> None:
        """ULFM ``MPI_Comm_revoke``: mark this communicator unusable.

        Local and immediate in the simulator (the world state is global):
        every subsequent point-to-point or collective entry on this comm
        id — from any member — raises :class:`CommRevoked`. Idempotent.
        """
        self.world.revoked.add(self._comm_id)

    def shrink(self):
        """ULFM ``MPI_Comm_shrink``: survivors' re-numbered communicator.

        Coroutine returning a fresh communicator over this comm's living
        members (see :func:`repro.simmpi.ft.shrink` for the protocol).
        """
        from repro.simmpi.ft import shrink

        return shrink(self)

    def agree(self, flags: int = 0):
        """ULFM ``MPI_Comm_agree``: fault-aware AND-agreement on *flags*.

        Coroutine returning ``(agreed_flags, comm)`` where *comm* is the
        survivor communicator the agreement completed on (see
        :func:`repro.simmpi.ft.agree`).
        """
        from repro.simmpi.ft import agree

        return agree(self, flags)

    def _check_revoked(self, op: str) -> None:
        if self.world.revoked and self._comm_id in self.world.revoked:
            from repro.util.errors import CommRevoked

            raise CommRevoked(self._comm_id, self._rank, op)

    def dup(self) -> "Communicator":
        """MPI_Comm_dup: a new matching context over the same group.

        Like the real call this is collective: every rank must dup in the
        same order, which is what makes the derived id — (parent id, dup
        sequence number) — agree across ranks without any communication.
        Library-internal traffic (MPI-IO, TCIO) can then never collide
        with application messages.
        """
        self._dup_seq += 1
        return Communicator(self.world, self._rank, (self._comm_id, self._dup_seq))

    # ------------------------------------------------------------------
    # sends
    # ------------------------------------------------------------------
    def isend(self, data: Any, dest: int, tag: int = 0, *, context: int = CTX_PT2PT):
        """Nonblocking send; payload is captured (copied) immediately.

        Coroutine returning the :class:`Request`:
        ``req = yield from comm.isend(...)``.
        """
        yield from active_process().settle()
        self._check_peer(dest)
        payload = _payload_bytes(data)
        req = Request("isend")
        env = _Envelope(
            src=self._rank,
            tag=tag,
            context=self._ctx(context),
            payload=payload,
            size=len(payload),
            send_req=req,
        )
        world = self.world
        if len(payload) <= world.fabric.spec.eager_limit:
            # Eager: sender completes locally; data lands at delivery time.
            t = world.fabric.delivery_time(self._rank, dest, len(payload))
            world.engine.schedule_at(t, lambda: world.arrive(dest, env))
            req._complete()
        else:
            # Rendezvous: RTS travels now; data moves once matched.
            env.payload = None
            env._rendezvous_data = payload  # type: ignore[attr-defined]
            t = world.fabric.control_delay(self._rank, dest)
            world.engine.schedule_at(t, lambda: world.arrive(dest, env))
        if world.trace is not None:
            world.trace.count("mpi.send", len(payload))
            world.trace.registry.histogram("mpi.msg_bytes").observe(len(payload))
        return req

    def send(self, data: Any, dest: int, tag: int = 0, *, context: int = CTX_PT2PT):
        """Blocking send (completes when the send request does)."""
        req = yield from self.isend(data, dest, tag, context=context)
        yield from req.wait()

    def isend_object(self, obj: Any, dest: int, tag: int = 0, *, context: int = CTX_PT2PT):
        """Nonblocking send of a pickled Python object (coroutine)."""
        return (yield from self.isend(pack_object(obj), dest, tag, context=context))

    def send_object(self, obj: Any, dest: int, tag: int = 0, *, context: int = CTX_PT2PT):
        """Blocking send of a pickled Python object (coroutine)."""
        yield from self.send(pack_object(obj), dest, tag, context=context)

    # ------------------------------------------------------------------
    # receives
    # ------------------------------------------------------------------
    def irecv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, *, context: int = CTX_PT2PT
    ):
        """Nonblocking receive; coroutine returning the :class:`Request`."""
        yield from active_process().settle()
        self._check_revoked("mpi.recv")
        if source != ANY_SOURCE and self.world.dead_ranks:
            # source is a world rank here (SubCommunicator translates
            # before delegating to this base implementation).
            self.world.check_alive(self._rank, source, "mpi.recv")
        req = Request("irecv")
        post = _PostedRecv(src=source, tag=tag, context=self._ctx(context), req=req)
        mailbox = self.world.mailbox(self._rank)
        env = mailbox.match_unexpected(post)
        if env is not None:
            self.world.consume(self._rank, env, req)
            return req
        mailbox.add_posted(post)
        return req

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        *,
        status: Optional[Status] = None,
        context: int = CTX_PT2PT,
    ):
        """Blocking receive; coroutine returning the payload bytes."""
        req = yield from self.irecv(source, tag, context=context)
        hub = self.world.trace
        if hub is not None:
            with hub.span("mpi.recv", source=source, tag=tag):
                payload = yield from req.wait()
        else:
            payload = yield from req.wait()
        if status is not None:
            status.source = req.status.source
            status.tag = req.status.tag
            status.count = req.status.count
        assert payload is not None
        return payload

    def recv_object(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, *, context: int = CTX_PT2PT
    ):
        """Blocking receive of a pickled Python object (coroutine)."""
        payload = yield from self.recv(source, tag, context=context)
        return unpack_object(payload)

    # ------------------------------------------------------------------
    # probing and combined send/recv
    # ------------------------------------------------------------------
    def iprobe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, *, context: int = CTX_PT2PT
    ) -> Optional[Status]:
        """Nonblocking probe: Status of a matching arrived message, or None.

        Does not consume the message (a later recv still matches it).
        """
        probe = _PostedRecv(src=source, tag=tag, context=self._ctx(context), req=Request("probe"))
        mailbox = self.world.mailbox(self._rank)
        if probe.src == ANY_SOURCE or probe.tag == ANY_TAG:
            candidates = (e for e in mailbox.unexpected_all if not e.consumed)
        else:
            key = (probe.context, probe.src, probe.tag)
            candidates = (
                e for e in mailbox.unexpected_by_key.get(key, ()) if not e.consumed
            )
        for env in candidates:
            if _matches(env, probe):
                return Status(source=env.src, tag=env.tag, count=env.size)
        return None

    def sendrecv(
        self,
        data: Any,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ):
        """MPI_Sendrecv: post the receive, send, then complete the receive
        — the deadlock-free exchange primitive (coroutine)."""
        req = yield from self.irecv(source, recvtag)
        yield from self.isend(data, dest, sendtag)
        payload = yield from req.wait()
        assert payload is not None
        return payload

    # ------------------------------------------------------------------
    def _ctx(self, context: int) -> object:
        # Fold the communicator id into the match context so dup()ed
        # communicators never match each other's traffic.
        return (self._comm_id, context)

    def _check_peer(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise MpiError(f"peer rank {rank} outside communicator of size {self.size}")
        self._check_revoked("mpi.send")
        if self.world.dead_ranks:
            self.world.check_alive(self._rank, rank, "mpi.send")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Communicator rank={self._rank}/{self.size} id={self._comm_id}>"
