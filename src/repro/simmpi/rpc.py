"""Request/reply envelopes: the service-loop idiom over point-to-point.

ViPIOS-style I/O servers (see ``docs/io-server.md``) are persistent rank
coroutines serving a stream of client requests. This module packages the
messaging half of that pattern so servers and clients share one wire
discipline:

* a :class:`RpcEnvelope` names the logical requester (a *client id*, not
  a rank — one rank may play many simulated clients), a per-client
  sequence number, an operation, and its arguments;
* an :class:`RpcEndpoint` binds a communicator plus a (request, reply)
  tag pair and moves envelopes with the pickled-object helpers, keeping
  RPC traffic in its own match space so it can never collide with
  collective or application messages on the same communicator.

The discipline is deliberately minimal: a client keeps **at most one
request in flight** (submit, then wait for the reply), so replies need no
correlation ids — MPI's non-overtaking order per (source, tag) already
matches the k-th reply to the k-th request. Servers, in turn, may
interleave :meth:`RpcEndpoint.poll` (nonblocking arrival check) with
blocking :meth:`RpcEndpoint.recv_request` to stay responsive while
between applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.simmpi.comm import ANY_SOURCE, Communicator, Status, unpack_object

#: Default tag pair; chosen high so ad-hoc user tags (small ints) never
#: land in the RPC match space by accident.
TAG_REQUEST = 71
TAG_REPLY = 72


@dataclass(frozen=True)
class RpcEnvelope:
    """One request on the wire.

    ``client`` is the logical requester id; ``seq`` its per-client
    sequence number (trace order, used for deterministic payload
    derivation and latency attribution); ``op`` a short verb; ``args``
    a picklable tuple of operands.
    """

    client: int
    seq: int
    op: str
    args: tuple = ()


class RpcEndpoint:
    """One rank's request/reply port on a communicator.

    Both sides construct one over the *same* communicator with the same
    tag pair; rank translation and matching are the communicator's
    problem, so endpoints work unchanged over sub-communicators.
    """

    def __init__(
        self,
        comm: Communicator,
        *,
        tag_request: int = TAG_REQUEST,
        tag_reply: int = TAG_REPLY,
    ):
        self.comm = comm
        self.tag_request = tag_request
        self.tag_reply = tag_reply

    # -- client side ----------------------------------------------------
    def send_request(self, server: int, envelope: RpcEnvelope):
        """Submit one envelope to *server* (coroutine)."""
        yield from self.comm.send_object(envelope, server, self.tag_request)

    def recv_reply(self, server: int) -> Any:
        """Wait for *server*'s next reply (coroutine; returns the payload)."""
        return (yield from self.comm.recv_object(server, self.tag_reply))

    def call(self, server: int, envelope: RpcEnvelope) -> Any:
        """Submit and wait for the single matching reply (coroutine)."""
        yield from self.send_request(server, envelope)
        return (yield from self.recv_reply(server))

    # -- server side ----------------------------------------------------
    def poll(self) -> Optional[Status]:
        """Nonblocking probe for an arrived, unconsumed request."""
        return self.comm.iprobe(ANY_SOURCE, self.tag_request)

    def recv_request(self, source: int = ANY_SOURCE):
        """Receive one request (coroutine) -> ``(source_rank, envelope)``."""
        status = Status()
        payload = yield from self.comm.recv(source, self.tag_request, status=status)
        return status.source, unpack_object(payload)

    def send_reply(self, dest: int, payload: Any):
        """Send one reply toward *dest* (coroutine)."""
        yield from self.comm.send_object(payload, dest, self.tag_reply)
