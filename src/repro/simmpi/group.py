"""Sub-communicators: MPI_Comm_split and friends.

TCIO and MPI-IO operate on whatever communicator the application passes;
splitting lets applications run independent I/O groups side by side (e.g.
ParColl-style partitioned collective I/O, one of the related-work designs),
and lets tests exercise the libraries on non-world groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING

from repro.simmpi import collectives
from repro.simmpi.comm import Communicator
from repro.util.errors import MpiError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.mpi import MpiWorld


@dataclass(frozen=True)
class GroupSpec:
    """An ordered subset of world ranks forming a communicator group."""

    world_ranks: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.world_ranks)) != len(self.world_ranks):
            raise MpiError("group contains duplicate ranks")

    @property
    def size(self) -> int:
        """Number of ranks in the group."""
        return len(self.world_ranks)

    def rank_of(self, world_rank: int) -> int:
        """The group-local rank of a world rank."""
        try:
            return self.world_ranks.index(world_rank)
        except ValueError:
            raise MpiError(f"world rank {world_rank} not in group") from None


class SubCommunicator(Communicator):
    """A communicator over a subset of world ranks.

    Messages translate local peer ranks to world ranks transparently, so
    every layer built on :class:`Communicator` (collectives, RMA windows,
    MPI-IO, TCIO) works unchanged on sub-communicators.
    """

    def __init__(
        self,
        world: "MpiWorld",
        group: GroupSpec,
        my_world_rank: int,
        comm_id: object,
    ):
        super().__init__(world, my_world_rank, comm_id)
        self.group = group
        self._local_rank = group.rank_of(my_world_rank)

    # -- identity -------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's group-local rank."""
        return self._local_rank

    @property
    def size(self) -> int:
        """Number of ranks in the group."""
        return self.group.size

    def world_rank(self, local_rank: int) -> int:
        """Translate a group-local rank to a world rank."""
        if not (0 <= local_rank < self.group.size):
            raise MpiError(f"local rank {local_rank} outside group")
        return self.group.world_ranks[local_rank]

    def group_world_ranks(self) -> tuple[int, ...]:
        """World ranks of every member, in group rank order."""
        return self.group.world_ranks

    # -- translation ------------------------------------------------------
    def isend(self, data, dest, tag=0, *, context=0):
        """Nonblocking send to a group-local peer (translated to world)."""
        return super().isend(data, self.world_rank(dest), tag, context=context)

    def irecv(self, source=-1, tag=-1, *, context=0):
        """Nonblocking receive from a group-local peer (translated)."""
        world_source = source if source == -1 else self.world_rank(source)
        req = super().irecv(world_source, tag, context=context)
        return req

    def dup(self) -> "SubCommunicator":
        """MPI_Comm_dup of the sub-communicator (collective)."""
        self._dup_seq += 1
        return SubCommunicator(
            self.world, self.group, self._rank, (self._comm_id, self._dup_seq)
        )

    def _check_peer(self, rank: int) -> None:
        # peers are world ranks after translation
        if not (0 <= rank < self.world.nranks):
            raise MpiError(f"peer world rank {rank} invalid")
        self._check_revoked("mpi.send")
        if self.world.dead_ranks:
            self.world.check_alive(self._rank, rank, "mpi.send")


def comm_split(comm: Communicator, color: int, key: Optional[int] = None):
    """MPI_Comm_split: partition *comm* by color; order members by key.

    Coroutine. Returns the caller's new communicator (or None for
    ``color < 0``, MPI_UNDEFINED). Collective over *comm*.
    """
    key = comm.rank if key is None else key
    # Every member learns everyone's (color, key, world rank).
    my_world_rank = comm.world_rank(comm.rank) if isinstance(comm, SubCommunicator) else comm.rank
    triples = yield from collectives.allgather(comm, (color, key, my_world_rank))
    if color < 0:
        return None
    members = sorted(
        (k, w) for c, k, w in triples if c == color
    )
    group = GroupSpec(tuple(w for _, w in members))
    # A deterministic id: derived from the parent id and the color, the
    # same on every member (split is collective and colors agree).
    comm._dup_seq += 1
    new_id = (comm._comm_id, "split", comm._dup_seq, color)
    return SubCommunicator(comm.world, group, my_world_rank, new_id)


#: ``split_type`` for :func:`comm_split_type`: ranks sharing a node.
COMM_TYPE_SHARED = "shared"


def comm_split_type(
    comm: Communicator, split_type: str = COMM_TYPE_SHARED,
    key: Optional[int] = None,
):
    """``MPI_Comm_split_type``: split by hardware locality (collective).

    Coroutine. Only ``COMM_TYPE_SHARED`` exists here — ranks placed on
    the same node end up in one communicator, ordered by *key* (parent
    rank by default, so each node's lowest parent rank becomes local
    rank 0).
    """
    if split_type != COMM_TYPE_SHARED:
        raise MpiError(f"unsupported split_type {split_type!r}")
    node = comm.world.node_of[comm.world_rank(comm.rank)]
    out = yield from comm_split(comm, node, key)
    assert out is not None  # node ids are never negative
    return out


def comm_from_ranks(comm: Communicator, world_ranks: Sequence[int]):
    """Create a sub-communicator from an explicit rank list (collective).

    Coroutine: ``sub = yield from comm_from_ranks(comm, ranks)``.
    """
    ranks = tuple(world_ranks)
    my_world_rank = comm.world_rank(comm.rank) if isinstance(comm, SubCommunicator) else comm.rank
    color = 0 if my_world_rank in ranks else -1
    key = ranks.index(my_world_rank) if my_world_rank in ranks else 0
    return (yield from comm_split(comm, color, key))
