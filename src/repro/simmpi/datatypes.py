"""MPI derived datatypes.

OCIO (and the MPI-IO file-view machinery it rests on) describes
noncontiguous layouts with derived datatypes; TCIO uses ``Indexed`` to
combine disjoint blocks into a single one-sided transfer. We implement the
constructors the paper's Program 2 and Section IV use — contiguous, vector,
indexed (plus the h-variants, struct, and extent resizing) — over a byte
*typemap*: an ordered list of ``(offset, length)`` byte segments relative to
the type's origin, with an *extent* giving the stride when the type tiles.

The typemap is flattened lazily and cached, with adjacent segments merged,
so packing/unpacking and file-view translation work on plain extents.
"""

from __future__ import annotations

from functools import cached_property
from typing import Sequence

import numpy as np

from repro.util.errors import DatatypeError


def _merge_segments(segments: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge adjacent (offset, length) segments, preserving order.

    Only *consecutive-in-typemap and contiguous-in-bytes* runs merge; MPI
    typemaps are ordered, and file views rely on that order.
    """
    merged: list[tuple[int, int]] = []
    for off, length in segments:
        if length == 0:
            continue
        if merged and merged[-1][0] + merged[-1][1] == off:
            prev_off, prev_len = merged[-1]
            merged[-1] = (prev_off, prev_len + length)
        else:
            merged.append((off, length))
    return merged


class Datatype:
    """Base class: a byte typemap plus an extent."""

    #: numpy dtype for primitives (None for constructed types)
    np_dtype: np.dtype | None = None

    @property
    def size(self) -> int:
        """Total data bytes (sum of segment lengths)."""
        return self._size

    @property
    def extent(self) -> int:
        """Span the type covers when tiled (lb..ub distance)."""
        return self._extent

    @cached_property
    def segments(self) -> tuple[tuple[int, int], ...]:
        """Merged (offset, length) byte segments, in typemap order."""
        return tuple(_merge_segments(self._build_segments()))

    def _build_segments(self) -> list[tuple[int, int]]:
        raise NotImplementedError

    @property
    def is_contiguous(self) -> bool:
        """True when the typemap is one segment starting at offset 0 that
        fills the whole extent (tiles with no holes)."""
        segs = self.segments
        if len(segs) == 0:
            return True
        return len(segs) == 1 and segs[0] == (0, self.extent)

    # -- constructors matching MPI_Type_* ------------------------------
    def contiguous(self, count: int) -> "Contiguous":
        """MPI_Type_contiguous over this type."""
        return Contiguous(count, self)

    def vector(self, count: int, blocklength: int, stride: int) -> "Vector":
        """MPI_Type_vector over this type."""
        return Vector(count, blocklength, stride, self)

    def indexed(
        self, blocklengths: Sequence[int], displacements: Sequence[int]
    ) -> "Indexed":
        """MPI_Type_indexed over this type."""
        return Indexed(blocklengths, displacements, self)

    def resized(self, lb: int, extent: int) -> "Resized":
        """MPI_Type_create_resized over this type."""
        return Resized(self, lb, extent)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} size={self.size} extent={self.extent}>"


class Primitive(Datatype):
    """A named elementary type (int, double, ...)."""

    def __init__(self, name: str, nbytes: int, np_dtype: str):
        if nbytes <= 0:
            raise DatatypeError(f"{name}: non-positive size")
        self.name = name
        self._size = nbytes
        self._extent = nbytes
        self.np_dtype = np.dtype(np_dtype)

    def _build_segments(self) -> list[tuple[int, int]]:
        return [(0, self._size)]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MPI_{self.name}>"


BYTE = Primitive("BYTE", 1, "u1")
CHAR = Primitive("CHAR", 1, "i1")
SHORT = Primitive("SHORT", 2, "i2")
INT = Primitive("INT", 4, "i4")
LONG = Primitive("LONG", 8, "i8")
FLOAT = Primitive("FLOAT", 4, "f4")
DOUBLE = Primitive("DOUBLE", 8, "f8")

#: Table I's single-letter codes: c(char) s(short) i(int) f(float) d(double).
_CODE_TABLE = {"c": CHAR, "s": SHORT, "i": INT, "f": FLOAT, "d": DOUBLE, "b": BYTE}


def type_from_code(code: str) -> Primitive:
    """Resolve a Table I type letter (``"i"``, ``"d"``...) to a primitive."""
    try:
        return _CODE_TABLE[code.strip().lower()]
    except KeyError:
        raise DatatypeError(f"unknown type code {code!r}") from None


class Contiguous(Datatype):
    """``MPI_Type_contiguous``: *count* copies of *base*, extent-tiled."""

    def __init__(self, count: int, base: Datatype):
        if count < 0:
            raise DatatypeError("contiguous count must be >= 0")
        self.count = count
        self.base = base
        self._size = count * base.size
        self._extent = count * base.extent

    def _build_segments(self) -> list[tuple[int, int]]:
        out: list[tuple[int, int]] = []
        for i in range(self.count):
            shift = i * self.base.extent
            out.extend((off + shift, ln) for off, ln in self.base.segments)
        return out


class Vector(Datatype):
    """``MPI_Type_vector``: *count* blocks of *blocklength* base elements,
    separated by *stride* base-extents (Program 2's filetype)."""

    def __init__(self, count: int, blocklength: int, stride: int, base: Datatype):
        if count < 0 or blocklength < 0:
            raise DatatypeError("vector count/blocklength must be >= 0")
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.base = base
        self._size = count * blocklength * base.size
        if count == 0:
            self._extent = 0
        else:
            # MPI extent: from the first byte to the last byte spanned.
            last_block_start = (count - 1) * stride * base.extent
            self._extent = last_block_start + blocklength * base.extent

    def _build_segments(self) -> list[tuple[int, int]]:
        block = Contiguous(self.blocklength, self.base)
        out: list[tuple[int, int]] = []
        for i in range(self.count):
            shift = i * self.stride * self.base.extent
            out.extend((off + shift, ln) for off, ln in block.segments)
        return out


class Hvector(Datatype):
    """``MPI_Type_create_hvector``: stride given in bytes, not elements."""

    def __init__(self, count: int, blocklength: int, stride_bytes: int, base: Datatype):
        if count < 0 or blocklength < 0:
            raise DatatypeError("hvector count/blocklength must be >= 0")
        self.count = count
        self.blocklength = blocklength
        self.stride_bytes = stride_bytes
        self.base = base
        self._size = count * blocklength * base.size
        if count == 0:
            self._extent = 0
        else:
            self._extent = (count - 1) * stride_bytes + blocklength * base.extent

    def _build_segments(self) -> list[tuple[int, int]]:
        block = Contiguous(self.blocklength, self.base)
        out: list[tuple[int, int]] = []
        for i in range(self.count):
            shift = i * self.stride_bytes
            out.extend((off + shift, ln) for off, ln in block.segments)
        return out


class Indexed(Datatype):
    """``MPI_Type_indexed``: variable-length blocks at element displacements.

    This is the constructor TCIO uses to combine the disjoint level-1 blocks
    of one flush into a single one-sided transfer.
    """

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
        base: Datatype,
    ):
        if len(blocklengths) != len(displacements):
            raise DatatypeError("indexed: blocklengths/displacements length mismatch")
        if any(b < 0 for b in blocklengths):
            raise DatatypeError("indexed: negative blocklength")
        self.blocklengths = tuple(int(b) for b in blocklengths)
        self.displacements = tuple(int(d) for d in displacements)
        self.base = base
        self._size = sum(self.blocklengths) * base.size
        ext = 0
        for b, d in zip(self.blocklengths, self.displacements):
            ext = max(ext, (d + b) * base.extent)
        self._extent = ext

    def _build_segments(self) -> list[tuple[int, int]]:
        out: list[tuple[int, int]] = []
        for b, d in zip(self.blocklengths, self.displacements):
            block = Contiguous(b, self.base)
            shift = d * self.base.extent
            out.extend((off + shift, ln) for off, ln in block.segments)
        return out


class Hindexed(Datatype):
    """``MPI_Type_create_hindexed``: displacements in bytes."""

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements_bytes: Sequence[int],
        base: Datatype,
    ):
        if len(blocklengths) != len(displacements_bytes):
            raise DatatypeError("hindexed: blocklengths/displacements length mismatch")
        if any(b < 0 for b in blocklengths):
            raise DatatypeError("hindexed: negative blocklength")
        self.blocklengths = tuple(int(b) for b in blocklengths)
        self.displacements_bytes = tuple(int(d) for d in displacements_bytes)
        self.base = base
        self._size = sum(self.blocklengths) * base.size
        ext = 0
        for b, d in zip(self.blocklengths, self.displacements_bytes):
            ext = max(ext, d + b * base.extent)
        self._extent = ext

    def _build_segments(self) -> list[tuple[int, int]]:
        out: list[tuple[int, int]] = []
        for b, d in zip(self.blocklengths, self.displacements_bytes):
            block = Contiguous(b, self.base)
            out.extend((off + d, ln) for off, ln in block.segments)
        return out


class Struct(Datatype):
    """``MPI_Type_create_struct``: heterogeneous blocks at byte displacements.

    Section V.C notes one *could* describe a fixed FTT with this — before
    explaining why per-tree type construction makes OCIO impractical there.
    """

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements_bytes: Sequence[int],
        types: Sequence[Datatype],
    ):
        if not (len(blocklengths) == len(displacements_bytes) == len(types)):
            raise DatatypeError("struct: argument length mismatch")
        if any(b < 0 for b in blocklengths):
            raise DatatypeError("struct: negative blocklength")
        self.blocklengths = tuple(int(b) for b in blocklengths)
        self.displacements_bytes = tuple(int(d) for d in displacements_bytes)
        self.types = tuple(types)
        self._size = sum(b * t.size for b, t in zip(self.blocklengths, self.types))
        ext = 0
        for b, d, t in zip(self.blocklengths, self.displacements_bytes, self.types):
            ext = max(ext, d + b * t.extent)
        self._extent = ext

    def _build_segments(self) -> list[tuple[int, int]]:
        out: list[tuple[int, int]] = []
        for b, d, t in zip(self.blocklengths, self.displacements_bytes, self.types):
            block = Contiguous(b, t)
            out.extend((off + d, ln) for off, ln in block.segments)
        return out


class Subarray(Datatype):
    """``MPI_Type_create_subarray``: an n-dimensional sub-block of an array.

    This is how applications like the paper's Fig. 1 example describe "my
    slab of the global 3D volume" as a file view: the typemap selects the
    sub-block's elements out of the row-major global array, and the extent
    is the whole array (so tiling works).
    """

    def __init__(
        self,
        sizes: Sequence[int],
        subsizes: Sequence[int],
        starts: Sequence[int],
        base: Datatype,
    ):
        if not (len(sizes) == len(subsizes) == len(starts)):
            raise DatatypeError("subarray: dimension mismatch")
        if not sizes:
            raise DatatypeError("subarray: needs at least one dimension")
        for n, sub, st in zip(sizes, subsizes, starts):
            if n < 1 or sub < 0 or st < 0 or st + sub > n:
                raise DatatypeError(
                    f"subarray: block [{st}, {st + sub}) outside dimension of {n}"
                )
        self.sizes = tuple(int(x) for x in sizes)
        self.subsizes = tuple(int(x) for x in subsizes)
        self.starts = tuple(int(x) for x in starts)
        self.base = base
        count = 1
        for sub in self.subsizes:
            count *= sub
        total = 1
        for n in self.sizes:
            total *= n
        self._size = count * base.size
        self._extent = total * base.extent

    def _build_segments(self) -> list[tuple[int, int]]:
        # Row-major enumeration of the sub-block's element offsets; the
        # innermost dimension is contiguous, so emit one run per "row".
        if any(s == 0 for s in self.subsizes):
            return []
        ndim = len(self.sizes)
        strides = [self.base.extent] * ndim
        for d in range(ndim - 2, -1, -1):
            strides[d] = strides[d + 1] * self.sizes[d + 1]
        run_len = self.subsizes[-1]
        out: list[tuple[int, int]] = []

        def emit(dim: int, offset: int) -> None:
            if dim == ndim - 1:
                start = offset + self.starts[dim] * strides[dim]
                block = Contiguous(run_len, self.base)
                out.extend((start + o, ln) for o, ln in block.segments)
                return
            for i in range(self.subsizes[dim]):
                emit(dim + 1, offset + (self.starts[dim] + i) * strides[dim])

        emit(0, 0)
        return out


class Resized(Datatype):
    """``MPI_Type_create_resized``: override lb/extent for tiling."""

    def __init__(self, base: Datatype, lb: int, extent: int):
        if extent < 0:
            raise DatatypeError("resized: negative extent")
        self.base = base
        self.lb = lb
        self._size = base.size
        self._extent = extent

    def _build_segments(self) -> list[tuple[int, int]]:
        return [(off - self.lb, ln) for off, ln in self.base.segments]


# ----------------------------------------------------------------------
# pack/unpack between user buffers and contiguous byte streams
# ----------------------------------------------------------------------


def pack(buffer: np.ndarray | bytes | bytearray | memoryview, dtype: Datatype, count: int) -> bytes:
    """Gather *count* tiled copies of *dtype* from *buffer* into a stream.

    The MPI analogue of ``MPI_Pack`` over a (buffer, count, datatype)
    triple; used by send paths and by OCIO's scatter/gather.
    """
    raw = _as_bytes(buffer)
    out = bytearray()
    for i in range(count):
        shift = i * dtype.extent
        for off, ln in dtype.segments:
            lo = shift + off
            if lo < 0 or lo + ln > len(raw):
                raise DatatypeError(
                    f"pack: segment [{lo},{lo + ln}) outside buffer of {len(raw)} bytes"
                )
            out += raw[lo : lo + ln]
    return bytes(out)


def unpack(
    stream: bytes | bytearray | memoryview,
    buffer: np.ndarray | bytearray | memoryview,
    dtype: Datatype,
    count: int,
) -> None:
    """Scatter a contiguous stream into *buffer* per the typemap (MPI_Unpack)."""
    view = _as_mutable(buffer)
    src = memoryview(stream)
    need = dtype.size * count
    if len(src) < need:
        raise DatatypeError(f"unpack: stream has {len(src)} bytes, need {need}")
    pos = 0
    for i in range(count):
        shift = i * dtype.extent
        for off, ln in dtype.segments:
            lo = shift + off
            if lo < 0 or lo + ln > len(view):
                raise DatatypeError(
                    f"unpack: segment [{lo},{lo + ln}) outside buffer of {len(view)} bytes"
                )
            view[lo : lo + ln] = src[pos : pos + ln]
            pos += ln


def _as_bytes(buffer: object) -> memoryview:
    if isinstance(buffer, np.ndarray):
        return memoryview(np.ascontiguousarray(buffer)).cast("B")
    return memoryview(buffer).cast("B")  # type: ignore[arg-type]


def _as_mutable(buffer: object) -> memoryview:
    if isinstance(buffer, np.ndarray):
        if not buffer.flags.c_contiguous:
            raise DatatypeError("unpack target must be C-contiguous")
        return memoryview(buffer).cast("B")
    view = memoryview(buffer)  # type: ignore[arg-type]
    if view.readonly:
        raise DatatypeError("unpack target is read-only")
    return view.cast("B")
