"""The MPI world: wiring ranks, fabric, memory, storage, and delivery.

:func:`run_mpi` is the single entry point every experiment and test uses:
it builds an engine + fabric + memory tracker + parallel file system from a
cluster description, spawns one simulated process per rank running the user
function, runs to completion, and returns timings/traces/results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, TYPE_CHECKING

from repro.memsim.memory import MemoryTracker
from repro.netsim.fabric import Fabric
from repro.netsim.model import NetworkSpec
from repro.sim.api import SimContext, run_coroutine
from repro.sim.engine import Engine, ProcessCrashed
from repro.sim.trace import TraceRecorder
from repro.simmpi.comm import Communicator, Mailbox, Request, Status, _Envelope
from repro.simmpi.rma import _TargetLock
from repro.util.errors import DeadlockError, MpiError, RankUnreachable, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.spec import ClusterSpec
    from repro.pfs.filesystem import Pfs


class MpiWorld:
    """Global state shared by all ranks of one simulated job."""

    def __init__(
        self,
        engine: Engine,
        nranks: int,
        network: NetworkSpec,
        node_of: Sequence[int],
        memory: MemoryTracker,
        pfs: "Optional[Pfs]" = None,
        trace: Optional[TraceRecorder] = None,
        faults=None,
        fabric=None,
        job: Optional[str] = None,
    ):
        if nranks < 1:
            raise MpiError("need at least one rank")
        self.engine = engine
        self.nranks = nranks
        self.node_of = list(node_of)
        if len(self.node_of) != nranks:
            raise MpiError("node_of must have one entry per rank")
        self.trace = trace
        self.faults = faults  # optional bound FaultPlan
        #: An injected fabric (or fabric view — tenancy jobs share one
        #: physical fabric through per-job rank-offset views); by default
        #: each world owns its interconnect, as before.
        self.fabric = (
            fabric
            if fabric is not None
            else Fabric(engine, network, self.node_of, trace, faults)
        )
        self.memory = memory
        self.pfs = pfs
        #: Job label for multi-tenant runs (``None`` for classic solo runs).
        #: Surfaces in fault alarms and error attribution so operators can
        #: tell whose data is at risk when several jobs share one PFS.
        self.job = job
        #: This world's rank processes in rank order, registered at spawn
        #: time. With several concurrent worlds on one engine, world rank r
        #: is NOT ``engine.processes[r]`` — crash handling must only ever
        #: touch this world's own processes.
        self.procs: list = []
        self._mailboxes = [Mailbox() for _ in range(nranks)]
        self._matcher_busy = [0.0] * nranks  # per-rank matching engines
        #: Scratch registry for user-level libraries (TCIO) to share
        #: collectively-created metadata objects across ranks. Keys are
        #: library-chosen tuples; creation must happen inside a collective
        #: (all ranks reach the same setdefault in the same order).
        self.shared: dict = {}
        #: Ranks lost to fail-stop crashes. Communication entry points check
        #: membership and raise :class:`RankUnreachable` instead of parking
        #: a process on a wait that can never complete.
        self.dead_ranks: set[int] = set()
        #: Communicator ids revoked via :meth:`Communicator.revoke` (ULFM
        #: ``MPI_Comm_revoke``): communication entry on a revoked id raises
        #: :class:`CommRevoked` so survivors bail out and shrink instead of
        #: parking in a collective the dead can never join.
        self.revoked: set = set()
        self._comm_counter = 0
        self._windows: dict[tuple[int, int], memoryview] = {}
        self._window_locks: dict[tuple[int, int], _TargetLock] = {}
        self._windows_per_rank = [0] * nranks

    # ------------------------------------------------------------------
    # communicators and mailboxes
    # ------------------------------------------------------------------
    def next_comm_id(self) -> int:
        """Allocate a fresh world-level communicator id."""
        self._comm_counter += 1
        return self._comm_counter

    def world_comm(self, rank: int) -> Communicator:
        """The world communicator as seen from *rank*."""
        return Communicator(self, rank, comm_id=0)

    def mailbox(self, rank: int) -> Mailbox:
        """The matching state of one rank."""
        return self._mailboxes[rank]

    # ------------------------------------------------------------------
    # message delivery (called from engine callbacks)
    # ------------------------------------------------------------------
    def arrive(self, dst: int, env: _Envelope) -> None:
        """A message reached *dst*'s NIC: serialize through the rank's
        matching engine before it becomes visible to receives.

        Matching is CPU work proportional to the posted/unexpected queue
        depth, so P simultaneous arrivals at one rank cost O(P^2) total —
        one-sided RMA traffic never passes through here.
        """
        spec = self.fabric.spec
        cost = spec.match_overhead + spec.match_queue_overhead * self._mailboxes[dst].queue_pressure
        if cost <= 0.0:
            self.deliver(dst, env)
            return
        now = self.engine.now
        start = now if now > self._matcher_busy[dst] else self._matcher_busy[dst]
        finish = start + cost
        self._matcher_busy[dst] = finish
        if self.trace is not None:
            self.trace.count("mpi.match_delay", finish - now)
        self.engine.schedule_at(finish, lambda: self.deliver(dst, env))

    def deliver(self, dst: int, env: _Envelope) -> None:
        """A message (or rendezvous RTS) reached *dst*: match or queue it."""
        env.arrived = True
        mailbox = self._mailboxes[dst]
        post = mailbox.match_posted(env)
        if post is not None:
            env.consumed = True
            self.consume(dst, env, post.req)
            return
        mailbox.add_unexpected(env)

    def consume(self, dst: int, env: _Envelope, req: Request) -> None:
        """A matched (message, receive) pair: finish it (maybe rendezvous)."""
        req.status = Status(source=env.src, tag=env.tag, count=env.size)
        if env.payload is not None:
            req._complete(env.payload)
            return
        # Rendezvous: send clear-to-send back, then stream the data.
        data: bytes = env._rendezvous_data  # type: ignore[attr-defined]
        t_cts = self.fabric.control_delay(dst, env.src)

        def start_data() -> None:
            t_data = self.fabric.delivery_time(env.src, dst, env.size)

            def land() -> None:
                if env.send_req is not None:
                    env.send_req._complete()
                req._complete(data)

            self.engine.schedule_at(t_data, land)

        self.engine.schedule_at(t_cts, start_data)

    # ------------------------------------------------------------------
    # RMA windows
    # ------------------------------------------------------------------
    def register_window(self, rank: int, view: memoryview) -> int:
        """Allocate this rank's next window id and expose its buffer.

        Window creation is collective and every rank creates windows in the
        same order, so per-rank sequence numbers agree globally.
        """
        win_id = self._windows_per_rank[rank]
        self._windows_per_rank[rank] += 1
        self._windows[(win_id, rank)] = view
        return win_id

    def window_buffer(self, win_id: int, rank: int) -> memoryview:
        """The exposure buffer rank *rank* registered for window *win_id*."""
        try:
            return self._windows[(win_id, rank)]
        except KeyError:
            raise MpiError(f"window {win_id} not exposed by rank {rank}") from None

    def window_lock(self, win_id: int, rank: int) -> _TargetLock:
        """The passive-target lock state at (window, target rank)."""
        key = (win_id, rank)
        if key not in self._window_locks:
            self._window_locks[key] = _TargetLock()
        return self._window_locks[key]

    # ------------------------------------------------------------------
    # fail-stop crashes
    # ------------------------------------------------------------------
    def check_alive(self, origin: int, target: int, op: str) -> None:
        """Raise :class:`RankUnreachable` if *target* died (fail-stop)."""
        if target in self.dead_ranks:
            raise RankUnreachable(origin, target, op)

    def kill_ranks(self, ranks: Sequence[int], *, where: str = "") -> None:
        """Mark *ranks* dead and interrupt every surviving parked rank.

        Fail-stop semantics: once the job has lost a member, no outstanding
        coordination can complete, so every parked survivor is resumed with
        :class:`RankUnreachable` at its wait point (the interrupt goes
        through the event heap; a survivor resumed normally first observes
        the dead set at its next communication call). This *is* the
        deterministic failure-notification path of :mod:`repro.simmpi.ft`:
        a non-FT program lets the exception propagate and the job aborts;
        an FT program catches it, shrinks, and continues.
        """
        fresh = [r for r in ranks if r not in self.dead_ranks]
        if not fresh:
            return
        self.dead_ranks.update(fresh)
        if self.trace is not None:
            self.trace.count("crash.ranks", len(fresh))
        # Fall back to the engine's process table only for hand-built
        # worlds that never registered their processes (single-job case,
        # where world rank == engine process index).
        procs = self.procs if self.procs else self.engine.processes
        for peer in range(min(self.nranks, len(procs))):
            proc = procs[peer]
            if not proc.alive:
                continue
            if peer in self.dead_ranks:
                # A victim parked at kill time unwinds with ProcessCrashed
                # (a running victim stops at its next crash_point / comm
                # call instead); without this, a dead-but-parked process
                # wedges an otherwise-surviving run in DeadlockError.
                if peer in fresh and proc.wait_reason is not None:
                    proc.interrupt(
                        ProcessCrashed(peer, proc.wait_reason or where or "killed")
                    )
                continue
            if proc.wait_reason is None:
                # Running (not parked) at kill time — e.g. the rank that
                # initiated the kill, or one between waits. It observes
                # the dead set at its next communication entry; delivering
                # the interrupt at whatever *later* wait it reaches would
                # poison post-shrink communicators a fault-tolerant
                # program already rebuilt.
                continue
            proc.interrupt(
                RankUnreachable(peer, fresh[0], proc.wait_reason or where or "wait")
            )

    def crash_point(self, step: str, rank: int) -> None:
        """Named protocol step hook for deterministic crash injection.

        Instrumented libraries (TCIO's flush protocol) call this at every
        step a crash campaign may target. With no bound fault plan this is
        one attribute read; with a plan, the plan decides — deterministically,
        from its seeded ``crash`` stream and step counters — whether *rank*
        dies here, in which case the rank is marked dead, survivors are
        interrupted, and :class:`ProcessCrashed` unwinds the calling thread.
        """
        plan = self.faults
        if plan is None:
            return
        if rank in self.dead_ranks:
            # A co-located victim of an earlier crash_node kill that was
            # running (not parked) when it was marked dead: it must stop
            # at its next protocol step, not keep mutating shared state.
            raise ProcessCrashed(rank, step)
        if plan.crash_point(step, rank, self.node_of[rank]):
            if plan.spec.crash_node is not None:
                node = self.node_of[rank]
                victims = [r for r in range(self.nranks) if self.node_of[r] == node]
            else:
                victims = [rank]
            self.kill_ranks(victims, where=step)
            raise ProcessCrashed(rank, step)

    def charge_matching(self, dst: int) -> float:
        """Reserve *dst*'s matching engine for one two-sided message and
        return the completion time (ablation hook: lets TCIO's two-sided
        variant pay realistic receive-side costs without a real receiver
        loop)."""
        spec = self.fabric.spec
        cost = spec.match_overhead + spec.match_queue_overhead * self._mailboxes[dst].queue_pressure
        now = self.engine.now
        start = now if now > self._matcher_busy[dst] else self._matcher_busy[dst]
        self._matcher_busy[dst] = start + cost
        return self._matcher_busy[dst]


@dataclass
class RankEnv:
    """Everything a rank program sees: its communicator plus the substrate.

    ``ctx`` is the rank's :class:`~repro.sim.api.SimContext` (clock +
    time primitives), bound when the rank is spawned.
    """

    comm: Communicator
    world: MpiWorld
    ctx: Optional[SimContext] = None

    @property
    def rank(self) -> int:
        """This rank's id in the world communicator."""
        return self.comm.rank

    @property
    def size(self) -> int:
        """Number of ranks in the job."""
        return self.comm.size

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.world.engine.now

    def compute(self, seconds: float) -> None:
        """Charge local compute time (lazily; elapses at the next
        communication/storage call, or via :meth:`settle`)."""
        self.ctx.process.charge(seconds)

    def settle(self):
        """Force accrued compute time to elapse now (coroutine)."""
        return self.ctx.process.settle()

    @property
    def pfs(self) -> "Pfs":
        """The job's parallel file system."""
        if self.world.pfs is None:
            raise SimulationError("this world has no parallel file system")
        return self.world.pfs


@dataclass
class MpiRunResult:
    """Outcome of one simulated job."""

    elapsed: float
    returns: list[Any]
    trace: TraceRecorder
    world: MpiWorld
    #: ``None`` for a clean run; the job-aborting exception after a
    #: fail-stop crash (the PFS/world snapshots remain inspectable, which
    #: is how crash-recovery tooling gets at the post-crash file image).
    aborted: Optional[BaseException] = None

    @property
    def pfs(self) -> "Pfs":
        """The job's parallel file system."""
        assert self.world.pfs is not None
        return self.world.pfs

    @property
    def dead_ranks(self) -> set[int]:
        """Ranks lost to fail-stop crashes during the run."""
        return set(self.world.dead_ranks)


def run_mpi(
    nranks: int,
    main: Callable[[RankEnv], Any],
    *,
    cluster: "Optional[ClusterSpec]" = None,
    trace: Optional[TraceRecorder] = None,
    until: Optional[float] = None,
    pfs_init: Optional[Callable[["Pfs"], None]] = None,
    faults=None,
) -> MpiRunResult:
    """Run *main* on *nranks* simulated ranks; returns results and timings.

    All configuration is keyword-only. ``main(env)`` runs once per rank —
    as a generator coroutine (the normal case: anything that communicates
    or does I/O blocks via ``yield from``) or a plain function; its return
    values are collected in rank order. The default cluster is the scaled Lonestar preset sized to
    hold ``nranks`` (12 ranks per node, as on the paper's testbed).
    ``pfs_init`` pre-populates the fresh file system before time starts
    (e.g. a restart job reading a snapshot an earlier job produced).
    ``faults`` is an optional :class:`repro.faults.FaultPlan`; it is bound
    to this job's engine/trace and installed into the fabric and the PFS
    before any rank starts.
    """
    from repro.cluster.lonestar import make_lonestar

    if cluster is None:
        cluster = make_lonestar(nranks=nranks)
    cluster.validate()
    if nranks > cluster.capacity:
        raise MpiError(
            f"{nranks} ranks exceed cluster capacity {cluster.capacity}"
        )
    trace = trace if trace is not None else TraceRecorder()
    engine = Engine(trace=trace)
    if faults is not None:
        faults.bind(engine, trace)
    node_of = [r // cluster.cores_per_node for r in range(nranks)]
    memory = MemoryTracker(cluster.memory_per_node, node_of)
    pfs = cluster.build_pfs(engine, trace)
    if faults is not None:
        pfs.install_faults(faults)
    if pfs_init is not None:
        pfs_init(pfs)
    world = MpiWorld(
        engine,
        nranks,
        cluster.network,
        node_of,
        memory,
        pfs=pfs,
        trace=trace,
        faults=faults,
    )
    returns: list[Any] = [None] * nranks
    finished = [False] * nranks

    def make_target(rank: int, env: RankEnv) -> Callable[[], Any]:
        def target():
            returns[rank] = yield from run_coroutine(main(env))
            yield from env.ctx.process.settle()
            finished[rank] = True

        return target

    for rank in range(nranks):
        env = RankEnv(comm=world.world_comm(rank), world=world)
        proc = engine.spawn(f"rank{rank}", make_target(rank, env))
        env.ctx = SimContext(engine, proc)
        world.procs.append(proc)
    aborted: Optional[BaseException] = None
    try:
        elapsed = engine.run(until=until)
    except (RankUnreachable, DeadlockError) as exc:
        # A fail-stop crash aborts the whole job; the caller still gets the
        # world and PFS back so recovery tooling can inspect the wreckage.
        # Anything not explained by a crashed rank is a real bug: re-raise.
        if not world.dead_ranks:
            raise
        aborted = exc
        elapsed = engine.now
    if world.dead_ranks and aborted is None:
        # A fault-tolerant program shrinks around the dead ranks and runs
        # to completion: every *surviving* rank finishing normally is a
        # successful (degraded) run, not an abort. Only when some survivor
        # never made it to the end — e.g. the only crashed rank was the
        # last one still running, so no survivor ever raised — does the
        # job count as aborted.
        unfinished = [
            r for r in range(nranks)
            if not finished[r] and r not in world.dead_ranks
        ]
        if unfinished:
            aborted = RankUnreachable(
                unfinished[0], min(world.dead_ranks), "job"
            )
    # Only the *deterministic* host counter lands in the shared registry:
    # the number of engine events is a pure function of the workload, so
    # trace snapshots stay replay-identical. Wall-clock and events/sec are
    # measured by the ``perf bench`` harness outside the registry.
    trace.registry.counter("host.engine.events").inc(engine.events)
    return MpiRunResult(
        elapsed=elapsed, returns=returns, trace=trace, world=world, aborted=aborted
    )
