"""Simulated MPI: datatypes, point-to-point, collectives, one-sided (RMA).

This package reimplements, on the discrete-event substrate, exactly the MPI
surface the paper's systems touch: derived datatypes and file views for
OCIO, nonblocking two-sided messaging for ROMIO's exchange phase, and
passive-target one-sided communication (``MPI_Win_lock``/``MPI_Put``/
``MPI_Get``/``MPI_Win_unlock``) plus ``MPI_Type_indexed`` combining for
TCIO's level-2 traffic.
"""

from repro.simmpi.datatypes import (
    Datatype,
    Primitive,
    Contiguous,
    Vector,
    Hvector,
    Indexed,
    Hindexed,
    Struct,
    Subarray,
    Resized,
    BYTE,
    CHAR,
    SHORT,
    INT,
    FLOAT,
    DOUBLE,
    LONG,
    type_from_code,
)
from repro.simmpi.comm import Communicator, Request, Status, ANY_SOURCE, ANY_TAG, wait_all
from repro.simmpi.group import (
    COMM_TYPE_SHARED,
    GroupSpec,
    SubCommunicator,
    comm_split,
    comm_split_type,
    comm_from_ranks,
)
from repro.simmpi.ft import agree, failed_ranks, shrink
from repro.simmpi.rma import Window, LOCK_EXCLUSIVE, LOCK_SHARED
from repro.simmpi.rpc import RpcEndpoint, RpcEnvelope, TAG_REPLY, TAG_REQUEST
from repro.simmpi.mpi import MpiWorld, MpiRunResult, run_mpi

__all__ = [
    "Datatype",
    "Primitive",
    "Contiguous",
    "Vector",
    "Hvector",
    "Indexed",
    "Hindexed",
    "Struct",
    "Subarray",
    "Resized",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "FLOAT",
    "DOUBLE",
    "LONG",
    "type_from_code",
    "Communicator",
    "Request",
    "Status",
    "wait_all",
    "GroupSpec",
    "SubCommunicator",
    "comm_split",
    "comm_split_type",
    "COMM_TYPE_SHARED",
    "comm_from_ranks",
    "ANY_SOURCE",
    "ANY_TAG",
    "agree",
    "failed_ranks",
    "shrink",
    "Window",
    "LOCK_EXCLUSIVE",
    "LOCK_SHARED",
    "RpcEndpoint",
    "RpcEnvelope",
    "TAG_REQUEST",
    "TAG_REPLY",
    "MpiWorld",
    "MpiRunResult",
    "run_mpi",
]
