"""One-sided communication (MPI-2 RMA, passive target).

TCIO's level-2 traffic uses exactly this surface: ``MPI_Win_lock`` /
``MPI_Win_unlock`` (the paper rejects ``MPI_Win_fence`` because it is
collective and would break independent I/O calls), ``MPI_Put`` / ``MPI_Get``,
and indexed-datatype combining so one lock epoch moves many disjoint blocks
in a single network transfer.

The window's memory lives at the target, but the target CPU is never
involved: puts/gets are applied by the simulated NIC at delivery time, and
the per-target lock is a queue at the target that origin control messages
travel to.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Sequence, TYPE_CHECKING

import numpy as np

from repro.sim.engine import active_process
from repro.sim.process import SimProcess
from repro.util.errors import RmaError, RmaTransientError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator

LOCK_EXCLUSIVE = 1
LOCK_SHARED = 2


@dataclass
class _LockWaiter:
    """One parked origin in a target lock's FIFO.

    ``cancelled`` marks a waiter whose process was interrupted at the
    wait point (fail-stop notification): it must never be granted the
    lock or woken — a late grant would resume the process inside some
    unrelated wait. ``granted`` records that the lock *was* acquired on
    this waiter's behalf, so the interrupt path can give it back.
    """

    proc: SimProcess
    lock_type: int
    granted: bool = False
    cancelled: bool = False


@dataclass
class _TargetLock:
    """Lock state living at one target rank of one window."""

    mode: int = 0  # 0 = free
    holders: int = 0
    waiters: Deque[_LockWaiter] = field(default_factory=deque)

    def compatible(self, lock_type: int) -> bool:
        """Whether *lock_type* can be granted alongside current holders."""
        if self.holders == 0:
            return True
        return self.mode == LOCK_SHARED and lock_type == LOCK_SHARED

    def acquire(self, lock_type: int) -> None:
        """Record one more holder of the given type."""
        self.mode = lock_type
        self.holders += 1

    def purge_cancelled(self) -> None:
        """Drop interrupted waiters from the head of the FIFO."""
        while self.waiters and self.waiters[0].cancelled:
            self.waiters.popleft()

    def release(self) -> None:
        """Drop one holder; wake compatible FIFO waiters when free."""
        if self.holders <= 0:
            raise RmaError("unlock without matching lock")
        self.holders -= 1
        if self.holders == 0:
            self.mode = 0
            # Wake waiters that are now compatible (FIFO prefix).
            while self.waiters:
                entry = self.waiters[0]
                if entry.cancelled:
                    self.waiters.popleft()
                    continue
                if not self.compatible(entry.lock_type):
                    break
                self.waiters.popleft()
                self.acquire(entry.lock_type)
                entry.granted = True
                entry.proc.wake()
                if entry.lock_type == LOCK_EXCLUSIVE:
                    break


class _Epoch:
    """Origin-side state for one lock..unlock access epoch."""

    __slots__ = ("target", "lock_type", "last_completion", "start")

    def __init__(self, target: int, lock_type: int, start: float = 0.0):
        self.target = target
        self.lock_type = lock_type
        self.last_completion = 0.0
        self.start = start  # engine time the lock was granted


class Window:
    """A per-communicator RMA window (MPI_Win_create).

    Each rank constructs its own Window over its local exposure buffer.
    Construction is collective: use the :meth:`create` coroutine
    (``win = yield from Window.create(comm, buf)``), which barriers so the
    window id and remote buffers exist everywhere before any one-sided
    access.
    """

    def __init__(self, comm: "Communicator", buffer: np.ndarray | bytearray):
        self.comm = comm
        self.world = comm.world
        self.rank = comm.rank  # communicator-local
        self.my_world_rank = comm.world_rank(comm.rank)
        view = memoryview(buffer).cast("B")
        if view.readonly:
            raise RmaError("window buffer must be writable")
        self.win_id = self.world.register_window(self.my_world_rank, view)
        self._epochs: dict[int, _Epoch] = {}
        # Metric objects resolved once per window: every level-2 flush and
        # fetch passes through lock/put/get, and the by-name registry
        # lookups were visible in whole-run profiles.
        trace = self.world.trace
        if trace is not None:
            registry = trace.registry
            self._c_lock = registry.counter("rma.lock")
            self._c_unlock = registry.counter("rma.unlock")
            self._c_put = registry.counter("rma.put")
            self._c_put_blocks = registry.counter("rma.put_blocks")
            self._c_get = registry.counter("rma.get")
            self._c_get_blocks = registry.counter("rma.get_blocks")
            self._h_put_bytes = registry.histogram("rma.put_bytes")
    @classmethod
    def create(cls, comm: "Communicator", buffer: np.ndarray | bytearray):
        """MPI_Win_create (coroutine): register locally, then barrier.

        The barrier keeps construction collective so no rank races ahead
        and touches a window a peer has not exposed yet.
        """
        from repro.simmpi import collectives

        win = cls(comm, buffer)
        yield from collectives.barrier(comm)
        return win

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def lock(self, target: int, lock_type: int = LOCK_EXCLUSIVE):
        """MPI_Win_lock(lock_type, target): begin a passive-target epoch.

        Coroutine: ``yield from win.lock(target)``.
        """
        self._check_target(target)
        if target in self._epochs:
            raise RmaError(f"rank {self.rank}: already holds a lock on target {target}")
        if lock_type not in (LOCK_EXCLUSIVE, LOCK_SHARED):
            raise RmaError(f"bad lock type {lock_type}")
        proc = active_process()
        yield from proc.settle()
        world = self.world
        target_w = self.comm.world_rank(target)
        if world.dead_ranks:
            world.check_alive(self.my_world_rank, target_w, "rma.lock")
        # The lock request is a control message to the target node.
        t_req = world.fabric.control_delay(self.my_world_rank, target_w, rma=True)
        state = world.window_lock(self.win_id, target_w)
        if state.compatible(lock_type) and not state.waiters:
            # Fast path: uncontended lock. Acquire immediately and charge
            # the request round trip lazily — no thread handoff.
            state.acquire(lock_type)
            proc.charge(max(0.0, t_req - world.engine.now))
        else:
            entry = _LockWaiter(proc, lock_type)

            def arrive() -> None:
                if entry.cancelled:
                    return
                state.purge_cancelled()
                if state.compatible(lock_type) and not state.waiters:
                    state.acquire(lock_type)
                    entry.granted = True
                    proc.wake()
                else:
                    state.waiters.append(entry)

            world.engine.schedule_at(t_req, arrive)
            try:
                yield from proc.block(
                    f"rma.lock(win={self.win_id}, target={target})"
                )
            except BaseException:
                entry.cancelled = True
                if entry.granted:
                    state.release()
                raise
        spec = world.fabric.spec
        proc.charge(
            spec.rma_epoch_overhead
            if lock_type == LOCK_EXCLUSIVE
            else spec.rma_shared_epoch_overhead
        )
        if world.trace is not None:
            self._c_lock.add()
        self._epochs[target] = _Epoch(target, lock_type, world.engine.now)

    def unlock(self, target: int) -> None:
        """MPI_Win_unlock: complete all epoch ops, then release the lock."""
        epoch = self._epochs.pop(target, None)
        if epoch is None:
            raise RmaError(f"rank {self.rank}: unlock of target {target} without lock")
        proc = active_process()
        world = self.world
        now = world.engine.now
        # The origin's timeline must pass the last transfer's completion;
        # charge it lazily instead of parking (no thread handoff).
        if epoch.last_completion > now:
            proc.charge(epoch.last_completion - now)
        state = world.window_lock(self.win_id, self.comm.world_rank(target))
        # The release control message reaches the target after the epoch's
        # transfers have drained; other origins can acquire only then.
        release_at = max(
            world.fabric.control_delay(
                self.my_world_rank, self.comm.world_rank(target), rma=True
            ),
            epoch.last_completion,
        )
        world.engine.schedule_at(release_at, state.release)
        if world.trace is not None:
            self._c_unlock.add()
            world.trace.complete(
                "rma.epoch", epoch.start, max(world.engine.now, release_at),
                target=target,
                mode="excl" if epoch.lock_type == LOCK_EXCLUSIVE else "shared",
            )

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def put(self, data: bytes | np.ndarray, target: int, target_offset: int) -> None:
        """MPI_Put of one contiguous block."""
        payload = bytes(memoryview(data).cast("B")) if not isinstance(data, bytes) else data
        self.put_indexed([(target_offset, payload)], target)

    def put_indexed(self, blocks: Sequence[tuple[int, bytes]], target: int) -> None:
        """One transfer carrying many disjoint blocks (MPI_Type_indexed).

        This is TCIO's combining optimization: "we use MPI_Type_indexed to
        combine multiple data blocks as one derived data type instance
        [transferred] by a single one-sided communication call".
        """
        epoch = self._require_epoch(target)
        world = self.world
        target_w = self.comm.world_rank(target)
        total = sum(len(b) for _, b in blocks)
        remote = world.window_buffer(self.win_id, target_w)
        for off, block in blocks:
            if off < 0 or off + len(block) > len(remote):
                raise RmaError(
                    f"put outside window: [{off},{off + len(block)}) of {len(remote)}"
                )
        captured = [(off, bytes(b)) for off, b in blocks]
        self._maybe_fail("put", target_w)

        def land() -> None:
            for off, block in captured:
                remote[off : off + len(block)] = block

        t = world.fabric.transfer(self.my_world_rank, target_w, total, land, rma=True)
        epoch.last_completion = max(epoch.last_completion, t)
        if world.trace is not None:
            self._c_put.add(total)
            self._c_put_blocks.add(len(blocks))
            self._h_put_bytes.observe(total)

    def get(self, target: int, target_offset: int, nbytes: int):
        """MPI_Get of one contiguous block (epoch-blocking coroutine)."""
        [(off, data)] = yield from self.get_indexed([(target_offset, nbytes)], target)
        return data

    def get_indexed(self, blocks: Sequence[tuple[int, int]], target: int):
        """One transfer fetching many disjoint (offset, length) blocks.

        Returns ``(offset, bytes)`` pairs once the data reaches the origin.
        Unlike puts, gets must return data, so the call blocks until the
        response lands; it still counts as a single network round trip.
        """
        epoch = self._require_epoch(target)
        world = self.world
        proc = active_process()
        target_w = self.comm.world_rank(target)
        remote = world.window_buffer(self.win_id, target_w)
        total = 0
        for off, ln in blocks:
            if ln < 0 or off < 0 or off + ln > len(remote):
                raise RmaError(f"get outside window: [{off},{off + ln}) of {len(remote)}")
            total += ln

        self._maybe_fail("get", target_w)
        # Request travels to the target; data is snapshotted there, then
        # streams back to the origin.
        t_req = world.fabric.control_delay(self.my_world_rank, target_w, rma=True)
        result: list[tuple[int, bytes]] = []

        def serve() -> None:
            for off, ln in blocks:
                result.append((off, bytes(remote[off : off + ln])))
            t_back = world.fabric.delivery_time(
                target_w, self.my_world_rank, total, rma=True
            )
            world.engine.schedule_at(t_back, lambda: proc.wake())

        world.engine.schedule_at(t_req, serve)
        yield from proc.block(f"rma.get(target={target}, bytes={total})")
        epoch.last_completion = max(epoch.last_completion, world.engine.now)
        if world.trace is not None:
            self._c_get.add(total)
            self._c_get_blocks.add(len(blocks))
        return result

    # ------------------------------------------------------------------
    def accumulate(
        self, data: np.ndarray, target: int, target_offset: int, op: str = "sum"
    ) -> None:
        """MPI_Accumulate with a numpy reduction op applied at delivery."""
        epoch = self._require_epoch(target)
        world = self.world
        target_w = self.comm.world_rank(target)
        remote = world.window_buffer(self.win_id, target_w)
        payload = np.ascontiguousarray(data)
        nbytes = payload.nbytes
        if target_offset < 0 or target_offset + nbytes > len(remote):
            raise RmaError("accumulate outside window")
        if op != "sum":
            raise RmaError(f"unsupported accumulate op {op!r}")
        dtype = payload.dtype
        captured = payload.copy()

        def land() -> None:
            view = np.frombuffer(remote, dtype=dtype, count=captured.size, offset=target_offset)
            view += captured

        t = world.fabric.transfer(self.my_world_rank, target_w, nbytes, land, rma=True)
        epoch.last_completion = max(epoch.last_completion, t)
        if world.trace is not None:
            world.trace.count("rma.accumulate", nbytes)

    # ------------------------------------------------------------------
    # active-target synchronization (the alternative the paper rejects)
    # ------------------------------------------------------------------
    def fence(self):
        """MPI_Win_fence: collective epoch boundary.

        "MPI_Win_fence is the simplest approach to allow all processes to
        synchronize. However [it] is a collective call, which by nature
        would break the TCIO design, which allows all the I/O accesses to
        be performed independently." Provided for completeness and for the
        fence-vs-lock ablation; completes every open epoch of this origin,
        then barriers.
        """
        from repro.simmpi import collectives

        for target in list(self._epochs):
            self.unlock(target)
        yield from collectives.barrier(self.comm)

    # ------------------------------------------------------------------
    def _maybe_fail(self, op: str, target_w: int) -> None:
        """Injected transient put/get failure (before anything is scheduled,
        so the epoch stays consistent and the caller may simply retry)."""
        if self.world.dead_ranks:
            self.world.check_alive(self.my_world_rank, target_w, f"rma.{op}")
        plan = getattr(self.world, "faults", None)
        if plan is not None and plan.rma_fault(op, self.my_world_rank, target_w):
            active_process().charge(plan.spec.rma_fail_delay)
            raise RmaTransientError(op, self.my_world_rank, target_w)

    def _require_epoch(self, target: int) -> _Epoch:
        self._check_target(target)
        epoch = self._epochs.get(target)
        if epoch is None:
            raise RmaError(
                f"rank {self.rank}: RMA access to target {target} outside a lock epoch"
            )
        return epoch

    def _check_target(self, target: int) -> None:
        if not (0 <= target < self.comm.size):
            raise RmaError(f"target rank {target} outside communicator")

    def local_view(self) -> memoryview:
        """This rank's own exposure buffer."""
        return self.world.window_buffer(self.win_id, self.my_world_rank)
