"""ULFM-style fault-tolerance primitives over the simulated MPI layer.

The fail-stop machinery (PR 5) already provides deterministic failure
notification: ``MpiWorld.kill_ranks`` marks victims dead and interrupts
every parked survivor with a catchable :class:`RankUnreachable`, and every
later communication entry involving a dead rank raises the same error.
This module adds what User-Level Failure Mitigation layers on top of
notification — the three calls a program needs to *continue* instead of
aborting:

- :meth:`Communicator.revoke` (``MPI_Comm_revoke``): mark the broken
  communicator unusable so straggling survivors raise
  :class:`CommRevoked` promptly instead of posting into it;
- :func:`shrink` (``MPI_Comm_shrink``): survivors construct a re-numbered
  communicator excluding the dead;
- :func:`agree` (``MPI_Comm_agree``): fault-aware agreement on a bitmask
  that survives failures *during* the agreement itself.

Everything is a generator coroutine on the deterministic engine, and —
crucially — shrink needs **no communication on the broken communicator**:
the dead set is global world state every survivor observes identically, so
all members derive the same survivor group and the same new communicator
id locally, then synchronize once on the *new* communicator's fresh
barrier. Same seed, same kill, same shrink order, every run.
"""

from __future__ import annotations

from typing import Tuple

from repro.simmpi import collectives
from repro.simmpi.comm import Communicator
from repro.simmpi.group import GroupSpec, SubCommunicator
from repro.util.errors import MpiError, RankUnreachable

__all__ = ["failed_ranks", "shrink", "agree"]


def failed_ranks(comm: Communicator) -> Tuple[int, ...]:
    """World ranks of *comm*'s members lost to fail-stop crashes, sorted."""
    dead = comm.world.dead_ranks
    if not dead:
        return ()
    return tuple(sorted(r for r in comm.group_world_ranks() if r in dead))


def shrink(comm: Communicator):
    """``MPI_Comm_shrink``: the survivors' re-numbered communicator.

    Coroutine; every living member of *comm* must call it. The new
    communicator's group is *comm*'s group minus the world's dead set, in
    the parent's rank order, and its id is derived purely from the parent
    id and the sorted dead members — identical on every survivor without
    any exchange, and idempotent (shrinking twice against the same dead
    set yields the same communicator id). The only synchronization is a
    barrier on the *new* communicator, whose shared state is fresh (a
    broken parent barrier may hold stale arrivals from interrupted
    waiters; the new id keys a new one).

    Raises :class:`RankUnreachable` if yet another member dies during the
    entry barrier — callers loop (see :func:`agree`).
    """
    world = comm.world
    dead = failed_ranks(comm)
    survivors = tuple(r for r in comm.group_world_ranks() if r not in world.dead_ranks)
    my_world_rank = comm.world_rank(comm.rank)
    if my_world_rank not in survivors:
        raise MpiError(
            f"rank {my_world_rank} is marked dead and cannot join a shrink"
        )
    new_id = (comm._comm_id, "shrink", dead)
    new_comm = SubCommunicator(world, GroupSpec(survivors), my_world_rank, new_id)
    if world.trace is not None:
        world.trace.count("ft.shrink", 1)
    yield from collectives.barrier(new_comm)
    return new_comm


def agree(comm: Communicator, flags: int = 0):
    """``MPI_Comm_agree``: fault-aware bitwise-AND agreement on *flags*.

    Coroutine returning ``(agreed_flags, survivor_comm)``. The agreement
    tolerates failures *during* the call: each round shrinks to the
    current survivor set and AND-reduces the flags over the shrunken
    communicator; if a member dies mid-round, the surviving callers catch
    the :class:`RankUnreachable` and start another round. All survivors
    leave with the same flags and the same final communicator.
    """
    current = comm
    while True:
        try:
            current = yield from shrink(current)
            agreed = yield from collectives.allreduce(
                current, int(flags), lambda a, b: a & b
            )
            return agreed, current
        except RankUnreachable:
            continue
