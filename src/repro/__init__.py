"""Reproduction of "A Transparent Collective I/O Implementation" (IPDPS'13).

Subpackages
-----------
``repro.tcio``        the paper's contribution (transparent collective I/O)
``repro.mpiio``       MPI-IO with file views + ROMIO-style two-phase (OCIO)
``repro.simmpi``      simulated MPI (datatypes, pt2pt, collectives, RMA)
``repro.pfs``         Lustre-like striped, lock-managed file system
``repro.netsim``      interconnect model        ``repro.memsim``  memory budgets
``repro.sim``         virtual-time event engine ``repro.cluster`` machine presets
``repro.bench``       the synthetic benchmark   ``repro.art``     ART cosmology app
``repro.experiments`` table/figure harnesses    ``repro.cli``     command line
"""

__version__ = "1.0.0"
