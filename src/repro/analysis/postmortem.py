"""Where did the simulated time go? Per-resource utilization accounting.

Every reservation server and lock manager keeps busy/request counters;
:func:`analyze_run` folds them into one report so experiments can explain
*why* a configuration was slow (OST-bound? NIC-bound? lock-bound? matching
engine?) — the mechanism evidence behind the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.util.tables import render_table
from repro.util.units import format_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.mpi import MpiRunResult


@dataclass
class ResourceUsage:
    """One resource class's aggregate load."""

    name: str
    requests: int = 0
    busy_seconds: float = 0.0
    peak_utilization: float = 0.0  # of the busiest instance


@dataclass
class UtilizationReport:
    """Aggregated view of one simulated job."""

    elapsed: float
    resources: list[ResourceUsage] = field(default_factory=list)
    lock_acquires: int = 0
    lock_cache_hits: int = 0
    lock_waits: int = 0
    bytes_to_storage: int = 0
    bytes_from_storage: int = 0
    network_messages: int = 0
    network_bytes: int = 0

    def bottleneck(self) -> str:
        """The resource class with the highest peak utilization."""
        if not self.resources:
            return "none"
        return max(self.resources, key=lambda r: r.peak_utilization).name

    def render(self) -> str:
        """The report as an aligned ASCII block."""
        rows = [
            [
                r.name,
                r.requests,
                f"{r.busy_seconds * 1e3:.3f}ms",
                f"{r.peak_utilization * 100:.1f}%",
            ]
            for r in self.resources
        ]
        table = render_table(
            ["resource", "requests", "busy", "peak util"],
            rows,
            title=f"utilization over {self.elapsed * 1e3:.3f}ms simulated",
        )
        extras = (
            f"locks: {self.lock_acquires} acquires, {self.lock_cache_hits} cache hits, "
            f"{self.lock_waits} waits\n"
            f"storage: {format_size(self.bytes_to_storage)} written, "
            f"{format_size(self.bytes_from_storage)} read\n"
            f"network: {self.network_messages} messages, "
            f"{format_size(self.network_bytes)}\n"
            f"bottleneck: {self.bottleneck()}"
        )
        return table + "\n" + extras


def _usage(name: str, servers, horizon: float, requests_of, busy_of) -> ResourceUsage:
    usage = ResourceUsage(name=name)
    for s in servers:
        usage.requests += requests_of(s)
        busy = busy_of(s)
        usage.busy_seconds += busy
        if horizon > 0:
            usage.peak_utilization = max(usage.peak_utilization, min(1.0, busy / horizon))
    return usage


def analyze_run(result: "MpiRunResult") -> UtilizationReport:
    """Fold a finished run's counters into a :class:`UtilizationReport`."""
    world = result.world
    fabric = world.fabric
    horizon = result.elapsed
    report = UtilizationReport(elapsed=horizon)

    report.resources.append(
        _usage(
            "NIC tx",
            fabric.send_ports,
            horizon,
            lambda s: s.requests,
            lambda s: s.busy_time,
        )
    )
    report.resources.append(
        _usage(
            "NIC rx",
            fabric.recv_ports,
            horizon,
            lambda s: s.requests,
            lambda s: s.busy_time,
        )
    )
    report.resources.append(
        _usage(
            "fabric core",
            [fabric.core],
            horizon,
            lambda s: s.requests,
            lambda s: s.busy_time,
        )
    )
    report.resources.append(
        _usage(
            "node memory bus",
            fabric.memory,
            horizon,
            lambda s: s.requests,
            lambda s: s.busy_time,
        )
    )

    if world.pfs is not None:
        report.resources.append(
            _usage(
                "OST",
                world.pfs.osts,
                horizon,
                lambda o: o.read_requests + o.write_requests,
                lambda o: o.busy_time,
            )
        )
        report.resources.append(
            _usage(
                "storage link",
                world.pfs._client_links,
                horizon,
                lambda s: s.requests,
                lambda s: s.busy_time,
            )
        )
        for ost in world.pfs.osts:
            report.bytes_to_storage += ost.bytes_written
            report.bytes_from_storage += ost.bytes_read
        for name in world.pfs.list_files():
            locks = world.pfs.lookup(name).locks
            report.lock_acquires += locks.acquires
            report.lock_cache_hits += locks.cache_hits
            report.lock_waits += locks.waits

    msg = result.trace.get("net.msg")
    report.network_messages = msg.count
    report.network_bytes = int(msg.total)
    return report
