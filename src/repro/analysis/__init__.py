"""Post-run analysis: resource utilization and ASCII figure rendering."""

from repro.analysis.postmortem import UtilizationReport, analyze_run
from repro.analysis.charts import ascii_chart, log_scale_chart

__all__ = ["UtilizationReport", "analyze_run", "ascii_chart", "log_scale_chart"]
