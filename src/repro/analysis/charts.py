"""ASCII chart rendering for the figure harnesses.

The paper's figures are line charts over process counts (Figs. 5, 9, 10 use
a log y-axis) and grouped bars over file sizes (Figs. 6, 7). These helpers
render the same data as fixed-width text so EXPERIMENTS.md and the console
show the *shape* directly, without plotting dependencies.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

_MARKS = "o*x+#@"


def _fmt(v: float) -> str:
    if v >= 1000:
        return f"{v:.0f}"
    if v >= 10:
        return f"{v:.1f}"
    return f"{v:.2f}"


def ascii_chart(
    xs: Sequence[object],
    series: dict[str, Sequence[Optional[float]]],
    *,
    height: int = 12,
    log_y: bool = False,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render one chart: one column group per x, one mark per series.

    ``None`` points (failed/truncated runs, like OCIO's 48 GB OOM) simply
    have no mark in their column — the truncated-curve look of the paper.
    """
    values = [
        v for vs in series.values() for v in vs if v is not None and v > 0
    ]
    if not values or height < 3:
        return "(no data)"
    vmax = max(values)
    vmin = min(values)
    if log_y:
        lo, hi = math.log10(vmin), math.log10(vmax)
    else:
        lo, hi = 0.0, vmax
    if hi <= lo:
        hi = lo + 1.0

    def row_of(v: float) -> int:
        scaled = math.log10(v) if log_y else v
        frac = (scaled - lo) / (hi - lo)
        return min(height - 1, max(0, round(frac * (height - 1))))

    col_width = max(7, max(len(str(x)) for x in xs) + 2)
    grid = [[" " * col_width for _ in xs] for _ in range(height)]
    for si, (name, vs) in enumerate(series.items()):
        mark = _MARKS[si % len(_MARKS)]
        for xi, v in enumerate(vs):
            if v is None or v <= 0:
                continue
            r = row_of(v)
            cell = grid[r][xi]
            mid = col_width // 2
            cell = cell[:mid] + mark + cell[mid + 1 :]
            grid[r][xi] = cell

    lines = []
    if title:
        lines.append(title)
    top_label = _fmt(10**hi if log_y else hi)
    bottom_label = _fmt(10**lo if log_y else lo)
    label_width = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for r in range(height - 1, -1, -1):
        if r == height - 1:
            label = top_label
        elif r == 0:
            label = bottom_label
        elif r == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(grid[r]))
    lines.append(" " * label_width + " +" + "-" * (col_width * len(xs)))
    axis = "".join(f"{str(x):^{col_width}}" for x in xs)
    lines.append(" " * label_width + "  " + axis)
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def log_scale_chart(
    xs: Sequence[object],
    series: dict[str, Sequence[Optional[float]]],
    *,
    title: str = "",
    y_label: str = "MB/s",
    height: int = 12,
) -> str:
    """The paper's Figs. 9/10 style: log y-axis line chart."""
    return ascii_chart(
        xs, series, height=height, log_y=True, title=title, y_label=y_label
    )
