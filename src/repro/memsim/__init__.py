"""Simulated per-node memory accounting (for the Fig. 6/7 OOM behaviour)."""

from repro.memsim.memory import MemoryTracker, Allocation

__all__ = ["MemoryTracker", "Allocation"]
