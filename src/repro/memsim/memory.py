"""Per-node memory budgets for simulated allocations.

The paper's Fig. 6/7 headline is qualitative: at the 48 GB dataset the OCIO
benchmark "fails to work" because each process needs the application-level
combine buffer *plus* the two-phase temporary buffer (2 x 0.75 GB on top of
the application's own arrays), exceeding Lonestar's 24 GB/node. TCIO needs
only one segment-sized level-1 buffer plus the level-2 share (0.75 GB+1 MB).

Every substrate registers its simulated buffers here. Exceeding a node's
budget raises :class:`~repro.util.errors.OutOfMemoryError` — the analogue of
the malloc failure/OOM kill the paper observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.util.errors import OutOfMemoryError, SimulationError


@dataclass
class Allocation:
    """A live simulated allocation; free via :meth:`MemoryTracker.free`."""

    node: int
    nbytes: int
    label: str
    freed: bool = False


@dataclass
class _NodeState:
    budget: int
    in_use: int = 0
    high_water: int = 0
    allocations: dict[str, int] = field(default_factory=dict)


class MemoryTracker:
    """Tracks simulated allocations against per-node budgets.

    Ranks map to nodes via ``node_of``; all ranks of one node share its
    budget, as the paper's 12-core Lonestar nodes share 24 GB.
    """

    def __init__(self, node_budget: int, node_of: Sequence[int]):
        if node_budget <= 0:
            raise SimulationError("node budget must be positive")
        self.node_of = list(node_of)
        n_nodes = (max(self.node_of) + 1) if self.node_of else 1
        self._nodes = [_NodeState(budget=node_budget) for _ in range(n_nodes)]

    # ------------------------------------------------------------------
    def node_for_rank(self, rank: int) -> int:
        """The node hosting *rank*."""
        try:
            return self.node_of[rank]
        except IndexError:
            raise SimulationError(f"rank {rank} outside memory tracker") from None

    def allocate(self, rank: int, nbytes: int, label: str) -> Allocation:
        """Charge *nbytes* to *rank*'s node; raises OutOfMemoryError on overflow."""
        if nbytes < 0:
            raise SimulationError("negative allocation")
        node_idx = self.node_for_rank(rank)
        node = self._nodes[node_idx]
        if node.in_use + nbytes > node.budget:
            raise OutOfMemoryError(node_idx, nbytes, node.in_use, node.budget)
        node.in_use += nbytes
        node.high_water = max(node.high_water, node.in_use)
        node.allocations[label] = node.allocations.get(label, 0) + nbytes
        return Allocation(node=node_idx, nbytes=nbytes, label=label)

    def free(self, allocation: Allocation) -> None:
        """Return an allocation's bytes to its node."""
        if allocation.freed:
            raise SimulationError(f"double free of {allocation.label}")
        allocation.freed = True
        node = self._nodes[allocation.node]
        node.in_use -= allocation.nbytes
        node.allocations[allocation.label] -= allocation.nbytes

    # ------------------------------------------------------------------
    def in_use(self, node: int) -> int:
        """Live bytes on *node*."""
        return self._nodes[node].in_use

    def high_water(self, node: Optional[int] = None) -> int:
        """Peak usage of one node, or the max over all nodes."""
        if node is not None:
            return self._nodes[node].high_water
        return max(n.high_water for n in self._nodes)

    def breakdown(self, node: int) -> dict[str, int]:
        """Live bytes per label on *node* (zero entries dropped)."""
        return {k: v for k, v in self._nodes[node].allocations.items() if v}

    @property
    def n_nodes(self) -> int:
        """Number of tracked nodes."""
        return len(self._nodes)


class NullMemoryTracker(MemoryTracker):
    """A tracker with an effectively infinite budget (semantics-only tests)."""

    def __init__(self, nranks: int = 1):
        super().__init__(node_budget=2**62, node_of=[0] * max(1, nranks))
