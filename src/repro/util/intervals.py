"""Half-open byte-extent algebra.

Extents ``[start, stop)`` are the lingua franca of the whole stack: file
views flatten to extents, the PFS lock manager locks extents, two-phase
collective I/O partitions the aggregate extent into file domains, and TCIO's
level-1 buffer tracks the file domain of cached blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Extent:
    """A half-open byte range ``[start, stop)`` in a file or buffer."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise ValueError(f"extent stop < start: [{self.start}, {self.stop})")

    @property
    def length(self) -> int:
        """Byte count of the extent."""
        return self.stop - self.start

    def is_empty(self) -> bool:
        """True when start == stop."""
        return self.stop == self.start

    def contains(self, offset: int) -> bool:
        """True when *offset* lies within the extent."""
        return self.start <= offset < self.stop

    def covers(self, other: "Extent") -> bool:
        """True when *other* lies entirely inside this extent."""
        return self.start <= other.start and other.stop <= self.stop

    def overlaps(self, other: "Extent") -> bool:
        """True when the ranges share at least one byte."""
        return self.start < other.stop and other.start < self.stop

    def touches(self, other: "Extent") -> bool:
        """Overlapping or exactly adjacent (mergeable into one extent)."""
        return self.start <= other.stop and other.start <= self.stop

    def intersect(self, other: "Extent") -> "Extent":
        """The overlap of two extents; empty extent at max(start) if disjoint."""
        start = max(self.start, other.start)
        stop = min(self.stop, other.stop)
        if stop < start:
            return Extent(start, start)
        return Extent(start, stop)

    def shift(self, delta: int) -> "Extent":
        """The extent translated by *delta* bytes."""
        return Extent(self.start + delta, self.stop + delta)

    def split_at(self, offset: int) -> tuple["Extent", "Extent"]:
        """Split into ``[start, offset)`` and ``[offset, stop)``."""
        if not (self.start <= offset <= self.stop):
            raise ValueError(f"split point {offset} outside {self}")
        return Extent(self.start, offset), Extent(offset, self.stop)

    def align_down(self, granularity: int) -> "Extent":
        """Expand outward to *granularity*-aligned boundaries.

        This is how a stripe-granularity lock manager rounds a byte request
        to whole lock units.
        """
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        start = (self.start // granularity) * granularity
        stop = -(-self.stop // granularity) * granularity
        if self.is_empty():
            stop = start
        return Extent(start, stop)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.start},{self.stop})"


class ExtentSet:
    """A normalized (sorted, disjoint, merged) set of extents.

    Supports union, subtraction, intersection and coverage queries in
    O(n log n); used for lock conflict detection and sieving hole analysis.
    """

    def __init__(self, extents: Iterable[Extent] = ()):
        self._extents: list[Extent] = self._normalize(extents)

    @staticmethod
    def _normalize(extents: Iterable[Extent]) -> list[Extent]:
        items = sorted(e for e in extents if not e.is_empty())
        merged: list[Extent] = []
        for e in items:
            if merged and merged[-1].touches(e):
                last = merged.pop()
                merged.append(Extent(last.start, max(last.stop, e.stop)))
            else:
                merged.append(e)
        return merged

    def __iter__(self) -> Iterator[Extent]:
        return iter(self._extents)

    def __len__(self) -> int:
        return len(self._extents)

    def __bool__(self) -> bool:
        return bool(self._extents)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExtentSet):
            return NotImplemented
        return self._extents == other._extents

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return "ExtentSet(" + ", ".join(map(str, self._extents)) + ")"

    @property
    def total_length(self) -> int:
        """Sum of member extent lengths."""
        return sum(e.length for e in self._extents)

    def bounding(self) -> Extent:
        """Smallest single extent covering the whole set (empty if empty)."""
        if not self._extents:
            return Extent(0, 0)
        return Extent(self._extents[0].start, self._extents[-1].stop)

    def add(self, extent: Extent) -> None:
        """Insert an extent (renormalizing in place)."""
        if extent.is_empty():
            return
        self._extents = self._normalize([*self._extents, extent])

    def union(self, other: "ExtentSet | Extent") -> "ExtentSet":
        """The normalized union with another set or extent."""
        other_items = [other] if isinstance(other, Extent) else list(other)
        return ExtentSet([*self._extents, *other_items])

    def intersect(self, other: "ExtentSet | Extent") -> "ExtentSet":
        """The normalized intersection with another set or extent."""
        other_items = [other] if isinstance(other, Extent) else list(other)
        out: list[Extent] = []
        for a in self._extents:
            for b in other_items:
                piece = a.intersect(b)
                if not piece.is_empty():
                    out.append(piece)
        return ExtentSet(out)

    def subtract(self, other: "ExtentSet | Extent") -> "ExtentSet":
        """The set minus another set or extent."""
        other_items = [other] if isinstance(other, Extent) else list(other)
        remaining = list(self._extents)
        for hole in sorted(e for e in other_items if not e.is_empty()):
            next_remaining: list[Extent] = []
            for e in remaining:
                if not e.overlaps(hole):
                    next_remaining.append(e)
                    continue
                if e.start < hole.start:
                    next_remaining.append(Extent(e.start, hole.start))
                if hole.stop < e.stop:
                    next_remaining.append(Extent(hole.stop, e.stop))
            remaining = next_remaining
        return ExtentSet(remaining)

    def covers(self, extent: Extent) -> bool:
        """True when *extent* is fully contained in the set."""
        if extent.is_empty():
            return True
        return not ExtentSet([extent]).subtract(self)

    def overlaps(self, extent: Extent) -> bool:
        """True when any member extent overlaps *extent*."""
        return any(e.overlaps(extent) for e in self._extents)

    def holes_within(self, extent: Extent) -> "ExtentSet":
        """Gaps of *extent* not covered by the set (data-sieving holes)."""
        return ExtentSet([extent]).subtract(self)
