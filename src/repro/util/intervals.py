"""Half-open byte-extent algebra.

Extents ``[start, stop)`` are the lingua franca of the whole stack: file
views flatten to extents, the PFS lock manager locks extents, two-phase
collective I/O partitions the aggregate extent into file domains, and TCIO's
level-1 buffer tracks the file domain of cached blocks.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Extent:
    """A half-open byte range ``[start, stop)`` in a file or buffer."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise ValueError(f"extent stop < start: [{self.start}, {self.stop})")

    @property
    def length(self) -> int:
        """Byte count of the extent."""
        return self.stop - self.start

    def is_empty(self) -> bool:
        """True when start == stop."""
        return self.stop == self.start

    def contains(self, offset: int) -> bool:
        """True when *offset* lies within the extent."""
        return self.start <= offset < self.stop

    def covers(self, other: "Extent") -> bool:
        """True when *other* lies entirely inside this extent."""
        return self.start <= other.start and other.stop <= self.stop

    def overlaps(self, other: "Extent") -> bool:
        """True when the ranges share at least one byte."""
        return self.start < other.stop and other.start < self.stop

    def touches(self, other: "Extent") -> bool:
        """Overlapping or exactly adjacent (mergeable into one extent)."""
        return self.start <= other.stop and other.start <= self.stop

    def intersect(self, other: "Extent") -> "Extent":
        """The overlap of two extents; empty extent at max(start) if disjoint."""
        start = max(self.start, other.start)
        stop = min(self.stop, other.stop)
        if stop < start:
            return Extent(start, start)
        return Extent(start, stop)

    def shift(self, delta: int) -> "Extent":
        """The extent translated by *delta* bytes."""
        return Extent(self.start + delta, self.stop + delta)

    def split_at(self, offset: int) -> tuple["Extent", "Extent"]:
        """Split into ``[start, offset)`` and ``[offset, stop)``."""
        if not (self.start <= offset <= self.stop):
            raise ValueError(f"split point {offset} outside {self}")
        return Extent(self.start, offset), Extent(offset, self.stop)

    def align_down(self, granularity: int) -> "Extent":
        """Expand outward to *granularity*-aligned boundaries.

        This is how a stripe-granularity lock manager rounds a byte request
        to whole lock units.
        """
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        start = (self.start // granularity) * granularity
        stop = -(-self.stop // granularity) * granularity
        if self.is_empty():
            stop = start
        return Extent(start, stop)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.start},{self.stop})"


def _start_of(extent: Extent) -> int:
    """Bisect key (module-level: no per-call lambda allocation)."""
    return extent.start


class ExtentSet:
    """A normalized (sorted, disjoint, merged) set of extents.

    Supports union, subtraction, intersection and coverage queries in
    O(n log n); used for lock conflict detection and sieving hole analysis.
    """

    def __init__(self, extents: Iterable[Extent] = ()):
        self._extents: list[Extent] = self._normalize(extents)

    @staticmethod
    def _normalize(extents: Iterable[Extent]) -> list[Extent]:
        items = sorted(e for e in extents if not e.is_empty())
        merged: list[Extent] = []
        for e in items:
            if merged and merged[-1].touches(e):
                last = merged.pop()
                merged.append(Extent(last.start, max(last.stop, e.stop)))
            else:
                merged.append(e)
        return merged

    def __iter__(self) -> Iterator[Extent]:
        return iter(self._extents)

    def __len__(self) -> int:
        return len(self._extents)

    def __bool__(self) -> bool:
        return bool(self._extents)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExtentSet):
            return NotImplemented
        return self._extents == other._extents

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return "ExtentSet(" + ", ".join(map(str, self._extents)) + ")"

    @property
    def total_length(self) -> int:
        """Sum of member extent lengths."""
        return sum(e.length for e in self._extents)

    def bounding(self) -> Extent:
        """Smallest single extent covering the whole set (empty if empty)."""
        if not self._extents:
            return Extent(0, 0)
        return Extent(self._extents[0].start, self._extents[-1].stop)

    def add(self, extent: Extent) -> None:
        """Insert an extent (renormalizing in place).

        Bisect insertion with a local splice — O(log n) to find the
        affected run plus one list splice — instead of re-sorting the
        whole set per insert. Lock managers and sieving analyses call
        ``add`` once per request, so this is a simulator hot path.
        """
        if extent.is_empty():
            return
        extents = self._extents
        lo, stop = extent.start, extent.stop
        i = bisect_left(extents, lo, key=_start_of)
        # A left neighbor that overlaps or touches [lo, stop) joins the
        # merge window (members are disjoint, so at most one can).
        if i > 0 and extents[i - 1].stop >= lo:
            i -= 1
            lo = extents[i].start
        # Absorb every member starting inside (or adjacent to) the window,
        # widening it when an absorbed member extends past stop.
        j = i
        n = len(extents)
        while j < n and extents[j].start <= stop:
            if extents[j].stop > stop:
                stop = extents[j].stop
            j += 1
        extents[i:j] = [Extent(lo, stop)]

    def union(self, other: "ExtentSet | Extent") -> "ExtentSet":
        """The normalized union with another set or extent."""
        other_items = [other] if isinstance(other, Extent) else list(other)
        return ExtentSet([*self._extents, *other_items])

    def intersect(self, other: "ExtentSet | Extent") -> "ExtentSet":
        """The normalized intersection with another set or extent.

        Linear two-pointer merge over the two sorted disjoint runs
        (a single ``Extent`` is one run) instead of the old all-pairs
        scan — O(n + m), not O(n * m).
        """
        a_run = self._extents
        b_run = [other] if isinstance(other, Extent) else other._extents
        out: list[Extent] = []
        ai = bi = 0
        na, nb = len(a_run), len(b_run)
        while ai < na and bi < nb:
            a, b = a_run[ai], b_run[bi]
            start = a.start if a.start > b.start else b.start
            stop = a.stop if a.stop < b.stop else b.stop
            if start < stop:
                out.append(Extent(start, stop))
            if a.stop <= b.stop:
                ai += 1
            else:
                bi += 1
        return ExtentSet(out)

    def subtract(self, other: "ExtentSet | Extent") -> "ExtentSet":
        """The set minus another set or extent."""
        other_items = [other] if isinstance(other, Extent) else list(other)
        remaining = list(self._extents)
        for hole in sorted(e for e in other_items if not e.is_empty()):
            next_remaining: list[Extent] = []
            for e in remaining:
                if not e.overlaps(hole):
                    next_remaining.append(e)
                    continue
                if e.start < hole.start:
                    next_remaining.append(Extent(e.start, hole.start))
                if hole.stop < e.stop:
                    next_remaining.append(Extent(hole.stop, e.stop))
            remaining = next_remaining
        return ExtentSet(remaining)

    def covers(self, extent: Extent) -> bool:
        """True when *extent* is fully contained in the set.

        Members are disjoint and merged, so coverage means one single
        member spans the extent — a binary search, no set algebra.
        """
        if extent.is_empty():
            return True
        i = bisect_right(self._extents, extent.start, key=_start_of) - 1
        return i >= 0 and self._extents[i].stop >= extent.stop

    def overlaps(self, extent: Extent) -> bool:
        """True when any member extent overlaps *extent*."""
        return any(e.overlaps(extent) for e in self._extents)

    def holes_within(self, extent: Extent) -> "ExtentSet":
        """Gaps of *extent* not covered by the set (data-sieving holes)."""
        return ExtentSet([extent]).subtract(self)
