"""Deterministic random-number streams.

Every stochastic piece of the reproduction (ART segment lengths, synthetic
workload shuffles, failure injection in tests) draws from a named stream
derived from a root seed, so whole experiments replay bit-identically.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root: int, *names: object) -> int:
    """Derive a 63-bit child seed from a root seed and a path of names.

    Uses SHA-256 over the textual path, so the stream for
    ``("art", "segments", rank)`` is stable across runs, Python versions and
    platforms, and independent streams never collide in practice.
    """
    text = repr((int(root), tuple(str(n) for n in names)))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def seeded_rng(root: int, *names: object) -> np.random.Generator:
    """A numpy Generator for the named child stream of *root*."""
    return np.random.default_rng(derive_seed(root, *names))
