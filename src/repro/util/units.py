"""Byte-size and time formatting/parsing helpers.

The paper reports sizes as "768MB", "48GB", stripe sizes as "1MB", and
throughput as MB/s. We use binary units internally (1 MB = 2**20 bytes,
matching Lustre's stripe-size arithmetic) and keep parsing tolerant of both
``MB`` and ``MiB`` spellings.
"""

from __future__ import annotations

import re

KIB = 1024
MIB = 1024**2
GIB = 1024**3
TIB = 1024**4

_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KIB,
    "kb": KIB,
    "kib": KIB,
    "m": MIB,
    "mb": MIB,
    "mib": MIB,
    "g": GIB,
    "gb": GIB,
    "gib": GIB,
    "t": TIB,
    "tb": TIB,
    "tib": TIB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str | int | float) -> int:
    """Parse ``"768MB"``-style strings (or pass through numbers) to bytes.

    >>> parse_size("1MB")
    1048576
    >>> parse_size("0.75GB")
    805306368
    >>> parse_size(4096)
    4096
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"negative size: {text!r}")
        return int(text)
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"cannot parse size: {text!r}")
    value, suffix = m.groups()
    try:
        mult = _SUFFIXES[suffix.lower()]
    except KeyError:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}") from None
    return int(float(value) * mult)


def format_size(nbytes: int | float) -> str:
    """Render a byte count with the largest suffix that keeps it >= 1.

    >>> format_size(48 * GIB)
    '48GB'
    >>> format_size(768 * MIB)
    '768MB'
    """
    nbytes = float(nbytes)
    for mult, suffix in ((TIB, "TB"), (GIB, "GB"), (MIB, "MB"), (KIB, "KB")):
        if abs(nbytes) >= mult:
            value = nbytes / mult
            if value == int(value):
                return f"{int(value)}{suffix}"
            return f"{value:.2f}{suffix}"
    return f"{int(nbytes)}B"


def format_time(seconds: float) -> str:
    """Render simulated seconds human-readably (us/ms/s/min)."""
    if seconds < 0:
        return "-" + format_time(-seconds)
    if seconds == 0:
        return "0s"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.2f}ms"
    if seconds < 120:
        return f"{seconds:.2f}s"
    return f"{seconds / 60:.1f}min"


def format_throughput(bytes_per_second: float) -> str:
    """Render a throughput in the paper's MB/s convention."""
    return f"{bytes_per_second / MIB:.1f}MB/s"
