"""Plain-text table rendering for experiment reports.

The benchmark harnesses print the same rows/series the paper's tables and
figures report; this module renders them as aligned ASCII so EXPERIMENTS.md
and console output stay readable without plotting dependencies.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, "x"], [22, "yy"]]))
    a  | b
    ---+---
    1  | x
    22 | yy
    """
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append(sep)
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render one figure's data as a table with one column per curve.

    ``series`` values may contain ``None`` for missing points (e.g. the
    OCIO 48 GB OOM point, or MPI-IO runs past the 90-minute cap); these
    render as ``--`` like a truncated curve in the paper's figures.
    """
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        row: list[object] = [x]
        for values in series.values():
            v = values[i] if i < len(values) else None
            row.append("--" if v is None else v)
        rows.append(row)
    return render_table(headers, rows, title=title)
