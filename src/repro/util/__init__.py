"""Shared utilities: units, error types, interval algebra, RNG streams, tables.

These helpers are substrate-neutral; every other subpackage may depend on
them, and they depend on nothing but numpy and the standard library.
"""

from repro.util.errors import (
    ReproError,
    SimulationError,
    MpiError,
    PfsError,
    TcioError,
    OutOfMemoryError,
    DeadlockError,
)
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    parse_size,
    format_size,
    format_time,
    format_throughput,
)
from repro.util.intervals import Extent, ExtentSet
from repro.util.rng import seeded_rng, derive_seed

__all__ = [
    "ReproError",
    "SimulationError",
    "MpiError",
    "PfsError",
    "TcioError",
    "OutOfMemoryError",
    "DeadlockError",
    "KIB",
    "MIB",
    "GIB",
    "parse_size",
    "format_size",
    "format_time",
    "format_throughput",
    "Extent",
    "ExtentSet",
    "seeded_rng",
    "derive_seed",
]
