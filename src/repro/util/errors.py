"""Exception hierarchy for the reproduction library.

All library-raised errors derive from :class:`ReproError` so applications can
catch everything from this package with a single ``except`` clause, mirroring
how MPI implementations funnel failures through ``MPI_ERR_*`` codes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistent state.

    Examples: a process resumed after the engine stopped, an event scheduled
    in the past, or a simulated entity used from outside a rank context.
    """


class DeadlockError(SimulationError):
    """All simulated processes are blocked and no event can make progress.

    The simulated analogue of an MPI job hanging forever; raised instead so
    tests fail fast with the set of blocked ranks and what they wait on.
    """

    def __init__(self, waiters: dict[int, str]):
        self.waiters = dict(waiters)
        detail = ", ".join(f"rank {r}: {w}" for r, w in sorted(waiters.items()))
        super().__init__(f"deadlock: all processes blocked ({detail})")


class MpiError(ReproError):
    """Invalid use of the simulated MPI layer (bad rank, type mismatch...)."""


class RmaError(MpiError):
    """Invalid one-sided access: unlocked window, out-of-range target..."""


class DatatypeError(MpiError):
    """Malformed derived datatype definition."""


class PfsError(ReproError):
    """Parallel-file-system failure (unknown file, bad extent, mode error)."""


class MpiIoError(ReproError):
    """Invalid use of the MPI-IO layer (bad view, closed file, bad mode)."""


class TcioError(ReproError):
    """Invalid use of the TCIO library (closed handle, bad offset, mode)."""


class OutOfMemoryError(ReproError):
    """A simulated allocation exceeded the node's memory budget.

    Reproduces the Fig. 6/7 failure: at 48 GB datasets the OCIO benchmark
    cannot allocate its application-level combine buffer plus the two-phase
    temporary buffer on 24 GB Lonestar nodes.
    """

    def __init__(self, node: int, requested: int, in_use: int, budget: int):
        self.node = node
        self.requested = requested
        self.in_use = in_use
        self.budget = budget
        super().__init__(
            f"node {node}: allocation of {requested} bytes exceeds budget "
            f"({in_use} in use of {budget})"
        )


class BenchmarkError(ReproError):
    """A benchmark configuration or run is invalid."""
