"""Exception hierarchy for the reproduction library.

All library-raised errors derive from :class:`ReproError` so applications can
catch everything from this package with a single ``except`` clause, mirroring
how MPI implementations funnel failures through ``MPI_ERR_*`` codes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library.

    Every error carries an optional ``job`` attribute: once several
    simulated applications share one PFS (``repro.tenancy``), an error
    bubbling out of shared infrastructure must say *whose* job it belongs
    to. ``None`` means single-job context (or attribution unknown). Use
    :func:`tag_job` to attach it without disturbing the exception's
    message/args (constructors stay source-compatible).
    """

    job: "str | None" = None


def tag_job(exc: BaseException, job: "str | None") -> BaseException:
    """Attach job attribution to *exc* (returns it, for raise chains).

    Idempotent and conservative: an already-attributed error keeps its
    original job — the innermost frame knows best whose work failed.
    """
    if job is not None and getattr(exc, "job", None) is None:
        exc.job = job  # type: ignore[attr-defined]
    return exc


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistent state.

    Examples: a process resumed after the engine stopped, an event scheduled
    in the past, or a simulated entity used from outside a rank context.
    """


class DeadlockError(SimulationError):
    """All simulated processes are blocked and no event can make progress.

    The simulated analogue of an MPI job hanging forever; raised instead so
    tests fail fast with the set of blocked ranks and what they wait on.
    """

    def __init__(self, waiters: dict[int, str]):
        self.waiters = dict(waiters)
        detail = ", ".join(f"rank {r}: {w}" for r, w in sorted(waiters.items()))
        super().__init__(f"deadlock: all processes blocked ({detail})")


class MpiError(ReproError):
    """Invalid use of the simulated MPI layer (bad rank, type mismatch...)."""


class RmaError(MpiError):
    """Invalid one-sided access: unlocked window, out-of-range target..."""


class RmaTransientError(RmaError):
    """An injected, retryable one-sided transfer failure.

    Models a lost completion / NIC-level failure of a put or get: the
    epoch is still consistent, so the origin may simply retry the
    operation (possibly in a fresh lock epoch).
    """

    def __init__(self, op: str, origin: int, target: int):
        self.op = op
        self.origin = origin
        self.target = target
        super().__init__(f"transient RMA {op} failure: origin {origin} -> target {target}")


class DatatypeError(MpiError):
    """Malformed derived datatype definition."""


class RankUnreachable(MpiError):
    """A communication partner died from a fail-stop crash.

    Raised at the entry of sends, one-sided accesses, and collectives when
    the peer (or any collective participant) is in the world's dead set.
    Fail-stop semantics with ULFM-style recovery hooks: rank code may let
    this propagate (the whole simulated job aborts deterministically
    instead of hanging), or — the fault-tolerant path — catch it and
    rebuild a survivor communicator via ``comm.shrink()`` /
    ``comm.agree()`` (:mod:`repro.simmpi.ft`).
    """

    def __init__(self, origin: int, target: int, op: str):
        self.origin = origin
        self.target = target
        self.op = op
        super().__init__(
            f"{op}: rank {target} is unreachable (crashed), seen from rank {origin}"
        )


class CommRevoked(MpiError):
    """The communicator was revoked after a failure (ULFM ``MPI_ERR_REVOKED``).

    ``comm.revoke()`` marks a communicator id unusable world-wide; every
    subsequent point-to-point or collective entry on it raises this, so
    survivors that were about to post into the broken communicator bail
    out promptly and join the :meth:`shrink` instead of hanging.
    """

    def __init__(self, comm_id, rank: int, op: str):
        self.comm_id = comm_id
        self.rank = rank
        self.op = op
        super().__init__(
            f"{op}: communicator {comm_id!r} was revoked, seen from rank {rank}"
        )


class PfsError(ReproError):
    """Parallel-file-system failure (unknown file, bad extent, mode error)."""


class LockTimeout(PfsError):
    """An extent-lock request expired before the grant arrived.

    The waiter is removed from the lock queue (no orphaned entry is left
    behind); callers typically retry with backoff via a
    :class:`repro.faults.RetryPolicy`.
    """

    def __init__(self, owner: int, extent, timeout: float):
        self.owner = owner
        self.extent = extent
        self.timeout = timeout
        super().__init__(
            f"lock request of owner {owner} on {extent} timed out after {timeout:g}s"
        )


class RetryBudgetExceeded(ReproError):
    """An operation kept failing after exhausting its retry budget.

    Carries the final underlying error as ``__cause__``; recovery layers
    catch this to trigger graceful degradation (e.g. TCIO's
    independent-write fallback).
    """

    def __init__(self, what: str, attempts: int):
        self.what = what
        self.attempts = attempts
        super().__init__(f"{what}: still failing after {attempts} attempts")


class MpiIoError(ReproError):
    """Invalid use of the MPI-IO layer (bad view, closed file, bad mode)."""


class TcioError(ReproError):
    """Invalid use of the TCIO library (closed handle, bad offset, mode)."""


class OutOfMemoryError(ReproError):
    """A simulated allocation exceeded the node's memory budget.

    Reproduces the Fig. 6/7 failure: at 48 GB datasets the OCIO benchmark
    cannot allocate its application-level combine buffer plus the two-phase
    temporary buffer on 24 GB Lonestar nodes.
    """

    def __init__(self, node: int, requested: int, in_use: int, budget: int):
        self.node = node
        self.requested = requested
        self.in_use = in_use
        self.budget = budget
        super().__init__(
            f"node {node}: allocation of {requested} bytes exceeds budget "
            f"({in_use} in use of {budget})"
        )


class IoServerError(ReproError):
    """Invalid use of the delegate I/O-server layer (bad placement,
    protocol violation, closed session)."""


class ServerBusy(IoServerError):
    """A delegate rejected a request because its bounded queue is full.

    The deterministic, *retryable* backpressure signal of
    :mod:`repro.ioserver`: admission control refused the request without
    dequeuing anything, so the client may simply resubmit (typically with
    virtual-clock backoff — see ``IoServerConfig.max_retries``). Carries
    enough context to make rejection handling testable.
    """

    def __init__(self, delegate: int, client: int, op: str, depth: int):
        self.delegate = delegate
        self.client = client
        self.op = op
        self.depth = depth
        super().__init__(
            f"delegate rank {delegate} rejected {op} from client {client}: "
            f"queue full at depth {depth}"
        )


class TenancyError(ReproError):
    """Invalid multi-job scenario or misuse of the tenancy layer."""


class BenchmarkError(ReproError):
    """A benchmark configuration or run is invalid."""
