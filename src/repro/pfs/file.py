"""A stored file: real bytes, striping metadata, and its lock manager."""

from __future__ import annotations

from repro.pfs.layout import StripeLayout
from repro.pfs.lockmgr import LockManager
from repro.util.errors import PfsError


class PfsFile:
    """One file in the simulated file system.

    Data lives in a growable bytearray (sparse regions read as zeros, like
    a POSIX sparse file), so every experiment can verify byte-exact content
    against a reference writer.
    """

    def __init__(
        self,
        name: str,
        layout: StripeLayout,
        lock_contention_penalty: float = 0.0,
        trace=None,
    ):
        self.name = name
        self.layout = layout
        self.locks = LockManager(layout.stripe_size, lock_contention_penalty, trace)
        self._data = bytearray()

    @property
    def size(self) -> int:
        """Current file size in bytes."""
        return len(self._data)

    def write_bytes(self, offset: int, data: bytes | memoryview) -> None:
        """Store *data* at *offset*, growing (zero-filling) as needed."""
        if offset < 0:
            raise PfsError(f"negative write offset {offset}")
        end = offset + len(data)
        if end > len(self._data):
            self._data.extend(b"\x00" * (end - len(self._data)))
        self._data[offset:end] = data

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        """Fetch *nbytes* at *offset*; holes and post-EOF read as zeros."""
        if offset < 0 or nbytes < 0:
            raise PfsError(f"bad read [{offset}, +{nbytes})")
        chunk = bytes(self._data[offset : offset + nbytes])
        if len(chunk) < nbytes:
            chunk += b"\x00" * (nbytes - len(chunk))
        return chunk

    def truncate(self, size: int) -> None:
        """Shrink or zero-extend the file to *size* bytes."""
        if size < 0:
            raise PfsError("negative truncate size")
        if size < len(self._data):
            del self._data[size:]
        else:
            self._data.extend(b"\x00" * (size - len(self._data)))

    def contents(self) -> bytes:
        """The whole file (for test assertions)."""
        return bytes(self._data)
