"""Object storage targets: FIFO disk servers with asymmetric read/write rates.

Service times optionally carry deterministic pseudo-random *production
noise* (see :class:`repro.pfs.spec.LustreSpec`): request ``k`` of OST ``i``
is stretched by a factor derived from a hash of ``(i, k)``, so runs stay
bit-reproducible while synchronized I/O phases feel straggler effects.
"""

from __future__ import annotations

from repro.util.errors import PfsError


def _noise_fraction(index: int, request: int) -> float:
    """Deterministic pseudo-uniform value in [0, 1) per (OST, request)."""
    x = (index * 0x9E3779B97F4A7C15 + request * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 29
    return (x & 0xFFFFFF) / float(1 << 24)


class Ost:
    """One storage server.

    Requests reserve the server FIFO (virtual-clock model, one event per
    request): a request of n bytes arriving at t starts at
    ``max(t, busy_until)`` and runs ``overhead + n/rate`` seconds, with the
    rate depending on direction.
    """

    __slots__ = (
        "index",
        "write_rate",
        "read_rate",
        "write_overhead",
        "read_overhead",
        "write_noise",
        "read_noise",
        "client_scaling",
        "fault_factor",
        "faults",
        "clients",
        "busy_until",
        "last_start",
        "read_requests",
        "write_requests",
        "bytes_read",
        "bytes_written",
        "busy_time",
        "qos_policy",
        "_tenant_lines",
        "_tenant_weights",
        "tenant_bytes",
    )

    def __init__(
        self,
        index: int,
        write_rate: float,
        read_rate: float,
        write_overhead: float,
        read_overhead: float,
        write_noise: float = 0.0,
        read_noise: float = 0.0,
        client_scaling: float = 0.0,
    ):
        if write_rate <= 0 or read_rate <= 0:
            raise PfsError("OST rates must be positive")
        if write_overhead < 0 or read_overhead < 0:
            raise PfsError("OST overhead must be >= 0")
        self.index = index
        self.write_rate = write_rate
        self.read_rate = read_rate
        self.write_overhead = write_overhead
        self.read_overhead = read_overhead
        self.write_noise = write_noise
        self.read_noise = read_noise
        self.client_scaling = client_scaling
        self.fault_factor = 1.0  # whole-job degradation of a "slow" OST
        self.faults = None  # optional FaultPlan, installed by the Pfs
        self.clients: set[int] = set()
        self.busy_until = 0.0
        self.last_start = 0.0  # service start of the latest request

        self.read_requests = 0
        self.write_requests = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_time = 0.0

        #: QoS token-issue policy for multi-tenant runs: ``"fifo"``
        #: (classic arrival order, the default — byte- and time-identical
        #: to pre-tenancy behavior) or ``"fair"`` (per-tenant virtual
        #: token lines; see :meth:`register_tenant`).
        self.qos_policy = "fifo"
        self._tenant_lines: dict = {}
        self._tenant_weights: dict = {}
        #: Per-tenant (job, direction) byte totals; populated only when a
        #: tenant is registered, so solo runs pay nothing.
        self.tenant_bytes: dict = {}

    def register_tenant(self, tenant: str, weight: float = 1.0) -> None:
        """Enroll *tenant* (a job name) in this OST's QoS accounting.

        Under the ``"fair"`` policy each enrolled tenant gets a virtual
        token line: a request may not start before the tenant's line, and
        each request advances the line by ``service x W/w`` where ``w`` is
        the tenant's *weight* (job priority) and ``W`` the sum of enrolled
        weights — deterministic weighted fair-share pacing of token issue,
        so one heavy job cannot monopolize the FIFO. With a single tenant
        (W/w = 1) the line never outruns the FIFO and behavior matches
        ``"fifo"`` exactly, which keeps solo baselines honest.
        """
        if weight <= 0:
            raise PfsError("tenant weight must be positive")
        self._tenant_lines.setdefault(tenant, 0.0)
        self._tenant_weights[tenant] = weight
        self.tenant_bytes.setdefault(tenant, [0, 0])

    def reserve(
        self,
        arrival: float,
        nbytes: int,
        *,
        write: bool,
        client: int = 0,
        tenant=None,
    ) -> float:
        """Reserve one request; returns its completion time."""
        if nbytes < 0:
            raise PfsError("negative request size")
        rate = self.write_rate if write else self.read_rate
        overhead = self.write_overhead if write else self.read_overhead
        noise = self.write_noise if write else self.read_noise
        if self.client_scaling:
            self.clients.add(client)
            overhead *= 1.0 + self.client_scaling * len(self.clients)
        start = arrival if arrival > self.busy_until else self.busy_until
        if tenant is not None and self.qos_policy == "fair":
            line = self._tenant_lines.get(tenant, 0.0)
            if line > start:
                start = line
        self.last_start = start
        service = overhead + nbytes / rate
        if noise:
            request_no = self.write_requests + self.read_requests
            service *= 1.0 + noise * _noise_fraction(self.index, request_no)
        if self.fault_factor != 1.0:
            service *= self.fault_factor
        if self.faults is not None:
            service += self.faults.ost_stall(self.index, write)
        self.busy_until = start + service
        self.busy_time += service
        if write:
            self.write_requests += 1
            self.bytes_written += nbytes
        else:
            self.read_requests += 1
            self.bytes_read += nbytes
        if tenant is not None:
            if self.qos_policy == "fair":
                line = self._tenant_lines.get(tenant, 0.0)
                base = arrival if arrival > line else line
                total_w = sum(self._tenant_weights.values()) or 1.0
                my_w = self._tenant_weights.get(tenant, 1.0)
                self._tenant_lines[tenant] = base + service * (total_w / my_w)
            per = self.tenant_bytes.get(tenant)
            if per is not None:
                per[1 if write else 0] += nbytes
        return self.busy_until

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Ost {self.index} reqs={self.read_requests}r/{self.write_requests}w "
            f"busy_until={self.busy_until:.6f}>"
        )
