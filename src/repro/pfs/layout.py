"""Striping math: byte offsets -> (OST, stripe) coordinates.

A file with stripe size S and stripe count C starting at OST ``first_ost``
places stripe unit k (bytes ``[k*S, (k+1)*S)``) on OST
``(first_ost + k mod C) mod n_osts``. Lock units coincide with stripe units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.util.errors import PfsError
from repro.util.intervals import Extent


@dataclass(frozen=True)
class StripeLayout:
    """The striping of one file."""

    stripe_size: int
    stripe_count: int
    first_ost: int
    n_osts: int

    def __post_init__(self) -> None:
        if self.stripe_size < 1:
            raise PfsError("stripe_size must be positive")
        if not (1 <= self.stripe_count <= self.n_osts):
            raise PfsError("stripe_count must be in [1, n_osts]")
        if not (0 <= self.first_ost < self.n_osts):
            raise PfsError("first_ost outside OST range")

    def stripe_index(self, offset: int) -> int:
        """Which stripe unit holds byte *offset*."""
        if offset < 0:
            raise PfsError(f"negative offset {offset}")
        return offset // self.stripe_size

    def ost_of_stripe(self, stripe: int) -> int:
        """The OST storing stripe unit *stripe*."""
        return (self.first_ost + stripe % self.stripe_count) % self.n_osts

    def ost_of_offset(self, offset: int) -> int:
        """The OST storing byte *offset*."""
        return self.ost_of_stripe(self.stripe_index(offset))

    def split_by_stripe(self, extent: Extent) -> Iterator[tuple[int, Extent]]:
        """Yield (stripe index, sub-extent) pieces cut at stripe boundaries."""
        if extent.is_empty():
            return
        pos = extent.start
        while pos < extent.stop:
            stripe = pos // self.stripe_size
            stripe_end = (stripe + 1) * self.stripe_size
            stop = min(extent.stop, stripe_end)
            yield stripe, Extent(pos, stop)
            pos = stop

    def split_by_ost(self, extent: Extent) -> dict[int, list[Extent]]:
        """Group an extent's stripe pieces by OST.

        Contiguous-on-one-OST runs are merged, so a large aligned write to
        a stripe_count=1 file becomes a single OST request — the behaviour
        that rewards collective aggregation.
        """
        out: dict[int, list[Extent]] = {}
        for stripe, piece in self.split_by_stripe(extent):
            ost = self.ost_of_stripe(stripe)
            pieces = out.setdefault(ost, [])
            if pieces and pieces[-1].stop == piece.start:
                pieces[-1] = Extent(pieces[-1].start, piece.stop)
            else:
                pieces.append(piece)
        return out

    def lock_units(self, extent: Extent) -> Extent:
        """Expand an extent to whole lock units (= stripe units)."""
        return extent.align_down(self.stripe_size)
