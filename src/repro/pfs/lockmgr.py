"""Distributed lock manager: stripe-granularity extent locks.

Lustre serializes conflicting access to a shared file by granting per-client
extent locks rounded to stripe boundaries. The paper's TCIO sets its level-2
segment size to this lock granularity precisely so concurrent segment
flushes from different ranks never contend: "If the segment size is smaller
than the lock granularity of the underlying file system, MPI processes might
compete with each other for the privilege to access a locked region."

Grants are FIFO (a blocked request also blocks later compatible requests on
overlapping ranges, preventing starvation), and each acquire/release pair
charges a fixed lock-server round trip.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.obs.spans import NULL_TRACER
from repro.sim.engine import active_process
from repro.sim.process import SimProcess
from repro.util.errors import LockTimeout, PfsError
from repro.util.intervals import Extent


class LockMode(enum.Enum):
    """Shared (read) vs exclusive (write) extent locks."""
    SHARED = "shared"  # concurrent readers
    EXCLUSIVE = "exclusive"  # single writer


@dataclass
class LockGrant:
    """A held lock.

    Grants are *cached* client-side, as in Lustre: ``done()`` marks the
    I/O finished but keeps the grant (``in_use == 0``) so the same owner's
    next access to the extent is free; a conflicting owner revokes cached
    grants (paying the DLM callback penalty). ``release()`` drops the
    grant entirely.
    """

    owner: int
    mode: LockMode
    extent: Extent  # already rounded to lock units
    released: bool = False
    in_use: int = 1  # active I/O operations under this grant


@dataclass
class _Waiting:
    owner: int
    mode: LockMode
    extent: Extent
    proc: SimProcess
    grant: Optional[LockGrant] = None


class LockManager:
    """Extent locks for one file.

    ``contention_penalty`` charges the acquirer extra time per conflicting
    holder/waiter it finds (the DLM callback/revocation round trips of a
    real lock server) — fine-grained interleaved writers therefore degrade
    superlinearly with client count.
    """

    def __init__(
        self, granularity: int, contention_penalty: float = 0.0, trace=None,
        *, audit: bool = False,
    ):
        if granularity < 1:
            raise PfsError("lock granularity must be positive")
        if contention_penalty < 0:
            raise PfsError("contention penalty must be >= 0")
        self.granularity = granularity
        self.contention_penalty = contention_penalty
        self.trace = trace  # optional TraceRecorder hub
        self._tracer = trace.tracer if trace is not None else NULL_TRACER
        self._held: list[LockGrant] = []
        self._queue: Deque[_Waiting] = deque()
        self.acquires = 0
        self.cache_hits = 0  # served from a cached grant, no server trip
        self.waits = 0  # acquires that had to block (contention counter)
        self.timeouts = 0  # acquires that expired before their grant
        #: When auditing, every grant-set mutation is appended here as
        #: ``(event, owner, mode, start, stop)`` in engine order, for the
        #: invariant checker (:func:`verify_lock_history`). Events:
        #: ``grant`` (immediate), ``grant_queued`` (after waiting),
        #: ``release``, ``revoke``, ``wait``, ``timeout``.
        self.audit = audit
        self.history: list[tuple[str, int, str, int, int]] = []
        #: Optional callback invoked with ``(owner, extent)`` when a
        #: timed acquire expires (the fault plan hooks this to record
        #: the injection).
        self.on_timeout = None

    def _count(self, name: str) -> None:
        if self.trace is not None:
            self.trace.count(name)

    def _note(self, event: str, owner: int, mode: LockMode, extent: Extent) -> None:
        if self.audit:
            self.history.append((event, owner, mode.value, extent.start, extent.stop))

    # ------------------------------------------------------------------
    def _conflicts(self, mode: LockMode, extent: Extent, owner: int) -> bool:
        """A *busy or idle* conflicting grant of another owner exists.

        Callers revoke idle conflicts first; whatever remains is in use
        and must be waited for.
        """
        for grant in self._held:
            if grant.owner == owner:
                continue
            if not grant.extent.overlaps(extent):
                continue
            if grant.mode is LockMode.EXCLUSIVE or mode is LockMode.EXCLUSIVE:
                return True
        return False

    def _blocked_by_queue(self, extent: Extent, owner: int) -> bool:
        """FIFO fairness: an overlapping waiter ahead of us blocks us too."""
        return any(
            w.owner != owner and w.extent.overlaps(extent) for w in self._queue
        )

    def _cached_match(self, owner: int, mode: LockMode, extent: Extent):
        """An existing grant of *owner* that already covers the request."""
        for g in self._held:
            if g.owner != owner or not g.extent.covers(extent):
                continue
            if mode is LockMode.EXCLUSIVE and g.mode is not LockMode.EXCLUSIVE:
                continue
            return g
        return None

    def _revoke_idle_conflicts(self, mode: LockMode, extent: Extent, owner: int) -> int:
        """Drop other owners' *cached* (idle) conflicting grants; returns
        how many were revoked (each costs a DLM callback round trip)."""
        revoked = 0
        for g in list(self._held):
            if g.owner == owner or g.in_use > 0 or not g.extent.overlaps(extent):
                continue
            if g.mode is LockMode.EXCLUSIVE or mode is LockMode.EXCLUSIVE:
                g.released = True
                self._held.remove(g)
                self._note("revoke", g.owner, g.mode, g.extent)
                revoked += 1
        return revoked

    # ------------------------------------------------------------------
    def acquire(
        self,
        owner: int,
        mode: LockMode,
        extent: Extent,
        *,
        timeout: Optional[float] = None,
    ):
        """Park until the (rounded) extent lock is granted (coroutine).

        A cached grant of the same owner covering the extent is reused for
        free (Lustre client lock caching); idle conflicting grants of other
        owners are revoked with a per-grant callback penalty; busy ones are
        waited for FIFO. Must run inside a simulated process; the caller
        charges the lock-server round trip separately (the filesystem
        layer does).

        With ``timeout`` set, a request still queued after that much
        virtual time is withdrawn — the queue entry is removed (no orphan
        blocks later waiters) and :class:`LockTimeout` raised, so callers
        can retry with backoff.
        """
        rounded = extent.align_down(self.granularity)
        cached = self._cached_match(owner, mode, rounded)
        if cached is not None and not self._blocked_by_queue(rounded, owner):
            cached.in_use += 1
            self.cache_hits += 1
            self._count("pfs.lock.cache_hit")
            return cached
        self.acquires += 1
        self._count("pfs.lock.acquire")
        proc = active_process()
        if not self._blocked_by_queue(rounded, owner):
            revoked = self._revoke_idle_conflicts(mode, rounded, owner)
            if revoked:
                if self.contention_penalty:
                    proc.charge(revoked * self.contention_penalty)
                if self.trace is not None:
                    self.trace.count("pfs.lock.revoke", revoked)
            if not self._conflicts(mode, rounded, owner):
                grant = LockGrant(owner, mode, rounded)
                self._held.append(grant)
                self._note("grant", owner, mode, rounded)
                return grant
        self.waits += 1
        self._count("pfs.lock.wait")
        if self.contention_penalty:
            conflicts = sum(
                1 for g in self._held if g.owner != owner and g.extent.overlaps(rounded)
            ) + sum(
                1 for w in self._queue if w.owner != owner and w.extent.overlaps(rounded)
            )
            proc.charge(conflicts * self.contention_penalty)
        waiting = _Waiting(owner, mode, rounded, proc)
        self._queue.append(waiting)
        self._note("wait", owner, mode, rounded)
        timer = None
        if timeout is not None and timeout > 0:
            def expire() -> None:
                # Only meaningful while still queued without a grant; a
                # grant racing the timer wins (the timer is cancelled on
                # the normal path, but an engine-context _drain may have
                # granted in the same instant).
                if waiting.grant is not None or waiting not in self._queue:
                    return
                self._queue.remove(waiting)
                self.timeouts += 1
                self._count("pfs.lock.timeout")
                self._note("timeout", owner, mode, rounded)
                if self.on_timeout is not None:
                    self.on_timeout(owner, rounded)
                # Our queue slot no longer blocks anyone behind us.
                self._drain()
                waiting.proc.wake()

            timer = proc.engine.schedule(timeout, expire)
        try:
            with self._tracer.span("pfs.lock_wait", mode=mode.value, owner=owner):
                yield from proc.block(f"pfs.lock({mode.value}, {rounded})")
        except BaseException:
            # The waiter was interrupted mid-park (fail-stop crash or
            # RankUnreachable notification). Withdraw its queue entry so
            # no orphan blocks later waiters; a grant that raced in via
            # _drain is returned to the pool instead of leaking.
            if waiting in self._queue:
                self._queue.remove(waiting)
                self._note("timeout", owner, mode, rounded)
                self._drain()
            elif waiting.grant is not None and not waiting.grant.released:
                waiting.grant.released = True
                self._held.remove(waiting.grant)
                self._note("release", owner, mode, rounded)
                self._drain()
            if timer is not None:
                timer.cancel()
            raise
        if waiting.grant is None:
            raise LockTimeout(owner, rounded, timeout)
        if timer is not None:
            timer.cancel()
        return waiting.grant

    def done(self, grant: LockGrant) -> None:
        """The I/O under *grant* finished; keep the grant cached."""
        if grant.released:
            raise PfsError("done() on a released grant")
        if grant.in_use <= 0:
            raise PfsError("done() without a matching use")
        grant.in_use -= 1
        if grant.in_use == 0:
            self._drain()

    def release(self, grant: LockGrant) -> None:
        """Drop the grant entirely (cached or not)."""
        if grant.released:
            raise PfsError("lock released twice")
        grant.released = True
        self._held.remove(grant)
        self._note("release", grant.owner, grant.mode, grant.extent)
        self._drain()

    def _drain(self) -> None:
        """Grant queued requests FIFO until one cannot proceed."""
        while self._queue:
            head = self._queue[0]
            self._revoke_idle_conflicts(head.mode, head.extent, head.owner)
            if self._conflicts(head.mode, head.extent, head.owner):
                return
            self._queue.popleft()
            grant = LockGrant(head.owner, head.mode, head.extent)
            self._held.append(grant)
            head.grant = grant
            self._note("grant_queued", head.owner, head.mode, head.extent)
            head.proc.wake()

    # ------------------------------------------------------------------
    @property
    def held_count(self) -> int:
        """Number of currently held (incl. cached) grants."""
        return len(self._held)

    @property
    def queued_count(self) -> int:
        """Number of requests waiting FIFO."""
        return len(self._queue)


def verify_lock_history(
    history: list[tuple[str, int, str, int, int]], *, expect_drained: bool = True
) -> None:
    """Replay an audit history and raise PfsError on any invariant breach.

    Checked invariants:

    - **Mutual exclusion**: no grant ever coexists with a conflicting
      grant of another owner (overlapping extents, either exclusive).
    - **Balanced lifecycle**: every ``release``/``revoke`` matches a live
      grant, and every ``grant_queued``/``timeout`` consumes a matching
      ``wait`` entry.
    - **No orphans** (when ``expect_drained``): at the end of the history
      no ``wait`` entry remains unresolved — in particular, a timed-out
      request must have left the queue.
    """

    def conflict(a, b) -> bool:
        (ao, am, a0, a1), (bo, bm, b0, b1) = a, b
        if ao == bo or a1 <= b0 or b1 <= a0:
            return False
        return am == "exclusive" or bm == "exclusive"

    active: list[tuple[int, str, int, int]] = []
    waiting: list[tuple[int, str, int, int]] = []
    for i, (event, owner, mode, start, stop) in enumerate(history):
        key = (owner, mode, start, stop)
        if event in ("grant", "grant_queued"):
            for held in active:
                if conflict(key, held):
                    raise PfsError(
                        f"history[{i}]: grant {key} conflicts with held {held}"
                    )
            active.append(key)
            if event == "grant_queued":
                if key not in waiting:
                    raise PfsError(f"history[{i}]: grant_queued without wait: {key}")
                waiting.remove(key)
        elif event in ("release", "revoke"):
            if key not in active:
                raise PfsError(f"history[{i}]: {event} of unheld grant {key}")
            active.remove(key)
        elif event == "wait":
            waiting.append(key)
        elif event == "timeout":
            if key not in waiting:
                raise PfsError(f"history[{i}]: timeout without wait: {key}")
            waiting.remove(key)
        else:
            raise PfsError(f"history[{i}]: unknown event {event!r}")
    if expect_drained and waiting:
        raise PfsError(f"orphaned lock-queue entries at end of history: {waiting}")
