"""The file system front end: namespace plus per-node clients.

A :class:`PfsClient` is what rank-side code calls. One ``read``/``write``
is charged as: lock-server round trip, then (in parallel across OSTs, FIFO
within each OST) per-request overhead + transfer at the direction's rate,
bounded by the client node's storage link; the caller's simulated process
sleeps until the last piece completes, then the lock releases.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.netsim.server import ReservationServer
from repro.pfs.file import PfsFile
from repro.pfs.layout import StripeLayout
from repro.pfs.lockmgr import LockMode
from repro.pfs.ost import Ost
from repro.pfs.spec import LustreSpec
from repro.sim.engine import Engine, active_process
from repro.sim.trace import TraceRecorder
from repro.util.errors import PfsError
from repro.util.intervals import Extent


class Pfs:
    """Namespace + OST pool of one simulated file system."""

    def __init__(
        self,
        engine: Engine,
        spec: LustreSpec,
        n_client_nodes: int,
        trace: Optional[TraceRecorder] = None,
    ):
        spec.validate()
        self.engine = engine
        self.spec = spec
        self.trace = trace
        self.osts = [
            Ost(
                i,
                spec.ost_write_bandwidth,
                spec.ost_read_bandwidth,
                spec.ost_write_overhead,
                spec.ost_read_overhead,
                spec.ost_write_noise,
                spec.ost_read_noise,
                spec.ost_client_scaling,
            )
            for i in range(spec.n_osts)
        ]
        self._client_links = [
            ReservationServer(f"lnet{n}", spec.client_bandwidth)
            for n in range(max(1, n_client_nodes))
        ]
        self._files: dict[str, PfsFile] = {}
        self._next_first_ost = 0
        self.faults = None  # optional FaultPlan (see install_faults)
        #: Tenant jobs enrolled for QoS/accounting (multi-job runs only).
        self.tenants: list[str] = []

    # ------------------------------------------------------------------
    # multi-tenant QoS
    # ------------------------------------------------------------------
    @property
    def qos_policy(self) -> str:
        """The OST token-issue policy (``"fifo"`` or ``"fair"``)."""
        return self.osts[0].qos_policy if self.osts else "fifo"

    def set_qos(self, policy: str) -> None:
        """Select the OST token-issue policy for multi-tenant runs.

        ``"fifo"`` (default) keeps classic arrival-order service —
        bit-identical to single-job behavior. ``"fair"`` paces token
        issue per enrolled tenant (see :meth:`Ost.register_tenant`);
        it changes *when* requests run, never what bytes land.
        """
        if policy not in ("fifo", "fair"):
            raise PfsError(f"unknown QoS policy {policy!r}")
        for ost in self.osts:
            ost.qos_policy = policy

    def register_tenant(self, job: str, weight: float = 1.0) -> None:
        """Enroll job *job* for per-OST QoS pacing and byte accounting.

        ``weight`` is the job's fair-share priority (see
        :meth:`Ost.register_tenant`).
        """
        if job not in self.tenants:
            self.tenants.append(job)
        for ost in self.osts:
            ost.register_tenant(job, weight)

    def install_faults(self, plan) -> None:
        """Arm this file system with a bound :class:`FaultPlan`.

        Chooses the plan's slow OSTs (recorded as ``ost.slow`` injections),
        hands every OST the plan for per-request stalls, and switches
        existing files' lock managers to audited/reporting mode. Call
        before time starts (run_mpi does, before ``pfs_init``).
        """
        self.faults = plan
        if plan is None:
            return
        for index in plan.slow_osts_for(len(self.osts)):
            self.osts[index].fault_factor = plan.spec.slow_factor
        for ost in self.osts:
            ost.faults = plan
        for f in self._files.values():
            self._arm_locks(f)

    def _arm_locks(self, f: PfsFile) -> None:
        if self.faults is not None:
            f.locks.audit = f.locks.audit or self.faults.spec.audit_locks
            f.locks.on_timeout = self.faults.note_lock_timeout

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------
    def create(self, name: str, *, stripe_count: Optional[int] = None) -> PfsFile:
        """Create (or return existing) file; stripes start round-robin."""
        if name in self._files:
            return self._files[name]
        count = self.spec.default_stripe_count if stripe_count is None else stripe_count
        layout = StripeLayout(
            stripe_size=self.spec.stripe_size,
            stripe_count=count,
            first_ost=self._next_first_ost,
            n_osts=self.spec.n_osts,
        )
        self._next_first_ost = (self._next_first_ost + count) % self.spec.n_osts
        f = PfsFile(name, layout, self.spec.lock_contention_penalty, self.trace)
        self._arm_locks(f)
        self._files[name] = f
        return f

    def lookup(self, name: str) -> PfsFile:
        """The file named *name* (PfsError if absent)."""
        try:
            return self._files[name]
        except KeyError:
            raise PfsError(f"no such file: {name!r}") from None

    def exists(self, name: str) -> bool:
        """Whether *name* exists in the namespace."""
        return name in self._files

    def unlink(self, name: str) -> None:
        """Remove *name* from the namespace (idempotent)."""
        self._files.pop(name, None)

    def list_files(self) -> Sequence[str]:
        """Sorted names of all files."""
        return sorted(self._files)

    # ------------------------------------------------------------------
    def client(self, node: int, *, tenant: Optional[str] = None) -> "PfsClient":
        """The storage client of compute node *node*.

        ``tenant`` tags the client with a job name for multi-tenant QoS
        and per-OST byte attribution; solo runs leave it ``None``.
        """
        if not (0 <= node < len(self._client_links)):
            raise PfsError(f"node {node} has no storage link")
        return PfsClient(self, node, tenant=tenant)


class PfsClient:
    """The POSIX-ish per-node interface rank code uses."""

    def __init__(self, pfs: Pfs, node: int, *, tenant: Optional[str] = None):
        self.pfs = pfs
        self.node = node
        self.tenant = tenant
        self._link = pfs._client_links[node]

    # ------------------------------------------------------------------
    def write(
        self,
        file: PfsFile | str,
        offset: int,
        data: bytes | memoryview,
        *,
        owner: int = 0,
        lock_timeout: Optional[float] = None,
    ):
        """Synchronous write of one contiguous extent (coroutine).

        ``lock_timeout`` bounds the extent-lock wait (LockTimeout past it);
        None waits unboundedly, as before.
        """
        yield from self._transfer(
            file, offset, data=data, nbytes=len(data), write=True, owner=owner,
            lock_timeout=lock_timeout,
        )

    def read(
        self,
        file: PfsFile | str,
        offset: int,
        nbytes: int,
        *,
        owner: int = 0,
        lock_timeout: Optional[float] = None,
    ):
        """Synchronous read of one contiguous extent (holes read as zeros).

        Coroutine returning the bytes.
        """
        return (yield from self._transfer(
            file, offset, data=None, nbytes=nbytes, write=False, owner=owner,
            lock_timeout=lock_timeout,
        ))

    def write_sieved(
        self,
        file: PfsFile | str,
        pieces: list[tuple[int, bytes]],
        *,
        owner: int = 0,
        lock_timeout: Optional[float] = None,
    ):
        """Data-sieving write: read-modify-write of the bounding extent
        under ONE exclusive lock.

        Without the cross-operation lock, two clients whose sieve windows
        overlap would resurrect stale bytes over each other's disjoint
        data — the lost-update ROMIO's sieving locks exist to prevent.
        """
        f = self._resolve(file)
        if not pieces:
            return
        proc = active_process()
        yield from proc.settle()
        engine = self.pfs.engine
        start_off = min(off for off, _ in pieces)
        stop_off = max(off + len(b) for off, b in pieces)
        extent = Extent(start_off, stop_off)
        hits_before = f.locks.cache_hits
        grant = yield from f.locks.acquire(
            owner, LockMode.EXCLUSIVE, extent, timeout=lock_timeout
        )
        if f.locks.cache_hits == hits_before:
            proc.charge(self.pfs.spec.lock_latency)
        trace = self.pfs.trace
        tracer = trace.tracer if trace is not None else None
        emit = tracer is not None and tracer.enabled
        # read phase
        now = engine.now
        link_done = self._link.reserve(now, extent.length)
        finish = link_done
        for ost_idx, ost_pieces in f.layout.split_by_ost(extent).items():
            ost = self.pfs.osts[ost_idx]
            for piece in ost_pieces:
                t = ost.reserve(
                    link_done, piece.length, write=False, client=owner,
                    tenant=self.tenant,
                )
                if emit:
                    tracer.complete(
                        "ost.read", ost.last_start, t, f"ost{ost_idx}",
                        bytes=piece.length, client=owner,
                    )
                finish = max(finish, t)
        buf = bytearray(f.read_bytes(extent.start, extent.length))
        for off, data in pieces:
            buf[off - extent.start : off - extent.start + len(data)] = data
        # write phase starts after the read completes
        link_done = self._link.reserve(finish, extent.length)
        w_finish = link_done
        for ost_idx, ost_pieces in f.layout.split_by_ost(extent).items():
            ost = self.pfs.osts[ost_idx]
            for piece in ost_pieces:
                t = ost.reserve(
                    link_done, piece.length, write=True, client=owner,
                    tenant=self.tenant,
                )
                if emit:
                    tracer.complete(
                        "ost.write", ost.last_start, t, f"ost{ost_idx}",
                        bytes=piece.length, client=owner,
                    )
                w_finish = max(w_finish, t)
        if emit:
            tracer.complete("pfs.sieved_write", now, w_finish, bytes=extent.length)
        f.write_bytes(extent.start, bytes(buf))
        if w_finish > engine.now:
            proc.charge(w_finish - engine.now)
            engine.schedule_at(w_finish, lambda: f.locks.done(grant))
        else:
            f.locks.done(grant)
        if self.pfs.trace is not None:
            self.pfs.trace.count("pfs.sieved_write", sum(len(b) for _, b in pieces))

    def write_vec(
        self,
        file: PfsFile | str,
        pieces: list[tuple[int, bytes]],
        *,
        owner: int = 0,
        lock_timeout: Optional[float] = None,
    ):
        """Batched write of many extents of one file (coroutine).

        Byte-equivalent to issuing one :meth:`write` per piece in order,
        but the whole batch costs O(1) scheduler events instead of O(N):
        piece timings chain on an analytic cursor (piece k's transfer is
        reserved at piece k-1's completion, exactly as the unbatched
        settle sequence would), every payload lands at submission, and a
        single charge + a single scheduled release event close out all
        extent locks at the batch's completion time. Locks are held to
        batch end rather than per-piece finish, so contending writers may
        observe slightly different (never earlier) grant times — callers
        opt in via ``TcioConfig.batched_writeback``.
        """
        f = self._resolve(file)
        if not pieces:
            return
        proc = active_process()
        yield from proc.settle()
        engine = self.pfs.engine
        trace = self.pfs.trace
        tracer = trace.tracer if trace is not None else None
        emit = tracer is not None and tracer.enabled
        lock_latency = self.pfs.spec.lock_latency
        grants: list = []
        released = False
        cursor = engine.now
        # Lock latency accrues lazily in the unbatched path (charged at
        # piece k, elapsed before piece k+1's reservation), so it delays
        # the *next* piece, not the one that paid it.
        pending_latency = 0.0
        try:
            for offset, data in pieces:
                nbytes = len(data)
                if nbytes == 0:
                    continue
                extent = Extent(offset, offset + nbytes)
                hits_before = f.locks.cache_hits
                grant = yield from f.locks.acquire(
                    owner, LockMode.EXCLUSIVE, extent, timeout=lock_timeout
                )
                grants.append(grant)
                # A contended acquire parks the coroutine; the cursor never
                # runs behind real (virtual) time.
                if engine.now > cursor:
                    cursor = engine.now
                arrival = cursor + pending_latency
                pending_latency = (
                    lock_latency if f.locks.cache_hits == hits_before else 0.0
                )
                link_done = self._link.reserve(arrival, nbytes)
                finish = link_done
                for ost_idx, ost_pieces in f.layout.split_by_ost(extent).items():
                    ost = self.pfs.osts[ost_idx]
                    for piece in ost_pieces:
                        t = ost.reserve(
                            link_done, piece.length, write=True, client=owner,
                            tenant=self.tenant,
                        )
                        if emit:
                            tracer.complete(
                                "ost.write", ost.last_start, t, f"ost{ost_idx}",
                                bytes=piece.length, client=owner,
                            )
                        finish = max(finish, t)
                if emit:
                    tracer.complete("pfs.write", arrival, finish, bytes=nbytes)
                f.write_bytes(offset, data)
                cursor = finish
                if trace is not None:
                    trace.count("pfs.write", nbytes)
                    trace.registry.histogram("pfs.write_bytes").observe(nbytes)
            done = cursor + pending_latency
            if done > engine.now:
                proc.charge(done - engine.now)
                batch = list(grants)
                engine.schedule_at(
                    done, lambda: [f.locks.done(g) for g in batch]
                )
                released = True
        finally:
            if not released:
                for g in grants:
                    f.locks.done(g)

    # ------------------------------------------------------------------
    def _resolve(self, file: PfsFile | str) -> PfsFile:
        return file if isinstance(file, PfsFile) else self.pfs.lookup(file)

    def _transfer(
        self,
        file: PfsFile | str,
        offset: int,
        *,
        data: Optional[bytes | memoryview],
        nbytes: int,
        write: bool,
        owner: int,
        lock_timeout: Optional[float] = None,
    ):
        f = self._resolve(file)
        proc = active_process()
        yield from proc.settle()
        engine = self.pfs.engine
        trace = self.pfs.trace
        if nbytes == 0:
            return b""
        extent = Extent(offset, offset + nbytes)

        # 1. The extent lock. A cached grant (Lustre client lock caching)
        #    is free; an actual acquisition charges the lock-server round
        #    trip, and contended acquires park the caller inside acquire().
        mode = LockMode.EXCLUSIVE if write else LockMode.SHARED
        hits_before = f.locks.cache_hits
        grant = yield from f.locks.acquire(owner, mode, extent, timeout=lock_timeout)
        if f.locks.cache_hits == hits_before:
            proc.charge(self.pfs.spec.lock_latency)
        released = False
        try:
            # 2. The client link and the OSTs both reserve the transfer;
            #    completion is the max over all per-OST pieces.
            tracer = trace.tracer if trace is not None else None
            emit = tracer is not None and tracer.enabled
            op = "ost.write" if write else "ost.read"
            start = engine.now
            finish = start
            link_done = self._link.reserve(start, nbytes)
            for ost_idx, pieces in f.layout.split_by_ost(extent).items():
                ost = self.pfs.osts[ost_idx]
                for piece in pieces:
                    t = ost.reserve(
                        link_done, piece.length, write=write, client=owner,
                        tenant=self.tenant,
                    )
                    if emit:
                        tracer.complete(
                            op, ost.last_start, t, f"ost{ost_idx}",
                            bytes=piece.length, client=owner,
                        )
                    finish = max(finish, t)
            finish = max(finish, link_done)
            if emit:
                tracer.complete(
                    "pfs.write" if write else "pfs.read", start, finish,
                    bytes=nbytes,
                )

            # 3. Data lands/loads instantaneously at the commit point; the
            #    caller's timeline advances to `finish` lazily, and the
            #    lock releases (waking any waiter) exactly at `finish`.
            if write:
                assert data is not None
                f.write_bytes(offset, data)
                result = b""
            else:
                result = f.read_bytes(offset, nbytes)
            if finish > engine.now:
                proc.charge(finish - engine.now)
                engine.schedule_at(finish, lambda: f.locks.done(grant))
                released = True
            if trace is not None:
                trace.count("pfs.write" if write else "pfs.read", nbytes)
                trace.registry.histogram(
                    "pfs.write_bytes" if write else "pfs.read_bytes"
                ).observe(nbytes)
            return result
        finally:
            if not released:
                f.locks.done(grant)
