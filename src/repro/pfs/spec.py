"""Parallel-file-system parameterization (the paper's Lustre, scaled)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import MIB


@dataclass(frozen=True)
class LustreSpec:
    """Cost/layout constants for the simulated file system.

    Attributes
    ----------
    n_osts:
        Object storage targets in the system (Lonestar: 30).
    stripe_size:
        Bytes per stripe unit; also the lock granularity. (Lonestar: 1 MB;
        scaled presets divide it together with all data sizes.)
    default_stripe_count:
        OSTs a new file is striped over. The paper: "By default, each file
        is stored on a single OST. We use the default setting."
    ost_write_bandwidth / ost_read_bandwidth:
        Sustained bytes/s per OST. Reads are faster than writes (server
        caches, RAID read-ahead), matching Fig. 5's read curves sitting
        well above the write curves.
    ost_write_overhead / ost_read_overhead:
        Fixed seconds per I/O request reaching an OST (seek + RPC +
        journal commit for writes; reads are far cheaper thanks to
        server-side read-ahead and caches). This is what makes many small
        requests catastrophically slower than few large ones — the effect
        collective I/O exists to fix.
    lock_latency:
        Round-trip seconds to the lock server per acquire/release pair.
    client_bandwidth:
        Bytes/s of a compute node's storage link (LNET router share).
    ost_client_scaling:
        Per-request service-time inflation per distinct client an OST has
        served: ``overhead *= 1 + coeff * clients``. Storage servers
        schedule per-client RPC streams, hold per-export state, and their
        request queues deepen with client count — the reason the paper's
        vanilla-MPI-IO ART runs blew past 90 minutes once 512+ processes
        hammered the same OSTs with tiny requests.
    lock_contention_penalty:
        Extra seconds charged per conflicting holder/waiter when a lock
        request finds its extent contended — the distributed-lock-manager
        callback/revocation round trips real Lustre pays to pull a lock
        away. This is what makes fine-grained interleaved writers degrade
        *superlinearly* with client count (ART's vanilla MPI-IO path).
    ost_read_noise / ost_write_noise:
        Production-mode service variability: each request's service time
        is multiplied by ``1 + U*noise`` with a deterministic per-request
        pseudo-uniform ``U`` in [0, 1). The paper's runs shared Lonestar's
        Lustre with other jobs ("experiments were conducted during the
        production mode") — synchronized two-phase I/O waits for the
        slowest request of every phase, while independent pipelined
        accesses absorb the jitter; reads vary more (server cache hit vs
        miss).
    """

    n_osts: int = 30
    stripe_size: int = 1 * MIB
    default_stripe_count: int = 1
    ost_write_bandwidth: float = 350.0 * MIB
    ost_read_bandwidth: float = 1200.0 * MIB
    ost_write_overhead: float = 8000.0e-6
    ost_read_overhead: float = 1000.0e-6
    lock_latency: float = 60.0e-6
    client_bandwidth: float = 1400.0 * MIB
    ost_read_noise: float = 0.0
    ost_write_noise: float = 0.0
    ost_client_scaling: float = 0.0
    lock_contention_penalty: float = 0.0

    def validate(self) -> None:
        """Raise ValueError on inconsistent constants."""
        if self.n_osts < 1:
            raise ValueError("need at least one OST")
        if self.stripe_size < 1:
            raise ValueError("stripe size must be positive")
        if not (1 <= self.default_stripe_count <= self.n_osts):
            raise ValueError("stripe count must be in [1, n_osts]")
        if min(self.ost_write_bandwidth, self.ost_read_bandwidth, self.client_bandwidth) <= 0:
            raise ValueError("bandwidths must be positive")
        if min(self.ost_write_overhead, self.ost_read_overhead, self.lock_latency) < 0:
            raise ValueError("latencies must be >= 0")
        if self.ost_read_noise < 0 or self.ost_write_noise < 0:
            raise ValueError("noise amplitudes must be >= 0")
        if self.lock_contention_penalty < 0:
            raise ValueError("lock_contention_penalty must be >= 0")
        if self.ost_client_scaling < 0:
            raise ValueError("ost_client_scaling must be >= 0")
