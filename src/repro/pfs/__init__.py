"""Simulated parallel file system (Lustre-like).

Files are striped over object storage targets (OSTs); a distributed lock
manager grants stripe-granularity extent locks (shared for reads, exclusive
for writes); every byte written is really stored, so correctness is checked
alongside timing. The paper's testbed: 30 OSTs, 1 MB stripes, and each file
on a single OST by default — the configuration the experiments inherit
(scaled), and the reason the lock granularity equals the stripe size in
TCIO's segment-size rule.
"""

from repro.pfs.spec import LustreSpec
from repro.pfs.layout import StripeLayout
from repro.pfs.ost import Ost
from repro.pfs.lockmgr import LockManager, LockMode
from repro.pfs.file import PfsFile
from repro.pfs.filesystem import Pfs, PfsClient

__all__ = [
    "LustreSpec",
    "StripeLayout",
    "Ost",
    "LockManager",
    "LockMode",
    "PfsFile",
    "Pfs",
    "PfsClient",
]
