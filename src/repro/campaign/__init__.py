"""The campaign analysis platform: sweep specs, result store, reports.

``repro.perf.campaign`` knows how to *run* grids of experiment points
(process pool + content-addressed cache); this package adds everything
around a run that turns hundreds of algorithm×parameter campaigns into
an explainable evaluation (docs/campaigns.md):

* :mod:`repro.campaign.spec` — the declarative sweep-spec format: a
  small YAML-subset (or plain python) description of a parameter grid
  over any experiment axis (segment size, cb_nodes, aggregation mode,
  delegate count, QoS policy, …), enumerated into
  :class:`repro.perf.points.Point` grids;
* :mod:`repro.campaign.store` — the queryable on-disk result store: one
  schema-versioned record per executed point, aggregating campaign
  results, ``metrics.json`` documents and ``BENCH_*.json`` baselines
  behind one query API;
* :mod:`repro.campaign.report` — deterministic report generation: ASCII
  and SVG scaling curves, comparison tables, and byte-identical
  regeneration of EXPERIMENTS.md sections from stored results;
* :mod:`repro.campaign.explore` — the adaptive parameter-space
  explorer: crossover-frontier bisection that finds e.g. the
  flat-vs-node aggregation crossover with a fraction of the exhaustive
  grid's point evaluations;
* :mod:`repro.campaign.runner` — glue: run a sweep spec through the
  perf pool/cache and land every result in the store.

``python -m repro campaign`` is the CLI surface.
"""

from repro.campaign.explore import (
    CrossoverReport,
    ExploreError,
    aggregation_crossover,
    find_crossover,
)
from repro.campaign.report import (
    experiments_section,
    scaling_report,
    store_series,
    store_svg_chart,
    svg_line_chart,
)
from repro.campaign.runner import run_sweep, smoke_spec, smoke_store
from repro.campaign.spec import (
    SpecError,
    SweepSpec,
    grid,
    load_spec,
    parse_spec,
)
from repro.campaign.store import (
    STORE_SCHEMA,
    CampaignStore,
    Record,
    StoreError,
    StoreRunner,
)

__all__ = [
    "STORE_SCHEMA",
    "CampaignStore",
    "CrossoverReport",
    "ExploreError",
    "Record",
    "SpecError",
    "StoreError",
    "StoreRunner",
    "SweepSpec",
    "aggregation_crossover",
    "experiments_section",
    "find_crossover",
    "grid",
    "load_spec",
    "parse_spec",
    "run_sweep",
    "scaling_report",
    "smoke_spec",
    "smoke_store",
    "store_series",
    "store_svg_chart",
    "svg_line_chart",
]
