"""The queryable on-disk result store behind campaign analysis.

A store is a directory of schema-versioned JSON records — one per
executed point — plus an ``index.json`` summary. Records arrive from
three sources and meet behind one schema:

* ``campaign`` — sweep/figure points, via :meth:`CampaignStore.add_result`
  or wholesale :meth:`CampaignStore.ingest_cache` of a
  :class:`repro.perf.cache.ResultCache` directory;
* ``hostbench`` — ``BENCH_*.json`` host-performance baselines
  (:meth:`CampaignStore.ingest_bench`);
* ``metrics`` — ``*.metrics.json`` observability snapshots
  (:meth:`CampaignStore.ingest_metrics`).

Queries (:meth:`CampaignStore.query`, :meth:`CampaignStore.series`,
:meth:`CampaignStore.distinct`) return deterministically ordered data,
so everything rendered from a store — tables, charts, EXPERIMENTS.md
sections — is byte-reproducible. :class:`StoreRunner` adapts a store to
the figure harnesses' pluggable-runner protocol
(:func:`repro.experiments.common.resolve_points`): the same code that
renders a section from fresh simulations renders it from stored results.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.perf.points import Point
from repro.util.errors import ReproError

#: Bump on intentional record-format changes; old records are skipped.
STORE_SCHEMA = 1

#: Default store location (overridable per-call or via REPRO_STORE_DIR).
DEFAULT_STORE_DIR = ".repro-store"


class StoreError(ReproError):
    """A store operation failed (missing point, unreadable source, ...)."""


@dataclass(frozen=True)
class Record:
    """One stored measurement: a point identity plus its metrics.

    ``params`` mirrors :class:`repro.perf.points.Point.params` (sorted
    scalar pairs); ``metrics`` is the point's JSON-able result dict.
    ``config`` is the simulation config hash the result was produced
    under (``""`` for host-side sources), and ``meta`` carries
    provenance (sweep name, source file, host timing) that is *never*
    part of the record key or of rendered reports.
    """

    key: str
    source: str
    experiment: str
    params: tuple[tuple[str, object], ...]
    metrics: dict = field(hash=False)
    config: str = ""
    meta: dict = field(default_factory=dict, hash=False)

    def get(self, name: str, default: object = None) -> object:
        """One parameter's value (or *default*)."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def point(self) -> Point:
        """The :class:`Point` identity (campaign-source records only)."""
        return Point.make(self.experiment, **dict(self.params))

    def to_json(self) -> dict:
        return {
            "schema": STORE_SCHEMA,
            "key": self.key,
            "source": self.source,
            "experiment": self.experiment,
            "params": dict(self.params),
            "metrics": self.metrics,
            "config": self.config,
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Record":
        return cls(
            key=str(data["key"]),
            source=str(data["source"]),
            experiment=str(data["experiment"]),
            params=tuple(sorted(data.get("params", {}).items())),
            metrics=dict(data.get("metrics", {})),
            config=str(data.get("config", "")),
            meta=dict(data.get("meta", {})),
        )


def record_key(source: str, experiment: str, params: dict, config: str) -> str:
    """The content-addressed record id (identity, not provenance)."""
    body = json.dumps(
        {
            "schema": STORE_SCHEMA,
            "source": source,
            "experiment": experiment,
            "params": dict(sorted(params.items())),
            "config": config,
        },
        sort_keys=True,
    )
    return hashlib.sha256(body.encode()).hexdigest()


class CampaignStore:
    """A directory of :class:`Record` JSON files plus an index.

    Parameters
    ----------
    root: store directory (created on first write). Defaults to
        ``$REPRO_STORE_DIR`` or ``.repro-store`` under the working dir.
    """

    def __init__(self, root: "str | Path | None" = None):
        if root is None:
            root = os.environ.get("REPRO_STORE_DIR", DEFAULT_STORE_DIR)
        self.root = Path(root)

    @property
    def records_dir(self) -> Path:
        return self.root / "records"

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def put(self, record: Record) -> Record:
        """Store one record (atomic rename; same key overwrites)."""
        self.records_dir.mkdir(parents=True, exist_ok=True)
        path = self.records_dir / f"{record.key}.json"
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(record.to_json(), sort_keys=True, indent=1),
            encoding="utf-8",
        )
        os.replace(tmp, path)
        self._write_index()
        return record

    def add_result(
        self,
        point: Point,
        result: dict,
        *,
        source: str = "campaign",
        config: str = "",
        meta: Optional[dict] = None,
    ) -> Record:
        """Store one executed point's result dict."""
        params = dict(point.params)
        return self.put(Record(
            key=record_key(source, point.experiment, params, config),
            source=source,
            experiment=point.experiment,
            params=tuple(sorted(params.items())),
            metrics=dict(result),
            config=config,
            meta=dict(meta or {}),
        ))

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def ingest_cache(self, cache_dir: "str | Path | None" = None) -> int:
        """Import every readable entry of a perf result cache.

        Entries are keyed like campaign results, carrying the cache's
        config hash, so re-ingesting after a recalibration adds new
        records instead of clobbering old evidence. Returns how many
        records were imported.
        """
        from repro.perf.cache import DEFAULT_CACHE_DIR

        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        cache_dir = Path(cache_dir)
        if not cache_dir.is_dir():
            raise StoreError(f"no cache directory at {cache_dir}")
        count = 0
        for path in sorted(cache_dir.iterdir()):
            if path.suffix != ".json":
                continue
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                experiment = entry["experiment"]
                params = dict(entry["params"])
                result = dict(entry["result"])
            except (OSError, ValueError, KeyError, TypeError):
                continue  # truncated/foreign file: not part of the cache
            config = str(entry.get("config", ""))
            self.put(Record(
                key=record_key("campaign", experiment, params, config),
                source="campaign",
                experiment=experiment,
                params=tuple(sorted(params.items())),
                metrics=result,
                config=config,
                meta={"from": path.name, **dict(entry.get("meta") or {})},
            ))
            count += 1
        return count

    def ingest_bench(self, path: "str | Path") -> int:
        """Import one ``BENCH_*.json`` host-performance baseline.

        Each named bench point becomes a ``hostbench`` record with
        ``name`` and ``platform`` parameters, so baselines from several
        platforms/eras coexist and stay queryable side by side.
        """
        path = Path(path)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            points = dict(doc["points"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise StoreError(f"unreadable bench file {path}: {exc}") from exc
        platform = str(doc.get("platform", "unknown"))
        count = 0
        for name in sorted(points):
            metrics = dict(points[name])
            params = {"name": name, "platform": platform, "file": path.name}
            self.put(Record(
                key=record_key("hostbench", "hostbench", params, ""),
                source="hostbench",
                experiment="hostbench",
                params=tuple(sorted(params.items())),
                metrics=metrics,
                meta={
                    "from": path.name,
                    "calibration_seconds": doc.get("calibration_seconds"),
                },
            ))
            count += 1
        return count

    def ingest_metrics(self, path: "str | Path", name: Optional[str] = None) -> Record:
        """Import one ``*.metrics.json`` observability snapshot."""
        path = Path(path)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise StoreError(f"unreadable metrics file {path}: {exc}") from exc
        if not isinstance(doc, dict):
            raise StoreError(f"metrics file {path} is not a JSON object")
        params = {"name": name or path.stem}
        return self.put(Record(
            key=record_key("metrics", "metrics", params, ""),
            source="metrics",
            experiment="metrics",
            params=tuple(sorted(params.items())),
            metrics=doc,
            meta={"from": path.name},
        ))

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def records(self) -> list[Record]:
        """Every current-schema record, sorted by (source, experiment, params)."""
        out: list[Record] = []
        if not self.records_dir.is_dir():
            return out
        for path in sorted(self.records_dir.iterdir()):
            if path.suffix != ".json":
                continue
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if data.get("schema") != STORE_SCHEMA:
                continue
            out.append(Record.from_json(data))
        out.sort(key=lambda r: (r.source, r.experiment, _sort_key(r.params)))
        return out

    def query(
        self,
        experiment: Optional[str] = None,
        *,
        source: Optional[str] = None,
        where: Optional[dict] = None,
        predicate: Optional[Callable[[Record], bool]] = None,
    ) -> list[Record]:
        """Records matching the filters, in deterministic order.

        ``where`` matches parameter equality (``{"method": "TCIO"}``);
        ``predicate`` is an arbitrary record filter applied last.
        """
        out = []
        for record in self.records():
            if experiment is not None and record.experiment != experiment:
                continue
            if source is not None and record.source != source:
                continue
            if where and any(record.get(k) != v for k, v in where.items()):
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def distinct(self, param: str, experiment: Optional[str] = None) -> list:
        """The sorted distinct values one parameter takes."""
        values = {
            record.get(param)
            for record in self.query(experiment)
            if record.get(param) is not None
        }
        return sorted(values, key=_value_key)

    def series(
        self,
        x: str,
        y: str,
        *,
        experiment: Optional[str] = None,
        where: Optional[dict] = None,
    ) -> tuple[list, list]:
        """Paired (xs, ys): parameter *x* against metric *y*, sorted by x."""
        pairs = []
        for record in self.query(experiment, where=where):
            xv = record.get(x)
            yv = record.metrics.get(y)
            if xv is None or yv is None:
                continue
            pairs.append((xv, yv))
        pairs.sort(key=lambda p: _value_key(p[0]))
        return [p[0] for p in pairs], [p[1] for p in pairs]

    def results_for(self, points: Iterable[Point]) -> dict:
        """Stored metrics for campaign *points*; raises listing any missing."""
        by_identity: dict[tuple, dict] = {}
        for record in self.query(source="campaign"):
            by_identity[(record.experiment, record.params)] = record.metrics
        results, missing = {}, []
        for point in points:
            found = by_identity.get((point.experiment, point.params))
            if found is None:
                missing.append(point.label())
            else:
                results[point] = found
        if missing:
            raise StoreError(
                "store is missing results for: " + ", ".join(missing)
                + " (run the sweep first, or ingest the cache)"
            )
        return results

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.records_dir.is_dir():
            return 0
        return sum(1 for p in self.records_dir.iterdir() if p.suffix == ".json")

    def summary(self) -> dict:
        """Counts by source and experiment (what index.json holds)."""
        by_source: dict[str, int] = {}
        by_experiment: dict[str, int] = {}
        for record in self.records():
            by_source[record.source] = by_source.get(record.source, 0) + 1
            by_experiment[record.experiment] = (
                by_experiment.get(record.experiment, 0) + 1
            )
        return {
            "schema": STORE_SCHEMA,
            "records": sum(by_source.values()),
            "by_source": dict(sorted(by_source.items())),
            "by_experiment": dict(sorted(by_experiment.items())),
        }

    def _write_index(self) -> None:
        path = self.root / "index.json"
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(self.summary(), sort_keys=True, indent=1),
            encoding="utf-8",
        )
        os.replace(tmp, path)


def _value_key(value) -> tuple:
    """A total order over mixed scalar values (numbers first, then text)."""
    if isinstance(value, bool):
        return (1, "", int(value))
    if isinstance(value, (int, float)):
        return (0, "", float(value))
    return (2, str(value), 0.0)


def _sort_key(params: tuple) -> tuple:
    return tuple((k,) + _value_key(v) for k, v in params)


class StoreRunner:
    """Adapt a store to the pluggable-runner protocol of the harnesses.

    ``resolve_points(points, StoreRunner(store))`` serves every point
    from stored results without simulating anything — which is how
    report generation replays EXPERIMENTS.md sections byte-identically
    from cached evidence. Missing points raise :class:`StoreError`
    naming each absent point.
    """

    def __init__(self, store: CampaignStore):
        self.store = store

    def __call__(self, points: Iterable[Point]) -> dict:
        return self.store.results_for(points)
