"""Deterministic report generation from a campaign store.

Three renderers, all pure functions of the store's contents (no
timestamps, hostnames or wall-clock anywhere in the output, so two runs
over the same records produce the same bytes):

* :func:`scaling_report` — a comparison table plus an ASCII scaling
  curve for one metric across one swept parameter, grouped into one
  series per value of a second parameter (``method``, ``aggregation``,
  ``qos``, ...);
* :func:`svg_line_chart` — the same curves as a standalone SVG document
  (hand-assembled markup; no plotting dependency);
* :func:`experiments_section` — byte-identical regeneration of one
  EXPERIMENTS.md section by replaying the exact section builder
  (:mod:`repro.experiments.report`) against stored results via
  :class:`repro.campaign.store.StoreRunner`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.charts import ascii_chart
from repro.campaign.store import CampaignStore, StoreError, StoreRunner
from repro.util.tables import render_series

#: Fixed series palette (SVG output must not depend on dict ordering
#: accidents, so colors are assigned by series index, deterministically).
_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b")


# ----------------------------------------------------------------------
# data extraction
# ----------------------------------------------------------------------


def store_series(
    store: CampaignStore,
    experiment: str,
    *,
    x: str,
    y: str,
    group_by: Optional[str] = None,
    where: Optional[dict] = None,
) -> tuple[list, dict[str, list]]:
    """(xs, {series name: ys}) for one metric across one swept parameter.

    With ``group_by``, one series per distinct value of that parameter
    (sorted); without, a single series named after the metric. Missing
    (x, series) combinations become ``None`` — rendered like the paper's
    truncated curves.
    """
    records = store.query(experiment, source="campaign", where=where)
    if not records:
        raise StoreError(
            f"store has no campaign records for experiment {experiment!r}"
            + (f" matching {where}" if where else "")
        )
    from repro.campaign.store import _value_key

    xs = sorted({r.get(x) for r in records if r.get(x) is not None},
                key=_value_key)
    if group_by is None:
        groups = {y: records}
    else:
        names = sorted({str(r.get(group_by)) for r in records})
        groups = {
            name: [r for r in records if str(r.get(group_by)) == name]
            for name in names
        }
    series: dict[str, list] = {}
    for name, group in groups.items():
        by_x = {}
        for record in group:
            value = record.metrics.get(y)
            if record.get(x) is not None and isinstance(value, (int, float)):
                by_x[record.get(x)] = float(value)
        series[name] = [by_x.get(xv) for xv in xs]
    return xs, series


# ----------------------------------------------------------------------
# renderers
# ----------------------------------------------------------------------


def scaling_report(
    store: CampaignStore,
    experiment: str,
    *,
    x: str,
    y: str,
    group_by: Optional[str] = None,
    where: Optional[dict] = None,
    title: Optional[str] = None,
    log_y: bool = False,
    height: int = 12,
) -> str:
    """A comparison table plus ASCII chart for one stored sweep axis."""
    xs, series = store_series(
        store, experiment, x=x, y=y, group_by=group_by, where=where
    )
    heading = title or f"{experiment}: {y} vs {x}"
    table = render_series(
        x, xs, {name: [_cell(v) for v in ys] for name, ys in series.items()}
    )
    chart = ascii_chart(
        xs, series, height=height, log_y=log_y, title="", y_label=y
    )
    return f"{heading}\n\n{table}\n\n{chart}"


def _cell(value: Optional[float]) -> Optional[str]:
    if value is None:
        return None
    return f"{value:.6g}"


def svg_line_chart(
    xs: Sequence[object],
    series: dict[str, Sequence[Optional[float]]],
    *,
    title: str = "",
    y_label: str = "",
    width: int = 640,
    height: int = 360,
    log_y: bool = False,
) -> str:
    """One deterministic SVG line chart (same data contract as ascii_chart).

    The output is a complete standalone document assembled from fixed
    markup — identical input always yields identical bytes.
    """
    import math

    values = [v for vs in series.values() for v in vs
              if v is not None and v > 0]
    if not values or not xs:
        return (
            '<svg xmlns="http://www.w3.org/2000/svg" width="160" height="40">'
            '<text x="8" y="24" font-size="12">(no data)</text></svg>'
        )
    left, right, top, bottom = 64, 16, 28, 44
    plot_w, plot_h = width - left - right, height - top - bottom
    vmax, vmin = max(values), min(values)
    if log_y:
        lo, hi = math.log10(vmin), math.log10(vmax)
    else:
        lo, hi = 0.0, vmax
    if hi <= lo:
        hi = lo + 1.0

    def px(xi: int) -> float:
        if len(xs) == 1:
            return left + plot_w / 2
        return left + plot_w * xi / (len(xs) - 1)

    def py(v: float) -> float:
        scaled = math.log10(v) if log_y else v
        frac = (scaled - lo) / (hi - lo)
        return top + plot_h * (1.0 - frac)

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        out.append(
            f'<text x="{width / 2:.1f}" y="18" font-size="13" '
            f'text-anchor="middle" font-family="monospace">{_esc(title)}</text>'
        )
    # axes
    out.append(
        f'<path d="M {left} {top} V {top + plot_h} H {left + plot_w}" '
        'fill="none" stroke="black" stroke-width="1"/>'
    )
    top_label = _fmt_tick(10**hi if log_y else hi)
    bottom_label = _fmt_tick(10**lo if log_y else lo)
    out.append(
        f'<text x="{left - 6}" y="{top + 4}" font-size="11" '
        f'text-anchor="end" font-family="monospace">{top_label}</text>'
    )
    out.append(
        f'<text x="{left - 6}" y="{top + plot_h + 4}" font-size="11" '
        f'text-anchor="end" font-family="monospace">{bottom_label}</text>'
    )
    if y_label:
        out.append(
            f'<text x="{left - 6}" y="{top + plot_h / 2:.1f}" font-size="11" '
            f'text-anchor="end" font-family="monospace">{_esc(y_label)}</text>'
        )
    for xi, xv in enumerate(xs):
        out.append(
            f'<text x="{px(xi):.1f}" y="{top + plot_h + 16}" font-size="11" '
            f'text-anchor="middle" font-family="monospace">{_esc(str(xv))}</text>'
        )
    # curves: one polyline per contiguous run of defined points, plus marks
    for si, (name, vs) in enumerate(series.items()):
        color = _COLORS[si % len(_COLORS)]
        run: list[str] = []
        runs: list[list[str]] = []
        for xi, v in enumerate(vs):
            if v is None or v <= 0:
                if run:
                    runs.append(run)
                    run = []
                continue
            run.append(f"{px(xi):.1f},{py(v):.1f}")
        if run:
            runs.append(run)
        for pts in runs:
            if len(pts) > 1:
                out.append(
                    f'<polyline points="{" ".join(pts)}" fill="none" '
                    f'stroke="{color}" stroke-width="1.5"/>'
                )
        for xi, v in enumerate(vs):
            if v is None or v <= 0:
                continue
            out.append(
                f'<circle cx="{px(xi):.1f}" cy="{py(v):.1f}" r="2.5" '
                f'fill="{color}"/>'
            )
        out.append(
            f'<text x="{left + 8 + 120 * si}" y="{height - 10}" '
            f'font-size="11" font-family="monospace" fill="{color}">'
            f'&#9679; {_esc(name)}</text>'
        )
    out.append("</svg>")
    return "\n".join(out) + "\n"


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _fmt_tick(v: float) -> str:
    if v >= 1000:
        return f"{v:.0f}"
    if v >= 10:
        return f"{v:.1f}"
    return f"{v:.2f}"


def store_svg_chart(
    store: CampaignStore,
    experiment: str,
    *,
    x: str,
    y: str,
    group_by: Optional[str] = None,
    where: Optional[dict] = None,
    title: Optional[str] = None,
    log_y: bool = False,
) -> str:
    """:func:`svg_line_chart` over :func:`store_series` data."""
    xs, series = store_series(
        store, experiment, x=x, y=y, group_by=group_by, where=where
    )
    return svg_line_chart(
        xs, series, title=title or f"{experiment}: {y} vs {x}",
        y_label=y, log_y=log_y,
    )


# ----------------------------------------------------------------------
# EXPERIMENTS.md section replay
# ----------------------------------------------------------------------


def experiments_section(store: CampaignStore, section: str, scale=None) -> str:
    """One EXPERIMENTS.md section, regenerated from stored results.

    Runs the *same* section builder the full report generator uses
    (:func:`repro.experiments.report.build_section`) with a store-backed
    runner, so the block is byte-identical to what a live campaign at the
    same scale writes. Sections without simulation points (``header``,
    ``table3``) ignore the store. Raises :class:`StoreError` naming any
    point the store is missing.
    """
    from repro.experiments.common import FULL
    from repro.experiments.report import build_section

    scale = scale if scale is not None else FULL
    return build_section(
        section, scale, verbose=False, runner=StoreRunner(store)
    )
