"""Declarative sweep specs: a YAML-subset grid over experiment points.

A sweep spec names one experiment and a parameter grid: fixed ``base``
parameters plus ``axes`` whose values are swept as a cartesian product.
The spec enumerates into ordinary :class:`repro.perf.points.Point`
values, so every sweep runs through the same pool runner, result cache
and differential guarantees as the figure campaigns.

The file format is a deliberately small YAML subset parsed by
:func:`parse_spec` with no third-party dependency — two-space indented
mappings, inline ``[a, b, c]`` lists, ``- item`` block lists, scalars
(int/float/bool/null/quoted or bare strings) and ``#`` comments:

.. code-block:: yaml

    name: segment-sweep
    experiment: fig5
    base:
      method: TCIO
      nprocs: 16
    axes:
      len_array: [256, 512]
      segment_bytes: [2048, 4096, 8192]

Python callers can skip the file format entirely with :func:`grid`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.perf.points import EXPERIMENTS, Point
from repro.util.errors import ReproError


class SpecError(ReproError):
    """A malformed sweep spec (parse error or invalid grid)."""


#: Parameter values a spec may carry: JSON-able scalars only, so points
#: stay hashable, picklable and cache-addressable.
_SCALARS = (str, int, float, bool, type(None))


@dataclass(frozen=True)
class SweepSpec:
    """One declarative parameter sweep over a single experiment.

    ``base`` holds the fixed parameters; ``axes`` the swept ones, in
    declaration order. Enumeration is the cartesian product with the
    *last* axis varying fastest (row-major, like nested for-loops), so
    a spec always yields the same points in the same order.
    """

    name: str
    experiment: str
    base: tuple[tuple[str, object], ...] = ()
    axes: tuple[tuple[str, tuple[object, ...]], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("sweep spec needs a non-empty name")
        if self.experiment not in EXPERIMENTS:
            raise SpecError(
                f"unknown experiment {self.experiment!r} "
                f"(choose from {list(EXPERIMENTS)})"
            )
        seen: set[str] = set()
        for key, _ in self.base:
            seen.add(key)
        for key, values in self.axes:
            if key in seen:
                raise SpecError(f"parameter {key!r} is both base and axis")
            if not values:
                raise SpecError(f"axis {key!r} has no values")
        for key, value in self.base:
            _check_scalar(key, value)
        for key, values in self.axes:
            for value in values:
                _check_scalar(key, value)

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict, *, name: Optional[str] = None) -> "SweepSpec":
        """Build a spec from a parsed document (YAML subset or python)."""
        if not isinstance(data, dict):
            raise SpecError(f"spec document must be a mapping, got {type(data).__name__}")
        unknown = set(data) - {"name", "experiment", "base", "axes"}
        if unknown:
            raise SpecError(f"unknown spec keys: {sorted(unknown)}")
        base = data.get("base") or {}
        axes = data.get("axes") or {}
        if not isinstance(base, dict):
            raise SpecError("'base' must be a mapping of fixed parameters")
        if not isinstance(axes, dict):
            raise SpecError("'axes' must be a mapping of parameter -> value list")
        axis_items = []
        for key, values in axes.items():
            if not isinstance(values, (list, tuple)):
                raise SpecError(f"axis {key!r} must list its values")
            axis_items.append((str(key), tuple(values)))
        return cls(
            name=str(data.get("name") or name or ""),
            experiment=str(data.get("experiment") or ""),
            base=tuple((str(k), v) for k, v in base.items()),
            axes=tuple(axis_items),
        )

    def to_dict(self) -> dict:
        """The JSON-able round-trip form (stored as sweep provenance)."""
        return {
            "name": self.name,
            "experiment": self.experiment,
            "base": dict(self.base),
            "axes": {k: list(vs) for k, vs in self.axes},
        }

    # ------------------------------------------------------------------
    def size(self) -> int:
        """How many points the sweep enumerates."""
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    def points(self) -> list[Point]:
        """The full grid, deterministic row-major order."""
        fixed = dict(self.base)
        names = [k for k, _ in self.axes]
        out: list[Point] = []
        for combo in itertools.product(*(vs for _, vs in self.axes)):
            params = dict(fixed)
            params.update(zip(names, combo))
            out.append(Point.make(self.experiment, **params))
        return out


def _check_scalar(key: str, value: object) -> None:
    if not isinstance(value, _SCALARS):
        raise SpecError(
            f"parameter {key!r} has non-scalar value {value!r} "
            "(spec values must be str/int/float/bool/null)"
        )


def grid(experiment: str, *, name: str = "adhoc", base: Optional[dict] = None,
         **axes: Iterable[object]) -> SweepSpec:
    """Python-side spec constructor: ``grid("fig5", nprocs=[4, 8], ...)``."""
    return SweepSpec(
        name=name,
        experiment=experiment,
        base=tuple(sorted((base or {}).items())),
        axes=tuple((k, tuple(v)) for k, v in axes.items()),
    )


# ----------------------------------------------------------------------
# the YAML-subset parser
# ----------------------------------------------------------------------


def parse_spec(text: str, *, name: Optional[str] = None) -> SweepSpec:
    """Parse one sweep spec from YAML-subset text."""
    return SweepSpec.from_dict(parse_document(text), name=name)


def load_spec(path: "str | Path") -> SweepSpec:
    """Parse one sweep spec file; the filename stem is the default name."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SpecError(f"cannot read sweep spec {path}: {exc}") from exc
    return parse_spec(text, name=path.stem)


def parse_document(text: str) -> dict:
    """Parse YAML-subset *text* into plain dicts/lists/scalars.

    Supported: nested mappings by indentation, inline ``[...]`` lists,
    ``- item`` block lists, scalar coercion (int, float, true/false,
    null, quoted strings), full-line and trailing ``#`` comments. This
    is not a YAML implementation — it is the deterministic subset the
    sweep-spec format needs, with no dependency to install.
    """
    lines: list[tuple[int, str]] = []
    for raw in text.splitlines():
        stripped = _strip_comment(raw).rstrip()
        if not stripped.strip():
            continue
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise SpecError("tabs are not allowed in spec indentation")
        lines.append((len(stripped) - len(stripped.lstrip()), stripped.strip()))
    value, rest = _parse_block(lines, 0, indent=0)
    if rest != len(lines):
        raise SpecError(f"unparsed trailing content: {lines[rest][1]!r}")
    if not isinstance(value, dict):
        raise SpecError("spec document must be a mapping at top level")
    return value


def _strip_comment(line: str) -> str:
    out = []
    quote: Optional[str] = None
    for ch in line:
        if quote is None and ch == "#":
            break
        if quote is None and ch in "'\"":
            quote = ch
        elif quote == ch:
            quote = None
        out.append(ch)
    return "".join(out)


def _parse_block(lines: list, i: int, *, indent: int):
    """Parse one mapping or list block starting at *i*; returns (value, next_i)."""
    if i >= len(lines):
        return {}, i
    if lines[i][1].startswith("- "):
        return _parse_list(lines, i, indent=indent)
    return _parse_mapping(lines, i, indent=indent)


def _parse_mapping(lines: list, i: int, *, indent: int):
    out: dict = {}
    while i < len(lines):
        line_indent, content = lines[i]
        if line_indent < indent:
            break
        if line_indent > indent:
            raise SpecError(f"unexpected indentation at {content!r}")
        if content.startswith("- "):
            raise SpecError(f"list item {content!r} inside a mapping block")
        if ":" not in content:
            raise SpecError(f"expected 'key: value', got {content!r}")
        key, _, rest = content.partition(":")
        key = _coerce_key(key.strip())
        rest = rest.strip()
        if key in out:
            raise SpecError(f"duplicate key {key!r}")
        if rest:
            out[key] = _parse_scalar_or_inline(rest)
            i += 1
        else:
            # A nested block (or an empty value if nothing is indented).
            if i + 1 < len(lines) and lines[i + 1][0] > indent:
                value, i = _parse_block(lines, i + 1, indent=lines[i + 1][0])
            else:
                value, i = None, i + 1
            out[key] = value
    return out, i


def _parse_list(lines: list, i: int, *, indent: int):
    out: list = []
    while i < len(lines):
        line_indent, content = lines[i]
        if line_indent != indent or not content.startswith("- "):
            break
        out.append(_parse_scalar_or_inline(content[2:].strip()))
        i += 1
    return out, i


def _parse_scalar_or_inline(text: str):
    if text.startswith("[") and text.endswith("]"):
        body = text[1:-1].strip()
        if not body:
            return []
        return [_parse_scalar(part.strip()) for part in _split_inline(body)]
    return _parse_scalar(text)


def _split_inline(body: str) -> list[str]:
    parts, depth, quote, current = [], 0, None, []
    for ch in body:
        if quote is None and ch in "'\"":
            quote = ch
        elif quote == ch:
            quote = None
        elif quote is None and ch == "[":
            depth += 1
        elif quote is None and ch == "]":
            depth -= 1
        elif quote is None and depth == 0 and ch == ",":
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    parts.append("".join(current))
    return parts


def _coerce_key(text: str) -> str:
    if len(text) >= 2 and text[0] in "'\"" and text[-1] == text[0]:
        return text[1:-1]
    return text


def _parse_scalar(text: str):
    if len(text) >= 2 and text[0] in "'\"" and text[-1] == text[0]:
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("null", "none", "~"):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text, 0)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text
