"""Glue: run a sweep spec through the perf pipeline into the store.

:func:`run_sweep` is the one-call path behind ``python -m repro campaign
run``: enumerate a :class:`repro.campaign.spec.SweepSpec` into points,
execute them (serial, or pooled+cached via
:class:`repro.perf.campaign.CampaignRunner`), and land every result in a
:class:`repro.campaign.store.CampaignStore` with the sweep recorded as
provenance. :func:`smoke_store` builds the tiny deterministic store the
CI bit-determinism check renders reports from.
"""

from __future__ import annotations

from typing import Optional

from repro.campaign.spec import SweepSpec
from repro.campaign.store import CampaignStore


def run_sweep(
    spec: SweepSpec,
    *,
    store: Optional[CampaignStore] = None,
    jobs: Optional[int] = None,
    cache=None,
    verbose: bool = False,
) -> dict:
    """Execute one sweep spec; returns ``{point: result dict}``.

    ``jobs``/``cache`` select the pooled+cached executor (both optional;
    the default is the serial in-process reference path). With *store*,
    every result is recorded with the sweep's name and grid as
    provenance metadata — queryable but never part of record identity,
    so a re-run under a different sweep name updates the same records.
    """
    from repro.experiments.common import resolve_points

    points = spec.points()
    runner = None
    if jobs is not None or cache is not None:
        from repro.perf.campaign import CampaignRunner

        runner = CampaignRunner(jobs, cache=cache, verbose=verbose)
    results = resolve_points(points, runner)
    if store is not None:
        config = getattr(cache, "_config", "")
        for point in points:
            store.add_result(
                point,
                results[point],
                config=config,
                meta={"sweep": spec.name, "spec": spec.to_dict()},
            )
    return results


#: The two cached points the CI determinism check runs on: one TCIO and
#: one OCIO fig5 point at SMOKE sizes (fractions of a second each).
def smoke_spec() -> SweepSpec:
    """The tiny sweep the ``--smoke`` store is built from."""
    from repro.campaign.spec import grid
    from repro.experiments.common import SMOKE

    return grid(
        "fig5",
        name="smoke",
        base={"len_array": SMOKE.len_array, "nprocs": 4},
        method=["TCIO", "OCIO"],
    )


def smoke_store(
    root,
    *,
    cache=None,
    verbose: bool = False,
) -> CampaignStore:
    """Build (or refresh) the two-point smoke store at *root*.

    Runs :func:`smoke_spec` — via *cache* when given, so a second build
    is a pure cache replay — and returns the populated store. This is
    what ``python -m repro campaign report --smoke`` renders from; CI
    builds it twice and asserts the rendered bytes are identical.
    """
    store = CampaignStore(root)
    run_sweep(smoke_spec(), store=store, cache=cache, verbose=verbose)
    return store
