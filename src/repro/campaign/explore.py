"""Adaptive parameter-space exploration: crossover-frontier search.

The paper's evaluation is full of *crossovers* — parameter points where
one design overtakes another (OCIO vs TCIO writes around 256–512 procs;
flat vs node aggregation as RMA synchronization costs grow). An
exhaustive grid finds a crossover by simulating every candidate; that is
wasteful when the sign of the margin is monotone along the axis, which
these frontiers are. :func:`find_crossover` bisects instead: evaluate
the endpoints, then binary-search the sign change — ``O(log n)`` point
evaluations instead of ``O(n)``.

:func:`aggregation_crossover` applies it to the flat-vs-node aggregation
frontier on the ``rma-heavy`` network profile
(:data:`repro.experiments.topo_ablation.NET_PROFILES`): flat mode's many
per-rank RMA epochs win at small scale, node mode's coalesced leader
pushes win at large scale, and the explorer pins down where — with
every evaluation flowing through the ordinary point pipeline (cache,
pool, store), so the adaptive path stays bit-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.util.errors import ReproError


class ExploreError(ReproError):
    """A malformed exploration (bad candidates, unknown method, ...)."""


@dataclass
class CrossoverReport:
    """The outcome of one crossover search along one parameter axis.

    ``margins`` maps each *evaluated* candidate to its margin (negative
    = crossed, i.e. the challenger wins); ``bracket`` is the adjacent
    candidate pair (last not-crossed, first crossed) or ``None`` when
    the margin never changes sign; ``evaluations`` counts margin
    evaluations actually performed (the exhaustive grid's cost is
    ``len(candidates)``).
    """

    axis: str
    candidates: tuple
    method: str
    margins: dict = field(default_factory=dict)
    evaluations: int = 0
    bracket: Optional[tuple] = None

    @property
    def crossover(self) -> Optional[object]:
        """The first candidate where the challenger wins (or ``None``)."""
        return None if self.bracket is None else self.bracket[1]

    def render(self) -> str:
        """A deterministic text summary of the search."""
        lines = [
            f"crossover search: axis={self.axis} method={self.method} "
            f"({self.evaluations}/{len(self.candidates)} evaluations)",
        ]
        for candidate in self.candidates:
            if candidate in self.margins:
                margin = self.margins[candidate]
                verdict = "crossed" if margin < 0 else "not crossed"
                lines.append(
                    f"  {self.axis}={candidate}: margin={margin:+.6g} "
                    f"({verdict})"
                )
            else:
                lines.append(f"  {self.axis}={candidate}: (skipped)")
        if self.bracket is None:
            lines.append("  no sign change across the candidate range")
        else:
            lines.append(
                f"  frontier: between {self.axis}={self.bracket[0]} and "
                f"{self.axis}={self.bracket[1]}"
            )
        return "\n".join(lines)


def find_crossover(
    candidates: Sequence[object],
    margin: Callable[[object], float],
    *,
    axis: str = "x",
    method: str = "bisect",
) -> CrossoverReport:
    """Locate the sign change of *margin* along ordered *candidates*.

    A candidate is *crossed* when ``margin(candidate) < 0``. The margin
    is assumed monotone-in-sign over the candidate order (not-crossed
    then crossed); :func:`verify_monotone` checks that assumption from
    an exhaustive report.

    ``method="bisect"`` evaluates both endpoints, then binary-searches
    the flip; ``method="grid"`` evaluates every candidate (the baseline
    the adaptive path is measured against). Both return the same
    bracket on a monotone margin.
    """
    if len(candidates) < 2:
        raise ExploreError("need at least two candidates to bracket a crossover")
    if len(set(candidates)) != len(candidates):
        raise ExploreError("candidates must be distinct")
    if method not in ("bisect", "grid"):
        raise ExploreError(f"unknown search method {method!r}")
    report = CrossoverReport(
        axis=axis, candidates=tuple(candidates), method=method
    )

    def evaluate(index: int) -> float:
        candidate = candidates[index]
        value = float(margin(candidate))
        report.margins[candidate] = value
        report.evaluations += 1
        return value

    if method == "grid":
        values = [evaluate(i) for i in range(len(candidates))]
        for i in range(1, len(values)):
            if values[i - 1] >= 0 > values[i]:
                report.bracket = (candidates[i - 1], candidates[i])
                break
        else:
            if values[0] < 0:
                report.bracket = None  # already crossed at the low end
        return report

    lo, hi = 0, len(candidates) - 1
    lo_val, hi_val = evaluate(lo), evaluate(hi)
    if (lo_val < 0) == (hi_val < 0):
        return report  # no sign change to bracket
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if evaluate(mid) < 0:
            hi = mid
        else:
            lo = mid
    report.bracket = (candidates[lo], candidates[hi])
    return report


def verify_monotone(report: CrossoverReport) -> bool:
    """True when an exhaustive report's margins flip sign at most once."""
    signs = [report.margins[c] < 0 for c in report.candidates
             if c in report.margins]
    flips = sum(1 for a, b in zip(signs, signs[1:]) if a != b)
    return flips <= 1


# ----------------------------------------------------------------------
# the flat-vs-node aggregation frontier
# ----------------------------------------------------------------------

#: Default process-count axis for the aggregation frontier. On the
#: ``rma-heavy`` profile flat wins at 8–12 procs and node from 16 on,
#: so the frontier sits inside this range (see docs/campaigns.md).
AGGREGATION_CANDIDATES = (8, 12, 16, 24, 32, 48, 64, 96)


def aggregation_crossover(
    candidates: Sequence[int] = AGGREGATION_CANDIDATES,
    *,
    method: str = "bisect",
    runner=None,
    collective: str = "TCIO",
    len_array: int = 1024,
    cores_per_node: int = 4,
    net: str = "rma-heavy",
    store=None,
) -> CrossoverReport:
    """Where node aggregation starts beating flat, in write seconds.

    The margin at process count ``p`` is ``node_seconds - flat_seconds``
    for the topo-ablation workload on the *net* profile: positive while
    flat wins, negative once node's coalesced leader traffic amortizes
    the RMA epoch tax. Each evaluation resolves a flat/node point pair
    through :func:`repro.experiments.common.resolve_points`, so a cache
    or pool *runner* composes; pass a
    :class:`repro.campaign.store.CampaignStore` to land every evaluated
    pair in the store as it happens.
    """
    from repro.experiments.common import resolve_points
    from repro.perf.points import Point

    def margin(procs: object) -> float:
        pair = [
            Point.make(
                "topo", method=collective, aggregation=aggregation,
                nprocs=int(procs), cores_per_node=cores_per_node,
                len_array=len_array, net=net,
            )
            for aggregation in ("flat", "node")
        ]
        results = resolve_points(pair, runner)
        if store is not None:
            for point in pair:
                store.add_result(point, results[point])
        flat, node = results[pair[0]], results[pair[1]]
        return float(node["write_seconds"]) - float(flat["write_seconds"])

    return find_crossover(
        list(candidates), margin, axis="nprocs", method=method
    )
