"""The hierarchical metrics registry: counters, gauges, log2 histograms.

Metric names are dotted paths (``tcio.flush.bytes``, ``net.connection``):
the dot hierarchy groups metrics by subsystem so reports can slice one
layer's counters out of a whole-run registry with :meth:`MetricsRegistry.subtree`.

Three metric kinds cover everything the simulated stack reports:

* :class:`Counter` — the (count, total) accumulator the old
  ``TraceRecorder`` used: ``add(amount)`` records one occurrence of
  *amount* units (count += 1, total += amount), while ``inc(n)`` bumps a
  plain monotonic value (count += n, total += n).
* :class:`Gauge` — a last-value sample (queue depth, resident segments).
* :class:`Histogram` — fixed log2 buckets: bucket 0 holds values in
  ``[0, 1]`` and bucket ``k`` holds ``(2**(k-1), 2**k]``, so request-size
  and latency distributions stay cheap and bit-reproducible.
"""

from __future__ import annotations

import math
import re
from typing import Iterator, Optional, Union

_NAME_RE = re.compile(r"[a-z0-9_\-]+(\.[a-z0-9_\-]+)*\Z")

#: Number of log2 buckets a histogram holds; bucket 63 tops out above
#: 2**62, far past any simulated byte count or duration in microseconds.
N_BUCKETS = 64


def _check_name(name: str) -> None:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(
            f"bad metric name {name!r}: use dotted lowercase segments "
            "([a-z0-9_-], separated by '.')"
        )


class Counter:
    """A (count, total) accumulator, e.g. (#messages, total bytes)."""

    __slots__ = ("count", "total")
    kind = "counter"

    def __init__(self, count: int = 0, total: float = 0.0):
        self.count = count
        self.total = total

    def add(self, amount: float = 0.0) -> None:
        """Count one occurrence of *amount* units."""
        self.count += 1
        self.total += amount

    def inc(self, n: int = 1) -> None:
        """Bump a plain monotonic value by *n* (count and total together)."""
        self.count += n
        self.total += n

    @property
    def value(self) -> int:
        """The counter as a plain integer (its occurrence count)."""
        return self.count

    def merge_from(self, other: "Counter") -> None:
        """Accumulate another counter into this one."""
        self.count += other.count
        self.total += other.total

    def as_json(self) -> dict:
        """JSON-ready form for ``metrics.json``."""
        return {"count": self.count, "total": self.total}

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter(count={self.count}, total={self.total})"


class Gauge:
    """A last-value sample (set wins; ``add`` nudges it)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self, value: float = 0.0):
        self.value = value

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def add(self, delta: float) -> None:
        """Move the level by *delta*."""
        self.value += delta

    def merge_from(self, other: "Gauge") -> None:
        """Merging gauges keeps the larger level (high-water semantics)."""
        self.value = max(self.value, other.value)

    def as_json(self) -> dict:
        """JSON-ready form for ``metrics.json``."""
        return {"value": self.value}

    def __repr__(self) -> str:  # pragma: no cover
        return f"Gauge(value={self.value})"


class Histogram:
    """Fixed log2-bucket histogram of non-negative values.

    Bucket 0 covers ``[0, 1]``; bucket ``k >= 1`` covers ``(2**(k-1), 2**k]``
    (upper bounds are powers of two). Bucketing is exact for integers —
    ``2**k`` lands in bucket ``k`` and ``2**k + 1`` in bucket ``k + 1`` —
    so distribution assertions stay deterministic.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self):
        self.buckets = [0] * N_BUCKETS
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    @staticmethod
    def bucket_index(value: Union[int, float]) -> int:
        """The bucket a value falls in (ValueError for negatives)."""
        if value < 0:
            raise ValueError(f"histogram values must be >= 0, got {value}")
        if value <= 1:
            return 0
        ceiling = value if isinstance(value, int) else math.ceil(value)
        return min(N_BUCKETS - 1, (int(ceiling) - 1).bit_length())

    @staticmethod
    def upper_bound(index: int) -> int:
        """Inclusive upper bound of bucket *index*."""
        return 1 if index == 0 else 2 ** index

    def observe(self, value: Union[int, float]) -> None:
        """Record one sample."""
        self.buckets[self.bucket_index(value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge_from(self, other: "Histogram") -> None:
        """Accumulate another histogram into this one."""
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is not None:
                self.min = bound if self.min is None else min(self.min, bound)
                self.max = bound if self.max is None else max(self.max, bound)

    def as_json(self) -> dict:
        """JSON-ready form: only non-empty buckets, keyed by upper bound."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                str(self.upper_bound(i)): n
                for i, n in enumerate(self.buckets)
                if n
            },
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"Histogram(count={self.count}, total={self.total})"


def percentile(values, q: float) -> float:
    """Nearest-rank percentile of *values* (``0 <= q <= 100``).

    Deterministic and interpolation-free (the classical nearest-rank
    definition), so tail-latency numbers derived from virtual-clock
    samples are bit-stable across hosts. Raises ``ValueError`` on an
    empty sample set or an out-of-range *q*.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of an empty sample set")
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(0, rank - 1)]


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """All metrics of one scope (a run, or one TCIO handle), by dotted name.

    Accessors create on first use so instrumentation never needs
    registration boilerplate; asking for an existing name with a different
    kind raises ``TypeError`` (one name, one meaning).
    """

    __slots__ = ("_metrics",)

    def __init__(self):
        self._metrics: dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # typed accessors (create on first use)
    # ------------------------------------------------------------------
    def _named(self, name: str, cls) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            _check_name(name)
            metric = cls()
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named *name* (created on first use)."""
        return self._named(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named *name* (created on first use)."""
        return self._named(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram named *name* (created on first use)."""
        return self._named(name, Histogram)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        """The metric named *name*, or None (never creates)."""
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> Iterator[str]:
        """All metric names, sorted."""
        return iter(sorted(self._metrics))

    def counters(self) -> dict[str, Counter]:
        """Just the counters, as a name -> Counter mapping."""
        return {n: m for n, m in self._metrics.items() if isinstance(m, Counter)}

    def subtree(self, prefix: str) -> dict[str, Metric]:
        """Metrics under a dotted prefix (``subtree("tcio")`` matches
        ``tcio`` itself and every ``tcio.*`` descendant)."""
        dotted = prefix + "."
        return {
            n: m
            for n, m in sorted(self._metrics.items())
            if n == prefix or n.startswith(dotted)
        }

    # ------------------------------------------------------------------
    # aggregation and export
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry (e.g. a per-rank scope) into this one."""
        for name, metric in other._metrics.items():
            mine = self._named(name, type(metric))
            mine.merge_from(metric)

    def flat(self) -> dict:
        """JSON-ready snapshot grouped by kind, names sorted."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in self.names():
            metric = self._metrics[name]
            out[metric.kind + "s"][name] = metric.as_json()
        return out
