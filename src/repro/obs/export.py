"""Exporters: Chrome ``trace_event`` JSON, ASCII timelines, metrics.json.

``chrome_trace`` produces the JSON object format Perfetto and
``chrome://tracing`` load directly: one process, one thread (track) per
rank plus the NIC/OST/memory hardware tracks, complete ("X") events with
microsecond timestamps. ``ascii_timeline`` folds the same spans into a
per-track, per-span busy-time table for terminal reports, and
``metrics_json`` snapshots a :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import json
import re
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanEvent, Tracer
from repro.util.tables import render_table

_TRACK_NUM = re.compile(r"\A(.*?)(\d+)\Z")

#: Display order of track families: ranks first, then the engine row,
#: then hardware (NIC, memory, OST) tracks.
_FAMILY_ORDER = {"rank": 0, "proc": 0, "engine": 1, "nic": 2, "mem": 3, "ost": 4}


def _track_key(track: str) -> tuple:
    """Natural sort: rank2 before rank10, rank tracks before hardware."""
    m = _TRACK_NUM.match(track)
    prefix, num = (m.group(1), int(m.group(2))) if m else (track, -1)
    return (_FAMILY_ORDER.get(prefix, 9), prefix, num)


def track_ids(tracer: Tracer) -> dict[str, int]:
    """Stable track -> tid assignment (ranks first, naturally sorted)."""
    return {t: i for i, t in enumerate(sorted(tracer.tracks(), key=_track_key))}


def chrome_trace(tracer: Tracer, *, pid: int = 0) -> dict:
    """The tracer's events as a Chrome ``trace_event`` JSON object.

    Load the written file in https://ui.perfetto.dev or
    ``chrome://tracing``: virtual seconds are exported as microseconds
    (the format's native unit), each track becomes a named thread.
    """
    tids = track_ids(tracer)
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro simulated job"},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": pid,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )

    def us(t: float) -> float:
        return round(t * 1e6, 3)

    for e in sorted(tracer.spans, key=lambda s: (s.start, s.track)):
        events.append(
            {
                "name": e.name,
                "cat": e.name.split(".", 1)[0],
                "ph": "X",
                "ts": us(e.start),
                "dur": us(e.end - e.start),
                "pid": pid,
                "tid": tids[e.track],
                "args": e.args,
            }
        )
    for e in tracer.instants:
        events.append(
            {
                "name": e.name,
                "cat": e.name.split(".", 1)[0],
                "ph": "i",
                "s": "t",
                "ts": us(e.start),
                "pid": pid,
                "tid": tids[e.track],
                "args": e.args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    """Write :func:`chrome_trace` output to *path*."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer), fh)


# ----------------------------------------------------------------------
# ASCII timeline
# ----------------------------------------------------------------------


def _fmt_us(seconds: float) -> str:
    return f"{seconds * 1e6:.1f}"


def ascii_timeline(tracer: Tracer, *, max_rows: int = 60) -> str:
    """Per-(track, span) busy-time table of the whole trace.

    One row per distinct span name on each track: occurrence count, total
    busy virtual time, and the share of the trace horizon it covers.
    Rows beyond *max_rows* are folded into a trailing summary line.
    """
    if not tracer.spans:
        return "(no spans recorded)"
    horizon = max(e.end for e in tracer.spans) or 1.0
    agg: dict[tuple[str, str], list] = {}
    for e in tracer.spans:
        row = agg.setdefault((e.track, e.name), [0, 0.0, e.start])
        row[0] += 1
        row[1] += e.duration
        row[2] = min(row[2], e.start)
    ordered = sorted(
        agg.items(), key=lambda kv: (_track_key(kv[0][0]), kv[1][2], kv[0][1])
    )
    rows = [
        [track, name, count, _fmt_us(busy), f"{100.0 * busy / horizon:.1f}%"]
        for (track, name), (count, busy, _first) in ordered[:max_rows]
    ]
    table = render_table(
        ["track", "span", "count", "busy (us)", "share"],
        rows,
        title=f"span timeline ({len(tracer.spans)} spans, "
        f"horizon {_fmt_us(horizon)} us)",
    )
    hidden = len(ordered) - max_rows
    if hidden > 0:
        table += f"\n... and {hidden} more (track, span) rows"
    return table


# ----------------------------------------------------------------------
# metrics.json
# ----------------------------------------------------------------------


def metrics_json(
    registry: MetricsRegistry,
    *,
    tcio: Optional[dict[str, int]] = None,
) -> dict:
    """JSON-ready metrics snapshot.

    *tcio* is the rank-0 TCIO handle's registry view with dotted metric
    names (see ``TcioStats.as_metrics``); it lands under the ``"tcio"``
    key as plain integers so the file matches the legacy
    ``TcioStats.as_dict()`` evidence byte for byte.
    """
    out = registry.flat()
    if tcio is not None:
        out["tcio"] = dict(sorted(tcio.items()))
    return out


def write_metrics_json(
    registry: MetricsRegistry,
    path: str,
    *,
    tcio: Optional[dict[str, int]] = None,
) -> None:
    """Write :func:`metrics_json` output to *path* (pretty-printed)."""
    with open(path, "w") as fh:
        json.dump(metrics_json(registry, tcio=tcio), fh, indent=1, sort_keys=True)


__all__ = [
    "SpanEvent",
    "ascii_timeline",
    "chrome_trace",
    "metrics_json",
    "track_ids",
    "write_chrome_trace",
    "write_metrics_json",
]
