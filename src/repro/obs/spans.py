"""Span tracing on the simulated (virtual) clock.

A :class:`Tracer` collects named intervals — *spans* — on named *tracks*
(one per rank, plus ``nic*``/``ost*``/``mem*`` hardware tracks and the
``engine`` track). Rank-side code opens spans as context managers::

    with tracer.span("tcio.fetch", segments=3):
        ...

while analytic layers (the fabric, the OSTs) that compute an interval's
end time up front record it in one call with :meth:`Tracer.complete`.

Disabled tracing is (near) zero cost: ``span()`` returns a shared no-op
context manager without allocating, and ``complete()``/``instant()``
return immediately, so the instrumented hot paths stay as fast as the
un-instrumented ones. ``Tracer()`` defaults to disabled.

Timestamps come from a bound *clock* (the engine's virtual ``now``).
Re-binding the clock — e.g. the benchmark harness running its write and
read phases as two separate engines — continues the timeline: the new
epoch starts at the previous high-water mark, so spans from successive
jobs never overlap on a track.
"""

from __future__ import annotations

from typing import Callable, Optional


class SpanEvent:
    """One closed span: a named ``[start, end]`` interval on a track."""

    __slots__ = ("name", "track", "start", "end", "args")

    def __init__(self, name: str, track: str, start: float, end: float, args: dict):
        self.name = name
        self.track = track
        self.start = start
        self.end = end
        self.args = args

    @property
    def duration(self) -> float:
        """The span's length in virtual seconds."""
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SpanEvent({self.name!r}, track={self.track!r}, "
            f"start={self.start:.9f}, end={self.end:.9f})"
        )


class _NullSpan:
    """The shared do-nothing context manager disabled tracers hand out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: Singleton null span: ``with tracer.span(...)`` costs one method call
#: and an empty ``with`` when tracing is off.
NULL_SPAN = _NullSpan()


class _Span:
    """A live span; closes (and records itself) on ``__exit__``."""

    __slots__ = ("_tracer", "name", "track", "args", "start")

    def __init__(self, tracer: "Tracer", name: str, track: Optional[str], args: dict):
        self._tracer = tracer
        self.name = name
        self.track = track
        self.args = args
        self.start = 0.0

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.start = tracer.now()
        if self.track is None:
            self.track = tracer.resolve_track()
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        tracer.spans.append(
            SpanEvent(self.name, self.track, self.start, tracer.now(), self.args)
        )
        return False


class Tracer:
    """Collects spans and instants against a virtual clock.

    Parameters
    ----------
    enabled: record events (True) or be a no-op shell (False, default).
    clock: zero-arg callable returning the current virtual time; usually
        bound later by the engine via :meth:`bind_clock`.
    """

    __slots__ = ("enabled", "spans", "instants", "track_of", "_clock", "_base", "_hwm")

    def __init__(self, enabled: bool = False, clock: Optional[Callable[[], float]] = None):
        self.enabled = enabled
        self.spans: list[SpanEvent] = []
        self.instants: list[SpanEvent] = []
        #: Resolves the default track for spans opened without one
        #: (TraceRecorder points this at the current simulated process).
        self.track_of: Optional[Callable[[], str]] = None
        self._clock = clock
        self._base = 0.0  # offset of the current clock epoch
        self._hwm = 0.0  # latest timestamp seen across all epochs

    # ------------------------------------------------------------------
    # the clock
    # ------------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Adopt a new virtual clock, continuing the timeline.

        The new clock's zero maps to the previous high-water mark, so a
        second engine's spans start after the first engine's end.
        """
        self._base = self._hwm
        self._clock = clock

    def now(self) -> float:
        """Current timeline position (epoch base + bound clock)."""
        t = self._base + (self._clock() if self._clock is not None else 0.0)
        if t > self._hwm:
            self._hwm = t
        return t

    def resolve_track(self) -> str:
        """Default track for the calling context."""
        return self.track_of() if self.track_of is not None else "main"

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, track: Optional[str] = None, **args):
        """A context manager timing its body on the virtual clock.

        Returns the shared :data:`NULL_SPAN` when disabled — the fast path
        allocates nothing.
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, track, args)

    def complete(
        self,
        name: str,
        start: float,
        end: float,
        track: Optional[str] = None,
        **args,
    ) -> None:
        """Record an interval whose bounds were computed analytically.

        *start*/*end* are **clock-space** times (the engine's ``now``
        scale); the tracer maps them onto the continued timeline. *end*
        may lie in the virtual future (e.g. a message's delivery time).
        """
        if not self.enabled:
            return
        base = self._base
        t_end = base + end
        if t_end > self._hwm:
            self._hwm = t_end
        self.spans.append(
            SpanEvent(name, track or self.resolve_track(), base + start, t_end, args)
        )

    def instant(self, name: str, track: Optional[str] = None, **args) -> None:
        """Record a zero-duration marker at the current time."""
        if not self.enabled:
            return
        t = self.now()
        self.instants.append(
            SpanEvent(name, track or self.resolve_track(), t, t, args)
        )

    # ------------------------------------------------------------------
    def tracks(self) -> list[str]:
        """All track names seen so far, sorted."""
        return sorted({e.track for e in self.spans} | {e.track for e in self.instants})


#: Shared disabled tracer: lets instrumented code hold a tracer
#: unconditionally (``self._tracer = hub.tracer if hub else NULL_TRACER``).
NULL_TRACER = Tracer(enabled=False)
