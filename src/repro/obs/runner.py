"""``python -m repro trace <target>``: scaled-down experiments, tracing on.

Each target reruns a shrunken version of one of the paper's experiments
with the full observability stack enabled and writes, into ``--out``:

* ``<target>.trace.json`` — Chrome ``trace_event`` JSON of the primary
  (TCIO) run: one track per rank plus NIC/memory/OST hardware tracks.
  Load it in https://ui.perfetto.dev or ``chrome://tracing``.
* ``<target>.metrics.json`` — the run's :class:`MetricsRegistry` snapshot,
  plus a ``"tcio"`` section mirroring rank 0's legacy
  ``TcioStats.as_dict()`` under dotted names.
* for comparison targets, ``<target>.ocio.*`` twins from the OCIO run.

An ASCII per-phase timeline of the primary run is printed to stdout.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.export import ascii_timeline, write_chrome_trace, write_metrics_json
from repro.obs.spans import Tracer
from repro.sim.trace import TraceRecorder

TARGETS = ("fig5", "fig67", "fig910", "bench")


def _recorder() -> TraceRecorder:
    return TraceRecorder(tracer=Tracer(enabled=True))


def _legacy_tcio_metrics(stats_dict: dict) -> Optional[dict]:
    """Rank 0's legacy ``as_dict()`` snapshot re-keyed to dotted names."""
    from repro.tcio.stats import FIELD_METRICS

    if not stats_dict:
        return None
    return {
        FIELD_METRICS[fld]: v for fld, v in stats_dict.items() if fld in FIELD_METRICS
    }


def _bench_point(method: str, procs: int, length: int):
    """One synthetic-benchmark point under a fresh enabled recorder."""
    from repro.bench import BenchConfig, Method, run_benchmark

    recorder = _recorder()
    cfg = BenchConfig(
        method=Method.parse(method),
        num_arrays=2,
        type_codes="i,d",
        len_array=length,
        size_access=1,
        nprocs=procs,
    )
    result = run_benchmark(cfg, trace=recorder)
    if result.failed:
        raise RuntimeError(f"{method} benchmark failed: {result.fail_reason}")
    return recorder, result


def _write_pair(
    out: str, stem: str, recorder: TraceRecorder, *, tcio: Optional[dict] = None
) -> tuple[str, str]:
    trace_path = os.path.join(out, f"{stem}.trace.json")
    metrics_path = os.path.join(out, f"{stem}.metrics.json")
    write_chrome_trace(recorder.tracer, trace_path)
    write_metrics_json(recorder.registry, metrics_path, tcio=tcio)
    return trace_path, metrics_path


def run_traced(
    target: str, *, procs: Optional[int] = None, out: str = "trace_out",
    tiny: bool = False,
) -> dict:
    """Run *target* scaled down with tracing; returns the written paths."""
    if target not in TARGETS:
        raise ValueError(f"unknown trace target {target!r} (want one of {TARGETS})")
    os.makedirs(out, exist_ok=True)
    paths: dict[str, str] = {}

    if target == "fig5":
        # Throughput-vs-processes mechanism: TCIO vs OCIO at one P.
        p = procs or (4 if tiny else 64)
        length = 64 if tiny else 256
        recorder, result = _bench_point("tcio", p, length)
        paths["trace"], paths["metrics"] = _write_pair(
            out, target, recorder, tcio=_legacy_tcio_metrics(result.tcio_stats)
        )
        ocio_rec, _ = _bench_point("ocio", p, length)
        paths["ocio_trace"], paths["ocio_metrics"] = _write_pair(
            out, f"{target}.ocio", ocio_rec
        )
    elif target == "fig67":
        # Throughput-vs-file-size mechanism: a larger per-process block.
        p = procs or (4 if tiny else 16)
        length = 128 if tiny else 1024
        recorder, result = _bench_point("tcio", p, length)
        paths["trace"], paths["metrics"] = _write_pair(
            out, target, recorder, tcio=_legacy_tcio_metrics(result.tcio_stats)
        )
        ocio_rec, _ = _bench_point("ocio", p, length)
        paths["ocio_trace"], paths["ocio_metrics"] = _write_pair(
            out, f"{target}.ocio", ocio_rec
        )
    elif target == "fig910":
        # The ART dump/restart application driver through TCIO.
        from repro.art.app import ArtConfig, run_art
        from repro.art.decomposition import ArtWorkload

        p = procs or (2 if tiny else 4)
        workload = ArtWorkload(
            n_segments=(4 if tiny else 8) * p,
            mu=256.0 if tiny else 512.0,
            sigma=16.0,
        )
        recorder = _recorder()
        result = run_art(
            ArtConfig(workload=workload, nprocs=p), trace=recorder
        )
        paths["trace"], paths["metrics"] = _write_pair(
            out, target, recorder, tcio=_legacy_tcio_metrics(result.restart_stats)
        )
    else:  # bench
        p = procs or (4 if tiny else 8)
        length = 64 if tiny else 128
        recorder, result = _bench_point("tcio", p, length)
        paths["trace"], paths["metrics"] = _write_pair(
            out, target, recorder, tcio=_legacy_tcio_metrics(result.tcio_stats)
        )

    print(ascii_timeline(recorder.tracer))
    for kind, path in sorted(paths.items()):
        print(f"{kind}: {path}")
    return paths
