"""repro.obs — the observability subsystem for the simulated stack.

One public surface for everything a run can report about itself:

* :mod:`repro.obs.metrics` — hierarchical :class:`MetricsRegistry` of
  dotted-name counters, gauges, and log2-bucket histograms;
* :mod:`repro.obs.spans` — the virtual-clock span :class:`Tracer` every
  layer emits intervals into (zero cost when disabled);
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON, ASCII
  timelines, and ``metrics.json`` snapshots;
* :mod:`repro.obs.runner` — the ``python -m repro trace ...`` entry
  point that runs a scaled-down experiment with tracing on.

Layers receive these through :class:`repro.sim.trace.TraceRecorder`,
which bundles one registry and one tracer per run.
"""

from repro.obs.export import (
    ascii_timeline,
    chrome_trace,
    metrics_json,
    track_ids,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import (
    N_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import NULL_SPAN, NULL_TRACER, SpanEvent, Tracer

__all__ = [
    "N_BUCKETS",
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanEvent",
    "Tracer",
    "ascii_timeline",
    "chrome_trace",
    "metrics_json",
    "track_ids",
    "write_chrome_trace",
    "write_metrics_json",
]
