"""Delegate service loops and client sessions (the ViPIOS-style core).

A *delegate* rank runs :func:`serve`: a persistent coroutine that drains
request arrivals into a bounded queue (admission control), applies queued
requests against one shared :class:`~repro.tcio.file.TcioFile` opened
collectively over the delegate sub-communicator, and enters the
collective durability points (open/flush/close) once every client it
serves has requested them and its queue has drained. Writes are
acknowledged at *admission* — the data reaches the file system through
TCIO's epoched write-behind at the next flush/close, which is why a
crashed delegate is recoverable by ``kill_ranks`` + journal replay.

A *client* rank runs :func:`run_clients`: it plays its logical clients'
trace requests in ``seq`` order, submitting each over the world
communicator's RPC endpoint and measuring per-request latency on the
virtual clock. ``BUSY`` rejections back off deterministically and
resubmit; barrier verbs (open/flush/close) are batched per rank — all of
its clients' requests go out before the first reply is awaited, since a
delegate completes a barrier only once *every* client subscribed.

Crash instrumentation mirrors TCIO's: the service loop announces the
named steps ``srv-admit`` / ``srv-apply`` / ``srv-flush`` / ``srv-close``
through :meth:`MpiWorld.crash_point`, so the crash-differential matrix
can kill a delegate at every protocol position (``tests/crash/``).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.ioserver.protocol import (
    ADMIT,
    BUSY,
    DATA,
    DONE,
    SHUTDOWN,
    IoServerConfig,
    Placement,
)
from repro.ioserver.trace import WorkloadTrace, payload_bytes
from repro.sim.api import run_coroutine
from repro.simmpi.rpc import RpcEndpoint, RpcEnvelope
from repro.tcio import TCIO_RDONLY, TCIO_WRONLY, TcioFile
from repro.util.errors import IoServerError, ServerBusy
from repro.util.rng import derive_seed

#: Service-loop crash-point names, in protocol order (``docs/io-server.md``).
SERVER_STEPS = ("srv-admit", "srv-apply", "srv-flush", "srv-close")

#: Request verbs that park the client until a collective completes.
BARRIER_OPS = ("open", "flush", "close")


def _crash_point(env, step: str):
    """Named crash hook (one test when unfaulted); coroutine like TCIO's."""
    if env.world.faults is not None:
        yield from run_coroutine(env.world.crash_point(step, env.rank))


# ----------------------------------------------------------------------
# the delegate side
# ----------------------------------------------------------------------


class _ServerState:
    """One delegate's mutable session state."""

    def __init__(self, clients: tuple[int, ...], depth: int):
        self.expected = frozenset(clients)
        self.depth = depth
        self.queue: deque = deque()  # (src_rank, envelope), admission order
        self.waiters: dict[str, dict[int, int]] = {}  # verb -> client -> src
        self.open_mode: str = ""
        self.file_name: str = ""
        self.done: set[int] = set()
        self.fh: Optional[TcioFile] = None
        self.stats = {
            "admitted": 0,
            "rejected": 0,
            "applied_writes": 0,
            "applied_fetches": 0,
            "written_bytes": 0,
            "max_depth": 0,
            "epochs": 0,
            "committed_epoch": 0,
        }


def serve(env, sub_comm, config: IoServerConfig, tcio_config, clients, file_name):
    """One delegate's persistent service loop (coroutine).

    ``sub_comm`` is the delegate sub-communicator (collective I/O runs
    over it); ``clients`` the logical client ids this delegate serves;
    ``file_name`` the shared file every collective open targets.
    Returns the delegate's stats dict once every client has shut down.
    """
    if not clients:
        raise IoServerError(f"delegate rank {env.rank} serves no clients")
    rpc = RpcEndpoint(env.comm)
    state = _ServerState(clients, config.queue_depth)
    state.file_name = file_name
    hub = env.world.trace
    while state.done < state.expected:
        progressed = False
        while True:  # drain every arrived request (cheap admission pass)
            status = rpc.poll()
            if status is None:
                break
            src, envelope = yield from rpc.recv_request(status.source)
            yield from _on_arrival(env, rpc, state, envelope, src, hub)
            progressed = True
        if state.queue:
            src, envelope = state.queue.popleft()
            yield from _crash_point(env, "srv-apply")
            yield from _apply(env, rpc, state, envelope, src, hub)
            continue
        verb = _ready_collective(state)
        if verb is not None:
            yield from _run_collective(
                env, rpc, state, verb, sub_comm, config, tcio_config, hub
            )
            continue
        if progressed:
            continue
        # Idle: park until the next request arrives.
        src, envelope = yield from rpc.recv_request()
        yield from _on_arrival(env, rpc, state, envelope, src, hub)
    if state.fh is not None:
        state.fh.abort()
        raise IoServerError(
            f"delegate rank {env.rank}: clients shut down with the file open"
        )
    return state.stats


def _on_arrival(env, rpc: RpcEndpoint, state: _ServerState, envelope, src, hub):
    """Admission control: queue, subscribe, or reject one arrival."""
    op = envelope.op
    if op in BARRIER_OPS:
        state.waiters.setdefault(op, {})[envelope.client] = src
        if op == "open":
            state.open_mode = envelope.args[0]
        return
    if op == SHUTDOWN:
        state.done.add(envelope.client)
        yield from rpc.send_reply(src, (DONE,))
        return
    if op not in ("write", "fetch"):
        raise IoServerError(f"delegate rank {env.rank}: unknown request {op!r}")
    if len(state.queue) >= state.depth:
        # Backpressure: reject without dequeuing anything; the client
        # sees a deterministic retryable ServerBusy signal.
        state.stats["rejected"] += 1
        if hub is not None:
            hub.count("ioserver.rejected")
        yield from rpc.send_reply(src, (BUSY, len(state.queue)))
        return
    yield from _crash_point(env, "srv-admit")
    state.queue.append((src, envelope))
    depth = len(state.queue)
    state.stats["admitted"] += 1
    state.stats["max_depth"] = max(state.stats["max_depth"], depth)
    if hub is not None:
        hub.count("ioserver.admitted")
        hub.registry.histogram("ioserver.queue.depth").observe(depth)
        gauge = hub.registry.gauge("ioserver.queue.highwater")
        gauge.set(max(gauge.value, depth))
    if op == "write":
        # The write-behind ack: enqueued, not yet durable.
        yield from rpc.send_reply(src, (ADMIT,))


def _apply(env, rpc: RpcEndpoint, state: _ServerState, envelope, src, hub):
    """Apply one admitted request against the shared TCIO handle."""
    if state.fh is None:
        raise IoServerError(
            f"delegate rank {env.rank}: {envelope.op} before the collective open"
        )
    if envelope.op == "write":
        offset, payload = envelope.args
        span = hub.span("ioserver.apply", op="write", bytes=len(payload)) if hub else None
        if span is not None:
            with span:
                yield from state.fh.write_at(offset, payload)
        else:
            yield from state.fh.write_at(offset, payload)
        state.stats["applied_writes"] += 1
        state.stats["written_bytes"] += len(payload)
        if hub is not None:
            hub.count("ioserver.bytes.written", len(payload))
    else:  # fetch
        offset, nbytes = envelope.args
        data = yield from state.fh.read_now(offset, nbytes)
        state.stats["applied_fetches"] += 1
        if hub is not None:
            hub.count("ioserver.bytes.read", len(data))
        yield from rpc.send_reply(src, (DATA, data))


def _ready_collective(state: _ServerState) -> Optional[str]:
    """The collective verb every client subscribed to, if any.

    Only called with an empty queue, so "queue drained" — the condition
    that makes flush-before-apply reordering impossible — always holds.
    """
    for verb in BARRIER_OPS:
        if set(state.waiters.get(verb, ())) == state.expected:
            return verb
    return None


def _run_collective(
    env, rpc: RpcEndpoint, state: _ServerState, verb, sub_comm, config,
    tcio_config, hub,
):
    """Enter one collective point over the delegate sub-communicator."""
    if verb == "open":
        if state.fh is not None:
            raise IoServerError("open while a handle is already open")
        mode = TCIO_WRONLY if state.open_mode == "w" else TCIO_RDONLY
        state.fh = yield from TcioFile.open(
            env, state.file_name, mode, tcio_config, comm=sub_comm
        )
    elif verb == "flush":
        yield from _crash_point(env, "srv-flush")
        span = hub.span("ioserver.epoch", rank=env.rank) if hub else None
        if span is not None:
            with span:
                yield from state.fh.flush()
        else:
            yield from state.fh.flush()
        state.stats["epochs"] += 1
        state.stats["committed_epoch"] = max(
            state.stats["committed_epoch"], state.fh.committed_epoch
        )
        if hub is not None:
            hub.registry.gauge("ioserver.epoch.committed").set(
                state.fh.committed_epoch
            )
            hub.registry.histogram("ioserver.write_behind.segments").observe(
                state.fh.pending_write_behind
            )
    else:  # close
        yield from _crash_point(env, "srv-close")
        state.stats["committed_epoch"] = max(
            state.stats["committed_epoch"], state.fh.committed_epoch
        )
        yield from state.fh.close()
        state.fh = None
    waiters = state.waiters.pop(verb)
    for client in sorted(waiters):
        yield from rpc.send_reply(waiters[client], (DONE,))


# ----------------------------------------------------------------------
# the client side
# ----------------------------------------------------------------------


def _submit(env, rpc: RpcEndpoint, delegate: int, envelope, config, seed, hub):
    """Submit with deterministic backoff-and-retry on BUSY (coroutine)."""
    attempt = 0
    while True:
        reply = yield from rpc.call(delegate, envelope)
        if reply[0] != BUSY:
            return reply
        if attempt >= config.max_retries:
            raise ServerBusy(delegate, envelope.client, envelope.op, reply[1])
        if hub is not None:
            hub.count("ioserver.retries")
        # Exponential backoff with seeded jitter, all on the virtual clock.
        jitter = (
            derive_seed(seed, "busy", envelope.client, envelope.seq, attempt)
            % 1000
        ) / 1000.0
        backoff = config.backoff_base * (2 ** min(attempt, 6)) * (1.0 + jitter)
        yield from env.ctx.process.sleep(backoff)
        attempt += 1


def run_clients(
    env, config: IoServerConfig, placement: Placement, trace: WorkloadTrace
):
    """One client rank's session: play its logical clients' requests.

    Returns a result dict with per-verb latency samples (virtual
    seconds), fetched bytes by trace seq, and rejection/retry counts.
    """
    rpc = RpcEndpoint(env.comm)
    delegate = placement.delegate_of_rank[env.rank]
    mine = set(placement.clients_of_rank(env.rank))
    ops = [op for op in trace.ops if op.client in mine]
    hub = env.world.trace
    latencies: dict[str, list[float]] = {}
    fetched: dict[int, bytes] = {}
    i = 0
    while i < len(ops):
        op = ops[i]
        if op.op in BARRIER_OPS:
            # Batch every consecutive same-verb barrier request: the
            # delegate completes the collective only once ALL its clients
            # subscribed, so awaiting replies one-by-one would deadlock a
            # rank playing several clients.
            batch = [op]
            while i + 1 < len(ops) and ops[i + 1].op == op.op:
                i += 1
                batch.append(ops[i])
            t0 = env.now
            for b in batch:
                args = (b.mode,) if b.op == "open" else ()
                yield from rpc.send_request(
                    delegate, RpcEnvelope(b.client, b.seq, b.op, args)
                )
            for _ in batch:
                reply = yield from rpc.recv_reply(delegate)
                assert reply[0] == DONE
            _observe(hub, latencies, op.op, env.now - t0, len(batch))
        elif op.op == "write":
            if op.delay:
                yield from env.ctx.process.sleep(op.delay)
            payload = payload_bytes(trace.seed, op.client, op.seq, op.nbytes)
            t0 = env.now
            reply = yield from _submit(
                env, rpc, delegate,
                RpcEnvelope(op.client, op.seq, "write", (op.offset, payload)),
                config, trace.seed, hub,
            )
            assert reply[0] == ADMIT
            _observe(hub, latencies, "write", env.now - t0)
        elif op.op == "fetch":
            if op.delay:
                yield from env.ctx.process.sleep(op.delay)
            t0 = env.now
            reply = yield from _submit(
                env, rpc, delegate,
                RpcEnvelope(op.client, op.seq, "fetch", (op.offset, op.nbytes)),
                config, trace.seed, hub,
            )
            assert reply[0] == DATA
            fetched[op.seq] = reply[1]
            _observe(hub, latencies, "fetch", env.now - t0)
        else:
            raise IoServerError(f"client rank {env.rank}: bad trace op {op.op!r}")
        i += 1
    for client in sorted(mine):
        reply = yield from rpc.call(
            delegate, RpcEnvelope(client, -1, SHUTDOWN)
        )
        assert reply[0] == DONE
    return {"latencies": latencies, "fetched": fetched}


def _observe(hub, latencies, verb: str, seconds: float, n: int = 1) -> None:
    samples = latencies.setdefault(verb, [])
    for _ in range(n):
        samples.append(seconds)
    if hub is not None:
        micros = seconds * 1e6
        for _ in range(n):
            hub.registry.histogram(f"ioserver.latency.{verb}.us").observe(micros)
