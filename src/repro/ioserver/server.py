"""Delegate service loops and client sessions (the ViPIOS-style core).

A *delegate* rank runs :func:`serve`: a persistent coroutine that drains
request arrivals into a bounded queue (admission control), applies queued
requests against one shared :class:`~repro.tcio.file.TcioFile` opened
collectively over the delegate sub-communicator, and enters the
collective durability points (open/flush/close) once every client it
serves has requested them and its queue has drained. Writes are
acknowledged at *admission* — the data reaches the file system through
TCIO's epoched write-behind at the next flush/close, which is why a
crashed delegate is recoverable by ``kill_ranks`` + journal replay.

A *client* rank runs :func:`run_clients`: it plays its logical clients'
trace requests in ``seq`` order, submitting each over the world
communicator's RPC endpoint and measuring per-request latency on the
virtual clock. ``BUSY`` rejections back off deterministically and
resubmit; barrier verbs (open/flush/close) are batched per rank — all of
its clients' requests go out before the first reply is awaited, since a
delegate completes a barrier only once *every* client subscribed.

With ``IoServerConfig.failover`` armed, a delegate death no longer
aborts the session. The shared TCIO handle runs with ``ft=True`` (the
survivors shrink and complete the flush); a surviving delegate adopts
the dead delegate's clients into its expected set and answers their
stale barrier subscriptions with catch-up ``DONE``\\ s via per-verb round
counters; the dead delegate's clients redirect to the ring-next alive
delegate (:func:`~repro.ioserver.protocol.failover_delegate`) and replay
every acknowledged-but-uncommitted write there — the write-behind data
only the dead delegate's volatile queue held. The real ``tcio_close``
is deferred to service exit so late-replayed writes still have an open
handle to land in. See ``docs/io-server.md``.

Crash instrumentation mirrors TCIO's: the service loop announces the
named steps ``srv-admit`` / ``srv-apply`` / ``srv-flush`` / ``srv-close``
through :meth:`MpiWorld.crash_point`, so the crash-differential matrix
can kill a delegate at every protocol position (``tests/crash/``).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.ioserver.protocol import (
    ADMIT,
    BUSY,
    DATA,
    DONE,
    PEER_DONE,
    SHUTDOWN,
    IoServerConfig,
    Placement,
    adopted_clients,
    failover_delegate,
)
from repro.ioserver.trace import WorkloadTrace, payload_bytes
from repro.sim.api import run_coroutine
from repro.simmpi.comm import ANY_SOURCE, pack_object, unpack_object, wait_all
from repro.simmpi.rpc import RpcEndpoint, RpcEnvelope
from repro.tcio import TCIO_RDONLY, TCIO_WRONLY, TcioFile
from repro.util.errors import IoServerError, RankUnreachable, ServerBusy
from repro.util.rng import derive_seed

#: Service-loop crash-point names, in protocol order (``docs/io-server.md``).
SERVER_STEPS = ("srv-admit", "srv-apply", "srv-flush", "srv-close")

#: Request verbs that park the client until a collective completes.
BARRIER_OPS = ("open", "flush", "close")


def _crash_point(env, step: str):
    """Named crash hook (one test when unfaulted); coroutine like TCIO's."""
    if env.world.faults is not None:
        yield from run_coroutine(env.world.crash_point(step, env.rank))


# ----------------------------------------------------------------------
# the delegate side
# ----------------------------------------------------------------------


class _ServerState:
    """One delegate's mutable session state."""

    def __init__(self, clients: tuple[int, ...], depth: int):
        self.expected = frozenset(clients)
        self.depth = depth
        self.queue: deque = deque()  # (src_rank, envelope), admission order
        self.waiters: dict[str, dict[int, int]] = {}  # verb -> client -> src
        self.rounds: dict[str, int] = {}  # verb -> completed collectives
        self.open_mode: str = ""
        self.file_name: str = ""
        self.done: set[int] = set()
        self.fh: Optional[TcioFile] = None
        self.stats = {
            "admitted": 0,
            "rejected": 0,
            "applied_writes": 0,
            "applied_fetches": 0,
            "written_bytes": 0,
            "max_depth": 0,
            "epochs": 0,
            "committed_epoch": 0,
            "adopted_clients": 0,
            "catchup_dones": 0,
        }


class _FtServer:
    """The failover half of one delegate's service loop.

    Wraps every park in a retry that joins a pending survivor recovery
    (see :meth:`TcioFile.ft_join_recovery`) instead of aborting, and
    owns the adoption bookkeeping: when a peer delegate dies, the ranks
    it served redirect here, and this delegate takes over their logical
    clients.
    """

    def __init__(self, env, state: _ServerState, placement: Placement, hub):
        self.env = env
        self.state = state
        self.placement = placement
        self.hub = hub
        self.known_dead: set[int] = set()
        #: Peer delegates that announced a drained client set.
        self.peers_done: set[int] = set()
        #: Logical clients some peer saw shut down — they never redirect.
        self.finished: set[int] = set()
        self.announced = False

    def _dead_delegates(self) -> set[int]:
        return set(self.placement.delegates) & self.env.world.dead_ranks

    def peers_finished(self) -> bool:
        """Every peer delegate is drained or dead — safe to exit."""
        return all(
            peer in self.peers_done or peer in self.env.world.dead_ranks
            for peer in self.placement.delegates
            if peer != self.env.rank
        )

    def announce(self, rpc: RpcEndpoint):
        """Tell every alive peer this delegate's clients all shut down
        (coroutine, idempotent).

        Sent exactly once, when the expected set first drains. Peers use
        it two ways: as their drain-barrier vote, and — should this
        delegate die later, e.g. inside the deferred close — as proof
        that its clients are finished and must not be adopted.
        """
        if self.announced:
            return
        self.announced = True
        payload = pack_object(
            RpcEnvelope(-1, -1, PEER_DONE, (tuple(sorted(self.state.done)),))
        )
        reqs = []
        for peer in self.placement.delegates:
            if peer == self.env.rank:
                continue
            while peer not in self.env.world.dead_ranks:
                try:
                    reqs.append(
                        (
                            yield from rpc.comm.isend(
                                payload, peer, rpc.tag_request
                            )
                        )
                    )
                    break
                except RankUnreachable:
                    yield from self.recover()
        yield from self.wait_many(reqs)

    def wait(self, req):
        """``req.wait()`` that survives fail-stop interrupts (coroutine)."""
        while True:
            try:
                return (yield from req.wait())
            except RankUnreachable:
                yield from self.recover()

    def wait_many(self, reqs):
        """``wait_all`` that survives fail-stop interrupts (coroutine)."""
        while True:
            try:
                return (yield from wait_all(reqs))
            except RankUnreachable:
                yield from self.recover()

    def recover(self):
        """Join the survivor-flush collective, then adopt (coroutine)."""
        if self.state.fh is not None:
            yield from self.state.fh.ft_join_recovery()
        self.adopt()

    def adopt(self) -> None:
        """Fold newly-redirected logical clients into the expected set."""
        dead = self._dead_delegates()
        if dead <= self.known_dead:
            return
        self.known_dead |= dead
        mine = adopted_clients(self.placement, self.env.rank, dead)
        # A client its (announced-then-died) delegate saw shut down has
        # completed its whole session; it will never redirect here, and
        # expecting it would block the drain barrier forever.
        new = mine - self.finished - set(self.state.expected)
        if new:
            self.state.expected = frozenset(self.state.expected | new)
            self.state.stats["adopted_clients"] += len(new)
            if self.hub is not None:
                self.hub.count("ioserver.failover.adopted", len(new))


def _recv_request(rpc: RpcEndpoint, ctx: Optional[_FtServer], source=ANY_SOURCE):
    """One request arrival -> ``(source_rank, envelope)`` (coroutine).

    In failover mode the *same* receive request is re-waited across
    fail-stop interrupts — abandoning a matched receive would consume
    the message without delivering it anywhere.
    """
    if ctx is None:
        return (yield from rpc.recv_request(source))
    while True:
        try:
            req = yield from rpc.comm.irecv(source, rpc.tag_request)
            break
        except RankUnreachable:
            yield from ctx.recover()
    payload = yield from ctx.wait(req)
    return req.status.source, unpack_object(payload)


def _reply(rpc: RpcEndpoint, ctx: Optional[_FtServer], dest: int, payload):
    """Send one reply, surviving fail-stop interrupts (coroutine).

    ``isend`` schedules delivery before its first interruptible point,
    so re-waiting the same send request never duplicates the message.
    """
    if ctx is None:
        yield from rpc.send_reply(dest, payload)
        return
    while True:
        try:
            req = yield from rpc.comm.isend(
                pack_object(payload), dest, rpc.tag_reply
            )
            break
        except RankUnreachable:
            yield from ctx.recover()
    yield from ctx.wait(req)


def serve(
    env, sub_comm, config: IoServerConfig, tcio_config, clients, file_name,
    placement: Optional[Placement] = None,
):
    """One delegate's persistent service loop (coroutine).

    ``sub_comm`` is the delegate sub-communicator (collective I/O runs
    over it); ``clients`` the logical client ids this delegate serves;
    ``file_name`` the shared file every collective open targets;
    ``placement`` the session placement (required in failover mode, for
    the adoption computation). Returns the delegate's stats dict once
    every client it serves — adopted ones included — has shut down.
    """
    if not clients:
        raise IoServerError(f"delegate rank {env.rank} serves no clients")
    if config.failover and placement is None:
        raise IoServerError("failover mode needs the session placement")
    rpc = RpcEndpoint(env.comm)
    state = _ServerState(clients, config.queue_depth)
    state.file_name = file_name
    hub = env.world.trace
    ctx = _FtServer(env, state, placement, hub) if config.failover else None
    while True:
        if ctx is None:
            if state.done >= state.expected:
                break
        else:
            # Fold in any newly-dead peer's clients *before* judging the
            # exit condition: a delegate that stops listening while a
            # redirected client is still in flight strands it.
            ctx.adopt()
            if state.done >= state.expected:
                yield from ctx.announce(rpc)
                if ctx.peers_finished():
                    break
        progressed = False
        while True:  # drain every arrived request (cheap admission pass)
            status = rpc.poll()
            if status is None:
                break
            src, envelope = yield from _recv_request(rpc, ctx, status.source)
            yield from _on_arrival(env, rpc, state, envelope, src, hub, ctx)
            progressed = True
        if state.queue:
            src, envelope = state.queue.popleft()
            try:
                yield from _crash_point(env, "srv-apply")
                yield from _apply(env, rpc, state, envelope, src, hub, ctx)
            except RankUnreachable:
                if ctx is None:
                    raise
                # Half-applied requests are idempotent (same bytes, same
                # offsets): put the envelope back and re-apply after the
                # survivor recovery.
                state.queue.appendleft((src, envelope))
                yield from ctx.recover()
            continue
        verb = _ready_collective(state)
        if verb is not None:
            yield from _run_collective(
                env, rpc, state, verb, sub_comm, config, tcio_config, hub, ctx
            )
            continue
        if progressed:
            continue
        # Idle: park until the next request arrives.
        src, envelope = yield from _recv_request(rpc, ctx)
        yield from _on_arrival(env, rpc, state, envelope, src, hub, ctx)
    if state.fh is not None:
        if ctx is None:
            state.fh.abort()
            raise IoServerError(
                f"delegate rank {env.rank}: clients shut down with the file open"
            )
        # Failover mode defers the real close to service exit so writes
        # replayed after the close *verb* still have a handle to land in.
        fh, state.fh = state.fh, None
        yield from fh.close()
        state.stats["committed_epoch"] = max(
            state.stats["committed_epoch"], fh.committed_epoch
        )
    return state.stats


def _on_arrival(
    env, rpc: RpcEndpoint, state: _ServerState, envelope, src, hub,
    ctx: Optional[_FtServer] = None,
):
    """Admission control: queue, subscribe, or reject one arrival."""
    if ctx is not None and envelope.op == PEER_DONE:
        ctx.peers_done.add(src)
        ctx.finished |= set(envelope.args[0])
        return
    if ctx is not None and envelope.client not in state.expected:
        # First contact from a redirected client: adopt before judging.
        ctx.adopt()
        if envelope.client not in state.expected:
            raise IoServerError(
                f"delegate rank {env.rank}: request from client "
                f"{envelope.client} it neither serves nor adopted"
            )
    op = envelope.op
    if op in BARRIER_OPS:
        if ctx is not None and envelope.args[-1] <= state.rounds.get(op, 0):
            # A late subscription to a collective round that already
            # completed (an adopted client catching up after redirect):
            # its global effect is in place, acknowledge immediately.
            state.stats["catchup_dones"] += 1
            if hub is not None:
                hub.count("ioserver.failover.catchup_dones", 1)
            yield from _reply(rpc, ctx, src, (DONE,))
            return
        state.waiters.setdefault(op, {})[envelope.client] = src
        if op == "open":
            state.open_mode = envelope.args[0]
        return
    if op == SHUTDOWN:
        state.done.add(envelope.client)
        yield from _reply(rpc, ctx, src, (DONE,))
        return
    if op not in ("write", "fetch"):
        raise IoServerError(f"delegate rank {env.rank}: unknown request {op!r}")
    if len(state.queue) >= state.depth:
        # Backpressure: reject without dequeuing anything; the client
        # sees a deterministic retryable ServerBusy signal.
        state.stats["rejected"] += 1
        if hub is not None:
            hub.count("ioserver.rejected")
        yield from _reply(rpc, ctx, src, (BUSY, len(state.queue)))
        return
    yield from _crash_point(env, "srv-admit")
    state.queue.append((src, envelope))
    depth = len(state.queue)
    state.stats["admitted"] += 1
    state.stats["max_depth"] = max(state.stats["max_depth"], depth)
    if hub is not None:
        hub.count("ioserver.admitted")
        hub.registry.histogram("ioserver.queue.depth").observe(depth)
        gauge = hub.registry.gauge("ioserver.queue.highwater")
        gauge.set(max(gauge.value, depth))
    if op == "write":
        # The write-behind ack: enqueued, not yet durable.
        yield from _reply(rpc, ctx, src, (ADMIT,))


def _apply(
    env, rpc: RpcEndpoint, state: _ServerState, envelope, src, hub,
    ctx: Optional[_FtServer] = None,
):
    """Apply one admitted request against the shared TCIO handle."""
    if state.fh is None:
        raise IoServerError(
            f"delegate rank {env.rank}: {envelope.op} before the collective open"
        )
    if envelope.op == "write":
        offset, payload = envelope.args
        span = hub.span("ioserver.apply", op="write", bytes=len(payload)) if hub else None
        if span is not None:
            with span:
                yield from state.fh.write_at(offset, payload)
        else:
            yield from state.fh.write_at(offset, payload)
        state.stats["applied_writes"] += 1
        state.stats["written_bytes"] += len(payload)
        if hub is not None:
            hub.count("ioserver.bytes.written", len(payload))
    else:  # fetch
        offset, nbytes = envelope.args
        data = yield from state.fh.read_now(offset, nbytes)
        state.stats["applied_fetches"] += 1
        if hub is not None:
            hub.count("ioserver.bytes.read", len(data))
        yield from _reply(rpc, ctx, src, (DATA, data))


def _ready_collective(state: _ServerState) -> Optional[str]:
    """The collective verb every client subscribed to, if any.

    Only called with an empty queue, so "queue drained" — the condition
    that makes flush-before-apply reordering impossible — always holds.
    """
    for verb in BARRIER_OPS:
        if set(state.waiters.get(verb, ())) == state.expected:
            return verb
    return None


def _run_collective(
    env, rpc: RpcEndpoint, state: _ServerState, verb, sub_comm, config,
    tcio_config, hub, ctx: Optional[_FtServer] = None,
):
    """Enter one collective point over the delegate sub-communicator."""
    if verb == "open":
        if state.fh is not None:
            if ctx is None:
                raise IoServerError("open while a handle is already open")
            # Failover defers the close verb's real close; a re-open (a
            # trace's read phase) settles it here.
            fh, state.fh = state.fh, None
            yield from fh.close()
        mode = TCIO_WRONLY if state.open_mode == "w" else TCIO_RDONLY
        state.fh = yield from TcioFile.open(
            env, state.file_name, mode, tcio_config, comm=sub_comm
        )
    elif verb == "flush":
        yield from _crash_point(env, "srv-flush")
        span = hub.span("ioserver.epoch", rank=env.rank) if hub else None
        if span is not None:
            with span:
                yield from state.fh.flush()
        else:
            yield from state.fh.flush()
        state.stats["epochs"] += 1
        state.stats["committed_epoch"] = max(
            state.stats["committed_epoch"], state.fh.committed_epoch
        )
        if hub is not None:
            hub.registry.gauge("ioserver.epoch.committed").set(
                state.fh.committed_epoch
            )
            hub.registry.histogram("ioserver.write_behind.segments").observe(
                state.fh.pending_write_behind
            )
    else:  # close
        yield from _crash_point(env, "srv-close")
        if ctx is not None:
            # Durability now, the real (collective) close at service
            # exit: replayed writes arriving after a failover may still
            # need the open handle.
            yield from state.fh.flush()
            state.stats["committed_epoch"] = max(
                state.stats["committed_epoch"], state.fh.committed_epoch
            )
        else:
            state.stats["committed_epoch"] = max(
                state.stats["committed_epoch"], state.fh.committed_epoch
            )
            yield from state.fh.close()
            state.fh = None
    state.rounds[verb] = state.rounds.get(verb, 0) + 1
    waiters = state.waiters.pop(verb)
    if ctx is None:
        for client in sorted(waiters):
            yield from rpc.send_reply(waiters[client], (DONE,))
        return
    # Schedule every DONE before the first interruptible point (isend
    # delivers regardless), so a fail-stop interrupt mid-batch cannot
    # split the round's acknowledgements.
    reqs = []
    for client in sorted(waiters):
        while True:
            try:
                reqs.append(
                    (
                        yield from rpc.comm.isend(
                            pack_object((DONE,)), waiters[client], rpc.tag_reply
                        )
                    )
                )
                break
            except RankUnreachable:
                yield from ctx.recover()
    yield from ctx.wait_many(reqs)


# ----------------------------------------------------------------------
# the client side
# ----------------------------------------------------------------------


def _submit(env, rpc: RpcEndpoint, delegate: int, envelope, config, seed, hub):
    """Submit with deterministic backoff-and-retry on BUSY (coroutine)."""
    attempt = 0
    while True:
        reply = yield from rpc.call(delegate, envelope)
        if reply[0] != BUSY:
            return reply
        if attempt >= config.max_retries:
            raise ServerBusy(delegate, envelope.client, envelope.op, reply[1])
        if hub is not None:
            hub.count("ioserver.retries")
        # Exponential backoff with seeded jitter, all on the virtual clock.
        jitter = (
            derive_seed(seed, "busy", envelope.client, envelope.seq, attempt)
            % 1000
        ) / 1000.0
        backoff = config.backoff_base * (2 ** min(attempt, 6)) * (1.0 + jitter)
        yield from env.ctx.process.sleep(backoff)
        attempt += 1


class _DelegateLost(Exception):
    """Internal: the client's current delegate died; redirect and retry."""


class _ClientSession:
    """One client rank's failover-aware submission state."""

    def __init__(self, env, config: IoServerConfig, placement: Placement,
                 trace: WorkloadTrace, hub):
        self.env = env
        self.comm = env.comm
        self.config = config
        self.placement = placement
        self.trace = trace
        self.hub = hub
        self.rpc = RpcEndpoint(env.comm)
        self.delegate = placement.delegate_of_rank[env.rank]
        #: (client, verb) -> collective rounds this client completed.
        self.rounds: dict[tuple[int, str], int] = {}
        #: Acked-but-uncommitted writes: (client, seq, offset, nbytes).
        self.replay: list[tuple[int, int, int, int]] = []
        self.redirects = 0

    def _delegate_dead(self) -> bool:
        return self.delegate in self.env.world.dead_ranks

    # -- interrupt-tolerant messaging primitives ------------------------

    def _await(self, req):
        """Re-wait the same request across fail-stop interrupts."""
        while True:
            try:
                return (yield from req.wait())
            except RankUnreachable:
                if self._delegate_dead():
                    raise _DelegateLost() from None
                # Some other rank died; this request's peer is alive.

    def _await_many(self, reqs):
        while True:
            try:
                return (yield from wait_all(reqs))
            except RankUnreachable:
                if self._delegate_dead():
                    raise _DelegateLost() from None

    def _isend(self, envelope):
        """isend to the current delegate; nothing is on the wire if it
        raises, so callers may retry freely (coroutine)."""
        while True:
            try:
                return (
                    yield from self.comm.isend(
                        pack_object(envelope), self.delegate, self.rpc.tag_request
                    )
                )
            except RankUnreachable:
                if self._delegate_dead():
                    raise _DelegateLost() from None

    def sleep(self, seconds: float):
        """Think-time/backoff sleep; a fail-stop interrupt cuts it short."""
        try:
            yield from self.env.ctx.process.sleep(seconds)
        except RankUnreachable:
            if self._delegate_dead():
                yield from self.redirect()

    # -- the session verbs ----------------------------------------------

    def call(self, envelope):
        """One request/reply exchange, redirecting on delegate death."""
        while True:
            try:
                sreq = yield from self._isend(envelope)
                yield from self._await(sreq)
                rreq = yield from self._irecv_reply()
                return unpack_object((yield from self._await(rreq)))
            except _DelegateLost:
                yield from self.redirect()

    def _irecv_reply(self):
        while True:
            try:
                return (
                    yield from self.comm.irecv(self.delegate, self.rpc.tag_reply)
                )
            except RankUnreachable:
                if self._delegate_dead():
                    raise _DelegateLost() from None

    def submit(self, envelope):
        """``call`` plus deterministic BUSY backoff (coroutine)."""
        attempt = 0
        while True:
            reply = yield from self.call(envelope)
            if reply[0] != BUSY:
                return reply
            if attempt >= self.config.max_retries:
                raise ServerBusy(
                    self.delegate, envelope.client, envelope.op, reply[1]
                )
            if self.hub is not None:
                self.hub.count("ioserver.retries")
            jitter = (
                derive_seed(
                    self.trace.seed, "busy", envelope.client, envelope.seq,
                    attempt,
                )
                % 1000
            ) / 1000.0
            backoff = (
                self.config.backoff_base * (2 ** min(attempt, 6)) * (1.0 + jitter)
            )
            yield from self.sleep(backoff)
            attempt += 1

    def barrier(self, batch, verb: str):
        """Subscribe a batch of same-verb barrier requests; await DONEs."""
        envelopes = []
        for b in batch:
            rnd = self.rounds.get((b.client, verb), 0) + 1
            args = (b.mode, rnd) if verb == "open" else (rnd,)
            envelopes.append(RpcEnvelope(b.client, b.seq, verb, args))
        while True:
            try:
                sreqs = []
                for e in envelopes:
                    sreqs.append((yield from self._isend(e)))
                yield from self._await_many(sreqs)
                for _ in envelopes:
                    rreq = yield from self._irecv_reply()
                    reply = unpack_object((yield from self._await(rreq)))
                    assert reply[0] == DONE
                break
            except _DelegateLost:
                yield from self.redirect()
        for b in batch:
            self.rounds[(b.client, verb)] = (
                self.rounds.get((b.client, verb), 0) + 1
            )
        if verb in ("flush", "close"):
            # The epoch committed: everything acked so far is durable.
            self.replay.clear()

    def redirect(self):
        """Fail over to the ring-next alive delegate and replay the
        write-behind window (coroutine).

        The dead delegate's volatile queue — and its share of the level-1
        /level-2 staging — held every write acked since the last commit;
        the replay buffer re-submits exactly those, so the only data a
        single delegate death can lose is what a *second* death before
        the next commit would strand.
        """
        dead = self.env.world.dead_ranks
        self.delegate = failover_delegate(self.placement, self.delegate, dead)
        self.redirects += 1
        if self.hub is not None:
            self.hub.count("ioserver.failover.redirects", 1)
        for client, seq, offset, nbytes in list(self.replay):
            payload = payload_bytes(self.trace.seed, client, seq, nbytes)
            reply = yield from self.submit(
                RpcEnvelope(client, seq, "write", (offset, payload))
            )
            assert reply[0] == ADMIT
            if self.hub is not None:
                self.hub.count("ioserver.failover.replayed_bytes", nbytes)


def run_clients(
    env, config: IoServerConfig, placement: Placement, trace: WorkloadTrace
):
    """One client rank's session: play its logical clients' requests.

    Returns a result dict with per-verb latency samples (virtual
    seconds), fetched bytes by trace seq, and rejection/retry counts.
    """
    if config.failover:
        return (yield from _run_clients_failover(env, config, placement, trace))
    rpc = RpcEndpoint(env.comm)
    delegate = placement.delegate_of_rank[env.rank]
    mine = set(placement.clients_of_rank(env.rank))
    ops = [op for op in trace.ops if op.client in mine]
    hub = env.world.trace
    latencies: dict[str, list[float]] = {}
    fetched: dict[int, bytes] = {}
    i = 0
    while i < len(ops):
        op = ops[i]
        if op.op in BARRIER_OPS:
            # Batch every consecutive same-verb barrier request: the
            # delegate completes the collective only once ALL its clients
            # subscribed, so awaiting replies one-by-one would deadlock a
            # rank playing several clients.
            batch = [op]
            while i + 1 < len(ops) and ops[i + 1].op == op.op:
                i += 1
                batch.append(ops[i])
            t0 = env.now
            for b in batch:
                args = (b.mode,) if b.op == "open" else ()
                yield from rpc.send_request(
                    delegate, RpcEnvelope(b.client, b.seq, b.op, args)
                )
            for _ in batch:
                reply = yield from rpc.recv_reply(delegate)
                assert reply[0] == DONE
            _observe(hub, latencies, op.op, env.now - t0, len(batch))
        elif op.op == "write":
            if op.delay:
                yield from env.ctx.process.sleep(op.delay)
            payload = payload_bytes(trace.seed, op.client, op.seq, op.nbytes)
            t0 = env.now
            reply = yield from _submit(
                env, rpc, delegate,
                RpcEnvelope(op.client, op.seq, "write", (op.offset, payload)),
                config, trace.seed, hub,
            )
            assert reply[0] == ADMIT
            _observe(hub, latencies, "write", env.now - t0)
        elif op.op == "fetch":
            if op.delay:
                yield from env.ctx.process.sleep(op.delay)
            t0 = env.now
            reply = yield from _submit(
                env, rpc, delegate,
                RpcEnvelope(op.client, op.seq, "fetch", (op.offset, op.nbytes)),
                config, trace.seed, hub,
            )
            assert reply[0] == DATA
            fetched[op.seq] = reply[1]
            _observe(hub, latencies, "fetch", env.now - t0)
        else:
            raise IoServerError(f"client rank {env.rank}: bad trace op {op.op!r}")
        i += 1
    for client in sorted(mine):
        reply = yield from rpc.call(
            delegate, RpcEnvelope(client, -1, SHUTDOWN)
        )
        assert reply[0] == DONE
    return {"latencies": latencies, "fetched": fetched}


def _run_clients_failover(
    env, config: IoServerConfig, placement: Placement, trace: WorkloadTrace
):
    """The failover-armed client session: same trace, redirect on death."""
    hub = env.world.trace
    sess = _ClientSession(env, config, placement, trace, hub)
    mine = set(placement.clients_of_rank(env.rank))
    ops = [op for op in trace.ops if op.client in mine]
    latencies: dict[str, list[float]] = {}
    fetched: dict[int, bytes] = {}
    i = 0
    while i < len(ops):
        op = ops[i]
        if op.op in BARRIER_OPS:
            batch = [op]
            while i + 1 < len(ops) and ops[i + 1].op == op.op:
                i += 1
                batch.append(ops[i])
            t0 = env.now
            yield from sess.barrier(batch, op.op)
            _observe(hub, latencies, op.op, env.now - t0, len(batch))
        elif op.op == "write":
            if op.delay:
                yield from sess.sleep(op.delay)
            payload = payload_bytes(trace.seed, op.client, op.seq, op.nbytes)
            t0 = env.now
            reply = yield from sess.submit(
                RpcEnvelope(op.client, op.seq, "write", (op.offset, payload))
            )
            assert reply[0] == ADMIT
            sess.replay.append((op.client, op.seq, op.offset, op.nbytes))
            _observe(hub, latencies, "write", env.now - t0)
        elif op.op == "fetch":
            if op.delay:
                yield from sess.sleep(op.delay)
            t0 = env.now
            reply = yield from sess.submit(
                RpcEnvelope(op.client, op.seq, "fetch", (op.offset, op.nbytes))
            )
            assert reply[0] == DATA
            fetched[op.seq] = reply[1]
            _observe(hub, latencies, "fetch", env.now - t0)
        else:
            raise IoServerError(f"client rank {env.rank}: bad trace op {op.op!r}")
        i += 1
    for client in sorted(mine):
        reply = yield from sess.call(RpcEnvelope(client, -1, SHUTDOWN))
        assert reply[0] == DONE
    return {
        "latencies": latencies,
        "fetched": fetched,
        "redirects": sess.redirects,
    }


def _observe(hub, latencies, verb: str, seconds: float, n: int = 1) -> None:
    samples = latencies.setdefault(verb, [])
    for _ in range(n):
        samples.append(seconds)
    if hub is not None:
        micros = seconds * 1e6
        for _ in range(n):
            hub.registry.histogram(f"ioserver.latency.{verb}.us").observe(micros)
