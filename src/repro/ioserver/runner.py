"""Trace-driven session runner, direct replays, and load-test reporting.

:func:`run_ioserver` drives one :class:`~repro.ioserver.trace.WorkloadTrace`
through the delegate servers and distills the observable outcome into an
:class:`IoServerResult`: the final file image (plus digest), throughput
under load, queue-depth statistics, and client-side tail latency
(p50/p90/p99 on the virtual clock) per request verb.

:func:`replay_direct` replays the *same* trace without servers — direct
TCIO, collective two-phase MPI-IO ("ocio"), or independent MPI-IO — so
differential tests can demand byte-identical images and fetch results
across all four execution paths.

Everything here is deterministic: same trace + same topology → the same
``(time, seq)`` schedule, the same metrics document, the same bytes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.ioserver.protocol import IoServerConfig, Placement, plan_placement
from repro.ioserver.server import run_clients, serve
from repro.ioserver.trace import WorkloadTrace, expected_image, payload_bytes
from repro.obs.export import metrics_json
from repro.obs.metrics import percentile
from repro.util.errors import IoServerError

#: Replay methods :func:`replay_direct` understands.
DIRECT_METHODS = ("tcio", "ocio", "mpiio")

#: Latency quantiles reported per verb (per cent).
QUANTILES = (50.0, 90.0, 99.0)


def session_node_of(nranks: int, cores_per_node: int) -> list[int]:
    """The node map :func:`repro.simmpi.run_mpi` derives for this shape."""
    return [r // cores_per_node for r in range(nranks)]


def plan_for(
    trace: WorkloadTrace, nranks: int, cores_per_node: int,
    config: IoServerConfig,
) -> Placement:
    """The placement a session of this shape will use (pure, pre-run)."""
    return plan_placement(
        session_node_of(nranks, cores_per_node), trace.nclients, config
    )


def _tcio_config(trace: WorkloadTrace, ndelegates: int, config: IoServerConfig):
    from repro.tcio import TcioConfig

    total = max(len(expected_image(trace)), config.segment_size)
    base = TcioConfig.sized_for(total, ndelegates, config.segment_size)
    return replace(base, journal=config.journal, ft=config.failover)


@dataclass
class IoServerResult:
    """Everything one server-mode session run reports."""

    nranks: int
    ndelegates: int
    nclients: int
    elapsed: float
    image: bytes
    throughput: float  # payload bytes per virtual second
    #: verb -> {"n", "p50", "p90", "p99", "max"} (virtual seconds)
    latency: dict[str, dict[str, float]] = field(default_factory=dict)
    admitted: int = 0
    rejected: int = 0
    applied_writes: int = 0
    max_depth: int = 0
    epochs_committed: int = 0
    fetched: dict[int, bytes] = field(default_factory=dict)
    delegate_stats: list[dict] = field(default_factory=list)
    mpi: object = None  # the underlying MpiRunResult
    aborted: Optional[BaseException] = None

    @property
    def image_sha256(self) -> str:
        return hashlib.sha256(self.image).hexdigest()

    def metrics_payload(self) -> dict:
        """The deterministic metrics document (virtual-clock only)."""
        return {
            "session": {
                "nranks": self.nranks,
                "ndelegates": self.ndelegates,
                "nclients": self.nclients,
                "elapsed_virtual_s": round(self.elapsed, 12),
                "throughput_bytes_per_s": round(self.throughput, 6),
                "admitted": self.admitted,
                "rejected": self.rejected,
                "applied_writes": self.applied_writes,
                "queue_depth_max": self.max_depth,
                "epochs_committed": self.epochs_committed,
                "image_sha256": self.image_sha256,
                "latency": self.latency,
            },
            "metrics": metrics_json(self.mpi.trace.registry)
            if self.mpi is not None
            else {},
        }

    def write_metrics(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.metrics_payload(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def summary(self) -> str:
        lines = [
            f"ioserver: {self.nclients} clients over {self.ndelegates} "
            f"delegates ({self.nranks} ranks)",
            f"  elapsed {self.elapsed * 1e3:.3f} ms virtual, "
            f"throughput {self.throughput / 1e6:.2f} MB/s",
            f"  admitted {self.admitted}, rejected {self.rejected}, "
            f"max queue depth {self.max_depth}, "
            f"epochs committed {self.epochs_committed}",
        ]
        for verb in sorted(self.latency):
            q = self.latency[verb]
            lines.append(
                f"  {verb:<6} n={int(q['n'])}: p50 {q['p50'] * 1e6:.1f} us, "
                f"p90 {q['p90'] * 1e6:.1f} us, p99 {q['p99'] * 1e6:.1f} us"
            )
        lines.append(f"  image sha256 {self.image_sha256[:16]}…")
        return "\n".join(lines)


def _latency_summary(samples: dict[str, list[float]]) -> dict[str, dict]:
    out = {}
    for verb in sorted(samples):
        values = samples[verb]
        if not values:
            continue
        out[verb] = {
            "n": float(len(values)),
            "max": max(values),
            **{f"p{int(q)}": percentile(values, q) for q in QUANTILES},
        }
    return out


def _session_main(trace, config, placement, tcio_config):
    """The per-rank program of one server-mode session."""
    from repro.simmpi.group import comm_from_ranks

    delegates = set(placement.delegates)

    def main(env):
        sub = yield from comm_from_ranks(env.comm, placement.delegates)
        if env.rank in delegates:
            stats = yield from serve(
                env, sub, config, tcio_config,
                placement.clients_of_delegate(env.rank), trace.file_name,
                placement=placement,
            )
            return {"role": "delegate", "stats": stats}
        out = yield from run_clients(env, config, placement, trace)
        out["role"] = "client"
        return out

    return main


def run_ioserver(
    trace: WorkloadTrace,
    *,
    nranks: int = 6,
    cores_per_node: int = 3,
    config: Optional[IoServerConfig] = None,
    recorder=None,
    faults=None,
) -> IoServerResult:
    """Run *trace* through delegate I/O servers; distill the outcome.

    The cluster is the calibrated ablation preset shaped as
    ``nranks/cores_per_node``; delegates and clients place per *config*
    (node leaders by default). With ``faults`` bound the run may abort —
    the result then carries the exception and the post-crash ``mpi``
    snapshot for recovery tooling, with empty load metrics.
    """
    from repro.experiments.topo_ablation import ablation_cluster
    from repro.simmpi import run_mpi

    config = config or IoServerConfig()
    config.validate()
    trace.validate()
    placement = plan_for(trace, nranks, cores_per_node, config)
    for d in placement.delegates:
        if not placement.clients_of_delegate(d):
            raise IoServerError(
                f"delegate rank {d} would serve no clients; "
                f"use fewer delegates or more clients"
            )
    tcio_config = _tcio_config(trace, len(placement.delegates), config)
    result = run_mpi(
        nranks,
        _session_main(trace, config, placement, tcio_config),
        cluster=ablation_cluster(nranks, cores_per_node),
        trace=recorder,
        faults=faults,
    )
    out = IoServerResult(
        nranks=nranks,
        ndelegates=len(placement.delegates),
        nclients=trace.nclients,
        elapsed=result.elapsed,
        image=b"",
        throughput=0.0,
        mpi=result,
        aborted=result.aborted,
    )
    if result.aborted is not None:
        return out
    if result.pfs.exists(trace.file_name):
        out.image = result.pfs.lookup(trace.file_name).contents()
    samples: dict[str, list[float]] = {}
    for rank in placement.client_ranks:
        ret = result.returns[rank]
        for verb, values in ret["latencies"].items():
            samples.setdefault(verb, []).extend(values)
        out.fetched.update(ret["fetched"])
    out.latency = _latency_summary(samples)
    for rank in placement.delegates:
        if result.returns[rank] is None:
            # A delegate lost to a fail-stop crash under failover: the
            # survivors completed the session without it.
            continue
        stats = result.returns[rank]["stats"]
        out.delegate_stats.append({"rank": rank, **stats})
        out.admitted += stats["admitted"]
        out.rejected += stats["rejected"]
        out.applied_writes += stats["applied_writes"]
        out.max_depth = max(out.max_depth, stats["max_depth"])
        out.epochs_committed = max(out.epochs_committed, stats["committed_epoch"])
    out.throughput = trace.written_bytes / result.elapsed if result.elapsed else 0.0
    return out


# ----------------------------------------------------------------------
# direct (server-less) replays for the differential suites
# ----------------------------------------------------------------------


@dataclass
class DirectReplay:
    """A server-less replay's observable outcome."""

    method: str
    elapsed: float
    image: bytes
    fetched: dict[int, bytes] = field(default_factory=dict)

    @property
    def image_sha256(self) -> str:
        return hashlib.sha256(self.image).hexdigest()


def _batched(ops):
    """Group each run of consecutive same-verb barrier ops (open/flush/
    close) into one batch; yield ('barrier', verb, batch) or ('op', op)."""
    i = 0
    while i < len(ops):
        op = ops[i]
        if op.op in ("open", "flush", "close"):
            j = i
            while j + 1 < len(ops) and ops[j + 1].op == op.op:
                j += 1
            yield ("barrier", op.op, ops[i : j + 1])
            i = j + 1
        else:
            yield ("op", op, None)
            i += 1


def _tcio_main(trace, nranks):
    from repro.tcio import TCIO_RDONLY, TCIO_WRONLY, TcioFile

    def main(env):
        mine = {c for c in range(trace.nclients) if c % env.size == env.rank}
        ops = [op for op in trace.ops if op.client in mine]
        config = _tcio_config(trace, env.size, IoServerConfig())
        fh = None
        fetched = {}
        for kind, a, b in _batched(ops):
            if kind == "barrier":
                if a == "open":
                    mode = TCIO_WRONLY if b[0].mode == "w" else TCIO_RDONLY
                    fh = yield from TcioFile.open(
                        env, trace.file_name, mode, config
                    )
                elif a == "flush":
                    yield from fh.flush()
                else:
                    yield from fh.close()
                    fh = None
            elif a.op == "write":
                if a.delay:
                    yield from env.ctx.process.sleep(a.delay)
                payload = payload_bytes(trace.seed, a.client, a.seq, a.nbytes)
                yield from fh.write_at(a.offset, payload)
            else:  # fetch
                if a.delay:
                    yield from env.ctx.process.sleep(a.delay)
                fetched[a.seq] = yield from fh.read_now(a.offset, a.nbytes)
        return fetched

    return main


def _mpiio_main(trace, collective: bool):
    """Independent MPI-IO, or ROMIO-style two-phase ("ocio") when
    *collective* — one ``write_at_all``/``read_at_all`` per client per
    round, each client's round coalesced into its own region image."""
    from repro.mpiio import (
        MODE_CREATE,
        MODE_RDONLY,
        MODE_RDWR,
        MpiFile,
    )
    from repro.simmpi.collectives import barrier

    def main(env):
        mine = sorted(
            c for c in range(trace.nclients) if c % env.size == env.rank
        )
        ops = [op for op in trace.ops if op.client in set(mine)]
        fh = None
        fetched = {}
        pending = []  # writes of the current round (collective mode)

        def coalesce(client):
            """One covering write for *client*'s round, program order."""
            writes = [op for op in pending if op.client == client]
            lo = min(op.offset for op in writes)
            hi = max(op.offset + op.nbytes for op in writes)
            buf = bytearray(hi - lo)
            for op in writes:
                buf[op.offset - lo : op.offset - lo + op.nbytes] = (
                    payload_bytes(trace.seed, op.client, op.seq, op.nbytes)
                )
            return lo, bytes(buf)

        for kind, a, b in _batched(ops):
            if kind == "barrier":
                if a == "open":
                    mode = (
                        MODE_RDONLY if b[0].mode == "r"
                        else MODE_RDWR | MODE_CREATE
                    )
                    fh = yield from MpiFile.open(env, trace.file_name, mode)
                elif a == "flush":
                    if collective:
                        for client in mine:
                            lo, buf = coalesce(client)
                            yield from fh.write_at_all(lo, buf)
                        pending.clear()
                    yield from barrier(env.comm)
                else:
                    if collective and pending:
                        raise IoServerError("unflushed writes at close")
                    yield from fh.close()
                    fh = None
            elif a.op == "write":
                if a.delay:
                    yield from env.ctx.process.sleep(a.delay)
                if collective:
                    pending.append(a)
                else:
                    payload = payload_bytes(
                        trace.seed, a.client, a.seq, a.nbytes
                    )
                    yield from fh.write_at(a.offset, payload)
            else:  # fetch
                if a.delay:
                    yield from env.ctx.process.sleep(a.delay)
                if collective:
                    fetched[a.seq] = yield from fh.read_at_all(
                        a.offset, a.nbytes
                    )
                else:
                    fetched[a.seq] = yield from fh.read_at(a.offset, a.nbytes)
        return fetched

    return main


def replay_direct(
    trace: WorkloadTrace,
    method: str,
    *,
    nranks: int = 4,
    cores_per_node: int = 2,
) -> DirectReplay:
    """Replay *trace* without servers; clients spread ``c % nranks``.

    ``method`` is one of ``"tcio"`` (direct collective TCIO),
    ``"ocio"`` (two-phase collective MPI-IO), or ``"mpiio"``
    (independent MPI-IO). The final image and every fetch answer must
    match server mode byte-for-byte — that is the differential oracle.
    """
    from repro.experiments.topo_ablation import ablation_cluster
    from repro.simmpi import run_mpi

    if method not in DIRECT_METHODS:
        raise IoServerError(f"unknown replay method {method!r}")
    trace.validate()
    if nranks > trace.nclients:
        raise IoServerError(
            f"{nranks} ranks for {trace.nclients} clients: "
            f"every replay rank needs at least one client"
        )
    if method == "ocio" and trace.nclients % nranks != 0:
        raise IoServerError(
            "ocio replay needs nclients divisible by nranks "
            "(equal collective call counts per rank)"
        )
    main = (
        _tcio_main(trace, nranks)
        if method == "tcio"
        else _mpiio_main(trace, collective=(method == "ocio"))
    )
    result = run_mpi(
        nranks, main, cluster=ablation_cluster(nranks, cores_per_node)
    )
    if result.aborted is not None:
        raise RuntimeError(f"direct replay aborted: {result.aborted}")
    fetched: dict[int, bytes] = {}
    for ret in result.returns:
        fetched.update(ret)
    image = (
        result.pfs.lookup(trace.file_name).contents()
        if result.pfs.exists(trace.file_name)
        else b""
    )
    return DirectReplay(
        method=method, elapsed=result.elapsed, image=image, fetched=fetched
    )
