"""Delegate-count ablation: how many I/O servers should a job run?

ViPIOS-style delegation (PAPERS.md) trades client-side parallelism for
server-side aggregation; the interesting knob is the delegate count. This
harness replays ONE fixed trace through sessions that differ only in
their delegate set — explicit counts plus the default node-leader
placement — and reports throughput and tail latency per point.

Determinism is part of the contract: the same ``(trace, nranks)`` sweep
produces the identical metrics document (virtual-clock quantities and
content hashes only), and every point's durable image must equal the
trace's analytic expected image.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Union

from repro.ioserver.protocol import IoServerConfig
from repro.ioserver.runner import run_ioserver
from repro.ioserver.trace import WorkloadTrace, expected_image, generate_trace
from repro.util.errors import IoServerError

#: The delegate-count axis the paper-style ablation sweeps by default:
#: explicit counts, then the topology-aware node-leader placement.
DEFAULT_COUNTS: tuple = (1, 2, 4, "leaders")


def _delegates_for(count: Union[int, str], nranks: int):
    if count == "leaders":
        return "leaders"
    k = int(count)
    if not 1 <= k < nranks:
        raise IoServerError(
            f"delegate count {k} needs 1 <= k < nranks ({nranks}); "
            "at least one rank must remain a client"
        )
    return tuple(range(k))


def delegate_ablation(
    trace: Optional[WorkloadTrace] = None,
    *,
    seed: int = 0,
    nranks: int = 8,
    cores_per_node: int = 4,
    counts: Sequence[Union[int, str]] = DEFAULT_COUNTS,
    config: Optional[IoServerConfig] = None,
) -> dict:
    """Sweep delegate counts over one fixed trace; return the report.

    Without an explicit *trace* a default one is generated from *seed*
    with one logical client per plausible client rank. Raises
    :class:`IoServerError` if any point's image deviates from the
    analytic oracle — an ablation that changes bytes is a bug, not a
    data point.
    """
    base = config or IoServerConfig()
    if trace is None:
        trace = generate_trace(
            seed, max(1, nranks - max(1, nranks // cores_per_node))
        )
    expected = expected_image(trace)

    points: dict[str, dict] = {}
    for count in counts:
        cfg = replace(base, delegates=_delegates_for(count, nranks))
        result = run_ioserver(
            trace, nranks=nranks, cores_per_node=cores_per_node, config=cfg
        )
        if result.aborted is not None:
            raise IoServerError(
                f"delegate ablation point {count!r} aborted: {result.aborted}"
            )
        if result.image != expected:
            raise IoServerError(
                f"delegate ablation point {count!r} changed the file image "
                "(differential vs analytic oracle failed)"
            )
        session = result.metrics_payload()["session"]
        points[str(count)] = session

    return {
        "schema": "repro.ioserver.delegate_ablation/1",
        "seed": seed,
        "nranks": nranks,
        "cores_per_node": cores_per_node,
        "trace": {
            "ops": len(trace.ops),
            "nclients": trace.nclients,
            "written_bytes": trace.written_bytes,
        },
        "counts": [str(c) for c in counts],
        "points": points,
    }


def render_ablation(report: dict) -> str:
    """Human-readable one-line-per-point view of an ablation report."""
    lines = [
        f"delegate ablation: {report['nranks']} ranks, "
        f"{report['trace']['nclients']} clients, "
        f"{report['trace']['written_bytes']} payload bytes"
    ]
    for count in report["counts"]:
        s = report["points"][count]
        p99 = max(
            (q["p99"] for q in s["latency"].values()), default=0.0
        )
        lines.append(
            f"  {count:>7}: {s['ndelegates']} delegates, "
            f"elapsed {s['elapsed_virtual_s'] * 1e3:.3f} ms, "
            f"throughput {s['throughput_bytes_per_s'] / 1e6:.2f} MB/s, "
            f"worst p99 {p99 * 1e6:.1f} us, rejected {s['rejected']}"
        )
    return "\n".join(lines)
