"""ViPIOS-style delegate I/O servers over the TCIO substrate
(``repro.ioserver``).

A configurable subset of ranks — explicit, or one leader per node via
:mod:`repro.topo` — run persistent service loops with bounded request
queues, admission control, and backpressure. Client ranks submit
open/write/flush/fetch/close requests that return as soon as they are
*admitted*; delegates apply them in the background and push committed
epochs through TCIO's journaled write-behind, so a crashed server is
recovered by the ordinary ``recover()``/``fsck`` path.

* :mod:`repro.ioserver.trace` — seeded, replayable workload traces
  (derived payloads, disjoint client regions, virtual think times).
* :mod:`repro.ioserver.protocol` — wire protocol, config, placement.
* :mod:`repro.ioserver.server` — delegate service loop + client session.
* :mod:`repro.ioserver.runner` — session runner, direct (server-less)
  replays, and load-test reporting.

See ``docs/io-server.md`` for the queueing model, the epoch write-behind
state machine, and the trace format.
"""

from repro.ioserver.protocol import (
    ADMIT,
    BUSY,
    DATA,
    DONE,
    SHUTDOWN,
    IoServerConfig,
    Placement,
    adopted_clients,
    failover_delegate,
    plan_placement,
)
from repro.ioserver.ablation import (
    DEFAULT_COUNTS,
    delegate_ablation,
    render_ablation,
)
from repro.ioserver.runner import (
    DIRECT_METHODS,
    DirectReplay,
    IoServerResult,
    plan_for,
    replay_direct,
    run_ioserver,
)
from repro.ioserver.server import BARRIER_OPS, SERVER_STEPS, run_clients, serve
from repro.ioserver.trace import (
    TraceOp,
    WorkloadTrace,
    expected_fetch,
    expected_image,
    generate_trace,
    load_trace,
    merge_ops,
    payload_bytes,
    save_trace,
)

__all__ = [
    "ADMIT",
    "BUSY",
    "DATA",
    "DONE",
    "SHUTDOWN",
    "BARRIER_OPS",
    "SERVER_STEPS",
    "DIRECT_METHODS",
    "DEFAULT_COUNTS",
    "delegate_ablation",
    "render_ablation",
    "IoServerConfig",
    "Placement",
    "adopted_clients",
    "failover_delegate",
    "plan_placement",
    "plan_for",
    "DirectReplay",
    "IoServerResult",
    "replay_direct",
    "run_ioserver",
    "run_clients",
    "serve",
    "TraceOp",
    "WorkloadTrace",
    "expected_fetch",
    "expected_image",
    "generate_trace",
    "load_trace",
    "merge_ops",
    "payload_bytes",
    "save_trace",
]
