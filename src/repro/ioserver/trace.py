"""Replayable synthetic workload traces for the I/O-server mode.

A :class:`WorkloadTrace` is a seeded, fully deterministic request stream
from ``nclients`` logical clients against one shared file: an epoch-
structured sequence of ``open`` / ``write`` / ``flush`` / ``close``
requests, optionally followed by a read phase (``open`` read-only /
``fetch`` / ``close``). The same trace drives four executions that must
end byte-identical — delegate-server mode and the three direct replays
(TCIO, OCIO, MPI-IO) — so the format carries everything those paths
need and nothing they could disagree on:

* **Payloads are derived, not stored.** A write's bytes are a pure
  function :func:`payload_bytes` of ``(seed, client, seq, nbytes)``, so
  traces stay small and replays can neither drop nor reorder data
  silently — the wrong bytes simply don't match.
* **Client regions are disjoint.** Every ``(client, epoch)`` pair owns
  its own byte range. Within one client, requests apply in ``seq``
  order on every path (clients are sequential); across clients no byte
  is ever contended, so the final image is independent of the arrival
  interleaving delegates happen to see. That is what makes
  "byte-identical across paths" a theorem rather than a race.
* **Think times are part of the trace.** Each op carries a seeded
  virtual-clock delay, so queue depths and tail latencies are properties
  of the *trace*, replayed bit-identically, not of host scheduling.

:func:`expected_image` computes the analytic file image (optionally
truncated to a committed-epoch prefix), which anchors both the
differential suites and the crash-recovery matrix.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Iterable, Optional

from repro.util.errors import IoServerError
from repro.util.rng import seeded_rng

#: On-disk format marker (:func:`save_trace` / :func:`load_trace`).
TRACE_FORMAT = "repro-ioserver-trace"
TRACE_VERSION = 1

#: The request verbs a trace may contain, in no particular order.
OPS = ("open", "write", "flush", "fetch", "close")


@dataclass(frozen=True)
class TraceOp:
    """One request of one logical client.

    ``seq`` is globally unique and totally orders the trace; each
    client's subsequence is its program order. ``mode`` is only
    meaningful for ``open`` ("w" or "r"); ``offset``/``nbytes`` only for
    ``write`` and ``fetch``; ``delay`` is virtual think time the client
    waits before issuing the request.
    """

    seq: int
    client: int
    op: str
    offset: int = 0
    nbytes: int = 0
    mode: str = ""
    delay: float = 0.0


@dataclass(frozen=True)
class WorkloadTrace:
    """A complete, replayable request stream against one file."""

    seed: int
    nclients: int
    file_name: str
    ops: tuple[TraceOp, ...]

    def client_ops(self, client: int) -> tuple[TraceOp, ...]:
        """One client's requests, in program (seq) order."""
        return tuple(op for op in self.ops if op.client == client)

    @property
    def epochs(self) -> int:
        """Number of global flush barriers in the write phase."""
        return sum(1 for op in self.ops if op.op == "flush" and op.client == 0)

    @property
    def written_bytes(self) -> int:
        """Total payload bytes across all write requests."""
        return sum(op.nbytes for op in self.ops if op.op == "write")

    @property
    def has_reads(self) -> bool:
        """True when the trace ends with a read phase."""
        return any(op.op == "fetch" for op in self.ops)

    def validate(self) -> None:
        """Check the structural invariants replays rely on."""
        seqs = [op.seq for op in self.ops]
        if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
            raise IoServerError("trace ops must be strictly seq-ordered")
        flushes_of = [0] * self.nclients
        for op in self.ops:
            if op.op not in OPS:
                raise IoServerError(f"unknown trace op {op.op!r}")
            if not 0 <= op.client < self.nclients:
                raise IoServerError(f"op {op.seq}: client {op.client} out of range")
            if op.op == "flush":
                flushes_of[op.client] += 1
        if len(set(flushes_of)) > 1:
            # Flushes are collective on every replay path: uneven counts
            # would wedge the direct TCIO replay at a barrier.
            raise IoServerError("every client must flush the same number of times")


def payload_bytes(seed: int, client: int, seq: int, nbytes: int) -> bytes:
    """The deterministic payload of one write request.

    SHA-256 in counter mode over ``(seed, client, seq)``: stable across
    platforms, incompressible enough that any replay mixing up requests
    (or truncating one) breaks the byte-for-byte differential.
    """
    out = bytearray()
    counter = 0
    while len(out) < nbytes:
        text = repr((int(seed), int(client), int(seq), counter))
        out += hashlib.sha256(text.encode("utf-8")).digest()
        counter += 1
    return bytes(out[:nbytes])


def generate_trace(
    seed: int,
    nclients: int,
    *,
    epochs: int = 2,
    writes_per_epoch: int = 3,
    max_write_bytes: int = 96,
    reads_per_client: int = 2,
    mean_think: float = 20e-6,
    dense: bool = False,
    file_name: str = "ioserver.dat",
) -> WorkloadTrace:
    """Generate a seeded, structurally valid workload trace.

    Each ``(client, epoch)`` pair owns the disjoint region
    ``[(epoch * nclients + client) * R, ... + R)`` with
    ``R = writes_per_epoch * max_write_bytes``; the client issues
    ``writes_per_epoch`` seeded-size writes at seeded offsets inside it
    (self-overlap allowed — program order resolves it identically on
    every path). All clients flush after every epoch and close after the
    last; with ``reads_per_client > 0`` a read phase reopens the file
    read-only and fetches seeded subranges of the client's own regions.

    ``dense=True`` tiles each region exactly (every write is
    ``max_write_bytes`` at the next sequential offset), leaving no holes
    inside the eof — what fsck-based crash accounting needs, since a
    sparse file's holes are indistinguishable from untracked bytes.
    """
    if nclients < 1 or epochs < 1 or writes_per_epoch < 1:
        raise IoServerError("need at least one client, epoch, and write")
    region = writes_per_epoch * max_write_bytes
    ops: list[TraceOp] = []
    seq = 0

    def emit(client: int, op: str, **kw) -> None:
        nonlocal seq
        ops.append(TraceOp(seq=seq, client=client, op=op, **kw))
        seq += 1

    def think(rng) -> float:
        # Bounded uniform think time: spreads arrivals across the virtual
        # clock without the unbounded tail an exponential would add.
        return float(rng.uniform(0.0, 2.0 * mean_think))

    for client in range(nclients):
        emit(client, "open", mode="w")
    for epoch in range(epochs):
        # Round-robin across clients inside the epoch so delegates see
        # interleaved arrivals rather than one client's burst at a time.
        rngs = [
            seeded_rng(seed, "ioserver", "write", client, epoch)
            for client in range(nclients)
        ]
        for w in range(writes_per_epoch):
            for client in range(nclients):
                rng = rngs[client]
                base = (epoch * nclients + client) * region
                if dense:
                    nbytes = max_write_bytes
                    offset = base + w * max_write_bytes
                else:
                    nbytes = int(rng.integers(1, max_write_bytes + 1))
                    offset = base + int(rng.integers(0, region - nbytes + 1))
                emit(
                    client, "write",
                    offset=offset, nbytes=nbytes, delay=think(rng),
                )
        for client in range(nclients):
            emit(client, "flush")
    for client in range(nclients):
        emit(client, "close")
    if reads_per_client > 0:
        # Clamp read ranges to the written eof so every replay path (PFS
        # reads included) sees in-bounds requests with identical answers.
        eof = max(op.offset + op.nbytes for op in ops if op.op == "write")
        for client in range(nclients):
            emit(client, "open", mode="r")
        for r in range(reads_per_client):
            for client in range(nclients):
                rng = seeded_rng(seed, "ioserver", "read", client, r)
                epoch = int(rng.integers(0, epochs))
                base = (epoch * nclients + client) * region
                nbytes = int(rng.integers(1, region + 1))
                offset = base + int(rng.integers(0, region - nbytes + 1))
                end = min(offset + nbytes, eof)
                offset = min(offset, eof - 1)
                nbytes = max(1, end - offset)
                emit(
                    client, "fetch",
                    offset=offset, nbytes=nbytes, delay=think(rng),
                )
        for client in range(nclients):
            emit(client, "close")
    trace = WorkloadTrace(
        seed=seed, nclients=nclients, file_name=file_name, ops=tuple(ops)
    )
    trace.validate()
    return trace


def expected_image(trace: WorkloadTrace, epochs: Optional[int] = None) -> bytes:
    """The analytic file image after the first *epochs* flush barriers.

    ``None`` applies the whole write phase (what a clean run must leave
    on the file system); ``epochs=k`` stops after the k-th global flush —
    exactly the committed prefix crash recovery must reproduce when a
    delegate dies before the (k+1)-th epoch's commit mark is durable.
    """
    writes: list[TraceOp] = []
    flushed = 0
    for op in trace.ops:
        if op.op == "write":
            writes.append(op)
        elif op.op == "flush" and op.client == 0:
            flushed += 1
            if epochs is not None and flushed >= epochs:
                break
    if not writes:
        return b""
    eof = max(op.offset + op.nbytes for op in writes)
    image = bytearray(eof)
    for op in writes:  # seq order == program order per client
        image[op.offset : op.offset + op.nbytes] = payload_bytes(
            trace.seed, op.client, op.seq, op.nbytes
        )
    return bytes(image)


def expected_fetch(trace: WorkloadTrace, op: TraceOp) -> bytes:
    """The bytes one ``fetch`` request must return (from the final image)."""
    image = expected_image(trace)
    out = image[op.offset : op.offset + op.nbytes]
    return out + b"\0" * (op.nbytes - len(out))  # reads past eof see zeros


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------


def save_trace(trace: WorkloadTrace, path: str) -> None:
    """Write a trace as versioned JSON (payloads are derived, not stored)."""
    doc = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "seed": trace.seed,
        "nclients": trace.nclients,
        "file_name": trace.file_name,
        "ops": [asdict(op) for op in trace.ops],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_trace(path: str) -> WorkloadTrace:
    """Load (and validate) a trace written by :func:`save_trace`."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") != TRACE_FORMAT:
        raise IoServerError(f"{path}: not a {TRACE_FORMAT} file")
    if doc.get("version") != TRACE_VERSION:
        raise IoServerError(
            f"{path}: trace version {doc.get('version')} unsupported "
            f"(expected {TRACE_VERSION})"
        )
    trace = WorkloadTrace(
        seed=int(doc["seed"]),
        nclients=int(doc["nclients"]),
        file_name=str(doc["file_name"]),
        ops=tuple(TraceOp(**op) for op in doc["ops"]),
    )
    trace.validate()
    return trace


def merge_ops(traces: Iterable[WorkloadTrace]) -> tuple[TraceOp, ...]:
    """All ops of several traces in one global seq order (analysis aid)."""
    return tuple(sorted((op for t in traces for op in t.ops), key=lambda o: o.seq))
