"""The delegate-server wire protocol, configuration, and placement.

Requests travel as :class:`~repro.simmpi.rpc.RpcEnvelope` objects whose
``op`` is a trace verb (``open``/``write``/``flush``/``fetch``/``close``)
plus the session-control verb ``shutdown``. Replies are small tagged
tuples; the first element is one of:

* ``ADMIT`` — the request was placed in the delegate's bounded queue.
  Writes are acknowledged **here**, before the data is applied: that is
  the write-behind contract (durability arrives at the next committed
  epoch, not at the ack).
* ``BUSY`` — admission control rejected the request because the queue is
  at its bound. Deterministic and retryable; the client backs off on the
  virtual clock and resubmits (or surfaces :class:`ServerBusy`).
* ``DONE`` — a collective point (open/flush/close/shutdown) completed.
* ``DATA`` — a fetch was applied; carries the bytes.

Placement is pure local computation: every rank derives the same
:class:`Placement` from ``node_of`` (global knowledge, like
``MPI_Comm_split_type``), so delegates, client ranks, logical-client
assignment and the delegate sub-communicator's member list agree globally
with no messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.topo import node_leader_ranks
from repro.util.errors import IoServerError

ADMIT = "admit"
BUSY = "busy"
DONE = "done"
DATA = "data"

#: Session-control verb a client sends after its last trace op.
SHUTDOWN = "shutdown"

#: Delegate→delegate session-control verb (failover mode only): the
#: sender drained its expected-client set. Carries the finished client
#: ids, so a survivor adopting the sender's clients after a later death
#: knows none of them will ever redirect. No delegate exits its service
#: loop until every peer is done-or-dead — the drain barrier that keeps
#: a standby alive for clients whose delegate dies at the very last
#: protocol step.
PEER_DONE = "srv-peer-done"


@dataclass(frozen=True)
class IoServerConfig:
    """Tunables of one delegate-server session.

    ``delegates`` is either the string ``"leaders"`` (one delegate per
    node, via :func:`repro.topo.node_leader_ranks`) or an explicit tuple
    of world ranks. ``queue_depth`` bounds each delegate's admitted-but-
    unapplied request queue — the backpressure knob. ``max_retries`` and
    ``backoff_base`` govern the client-side reaction to ``BUSY``:
    deterministic exponential backoff on the virtual clock, then
    :class:`~repro.util.errors.ServerBusy` once the budget is spent
    (``max_retries=0`` surfaces the error on the first rejection).
    ``journal`` is handed to the delegates' shared
    :class:`~repro.tcio.params.TcioConfig` — ``"epoch"`` is what makes a
    crashed delegate recoverable. ``failover`` arms survive-and-complete
    fault tolerance end to end: the shared TCIO handle opens with
    ``ft=True`` (surviving delegates shrink and finish the flush), a dead
    delegate's clients redirect to the ring-next alive delegate via
    :func:`failover_delegate` and replay their acked-but-uncommitted
    writes there, and the standby adopts them into its expected set —
    clients see retryable redirects, never aborts. Requires
    ``journal="epoch"``; the failover window covers the write phase (a
    delegate death during a read phase still aborts).
    """

    delegates: Union[str, tuple[int, ...]] = "leaders"
    queue_depth: int = 8
    max_retries: int = 24
    backoff_base: float = 25e-6
    journal: str = "epoch"
    segment_size: int = 64
    failover: bool = False

    def validate(self) -> None:
        if self.failover and self.journal != "epoch":
            raise IoServerError("failover requires journal='epoch'")
        if self.queue_depth < 1:
            raise IoServerError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.max_retries < 0:
            raise IoServerError("max_retries must be >= 0")
        if self.backoff_base <= 0:
            raise IoServerError("backoff_base must be positive")
        if isinstance(self.delegates, str):
            if self.delegates != "leaders":
                raise IoServerError(
                    f"delegates must be 'leaders' or an explicit rank tuple, "
                    f"got {self.delegates!r}"
                )
        elif not self.delegates:
            raise IoServerError("need at least one delegate rank")


@dataclass(frozen=True)
class Placement:
    """Who serves and who submits, derived identically on every rank."""

    delegates: tuple[int, ...]
    client_ranks: tuple[int, ...]
    #: logical client id -> the world rank playing it
    rank_of_client: tuple[int, ...]
    #: client rank -> its delegate's world rank
    delegate_of_rank: dict[int, int] = field(default_factory=dict)

    def clients_of_rank(self, rank: int) -> tuple[int, ...]:
        """The logical clients a client rank plays, ascending."""
        return tuple(
            c for c, r in enumerate(self.rank_of_client) if r == rank
        )

    def clients_of_delegate(self, delegate: int) -> tuple[int, ...]:
        """The logical clients one delegate serves, ascending."""
        return tuple(
            c
            for c, r in enumerate(self.rank_of_client)
            if self.delegate_of_rank[r] == delegate
        )


def plan_placement(
    node_of: Sequence[int], nclients: int, config: IoServerConfig
) -> Placement:
    """Derive the session's placement from the job's node map.

    Delegates come from the config (node leaders by default); every
    remaining rank is a client rank. Logical clients spread round-robin
    over client ranks; each client rank submits to a same-node delegate
    when one exists, otherwise to ``delegates[i % D]`` by its position
    ``i`` in the client-rank list (load-balanced and deterministic).
    """
    nranks = len(node_of)
    if isinstance(config.delegates, str):
        delegates = node_leader_ranks(node_of)
    else:
        delegates = tuple(sorted(config.delegates))
        bad = [d for d in delegates if not 0 <= d < nranks]
        if bad:
            raise IoServerError(f"delegate ranks {bad} outside the job")
    client_ranks = tuple(r for r in range(nranks) if r not in set(delegates))
    if not client_ranks:
        raise IoServerError(
            f"all {nranks} ranks are delegates; no rank left to run clients"
        )
    if nclients < 1:
        raise IoServerError("need at least one logical client")
    rank_of_client = tuple(
        client_ranks[c % len(client_ranks)] for c in range(nclients)
    )
    delegate_of_rank: dict[int, int] = {}
    for i, rank in enumerate(client_ranks):
        same_node = [d for d in delegates if node_of[d] == node_of[rank]]
        delegate_of_rank[rank] = (
            same_node[0] if same_node else delegates[i % len(delegates)]
        )
    return Placement(
        delegates=delegates,
        client_ranks=client_ranks,
        rank_of_client=rank_of_client,
        delegate_of_rank=delegate_of_rank,
    )


def failover_delegate(
    placement: Placement, delegate: int, dead: set[int]
) -> int:
    """The standby serving *delegate*'s clients once it is in *dead*.

    Ring walk over ``placement.delegates`` starting just past the dead
    delegate's position, first alive delegate wins — pure local
    computation, so redirecting clients and adopting standbys agree with
    no coordination. A delegate not in *dead* is its own standby. Raises
    :class:`IoServerError` when every delegate is dead (nothing left to
    redirect to: the job has genuinely lost the service).
    """
    if delegate not in dead:
        return delegate
    ring = placement.delegates
    start = ring.index(delegate)
    for i in range(1, len(ring) + 1):
        standby = ring[(start + i) % len(ring)]
        if standby not in dead:
            return standby
    raise IoServerError("every delegate is dead; no standby to fail over to")


def adopted_clients(placement: Placement, rank: int, dead: set[int]) -> set[int]:
    """The logical clients rank *rank* adopts given the *dead* delegates.

    A client rank whose delegate died redirects every logical client it
    plays to :func:`failover_delegate`'s standby; this is the standby's
    side of that computation.
    """
    out: set[int] = set()
    for r in placement.client_ranks:
        d = placement.delegate_of_rank[r]
        if d in dead and failover_delegate(placement, d, dead) == rank:
            out.update(placement.clients_of_rank(r))
    return out
