"""Cluster description: nodes, memory, interconnect, and file system.

Scaling rule (see DESIGN.md): a cluster scaled by ``s`` divides every *size*
(stripe size, node memory, eager limit) and every *fixed per-event time*
(latencies, setup costs, request overheads) by ``s`` while keeping all
*rates* (bandwidths) unchanged. The scaled system is then an exact time
dilation of the full-size one — every ratio, crossover and throughput the
figures depend on is preserved, while simulated workloads shrink by ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, TYPE_CHECKING

from repro.netsim.model import NetworkSpec
from repro.pfs.spec import LustreSpec
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.pfs.filesystem import Pfs
    from repro.sim.engine import Engine


@dataclass(frozen=True)
class ClusterSpec:
    """A simulated machine."""

    name: str
    nodes: int
    cores_per_node: int
    memory_per_node: int
    network: NetworkSpec
    lustre: LustreSpec
    scale: int = 1

    @property
    def capacity(self) -> int:
        """Maximum ranks (one per core)."""
        return self.nodes * self.cores_per_node

    def validate(self) -> None:
        """Raise ValueError on inconsistent cluster constants."""
        if self.nodes < 1 or self.cores_per_node < 1:
            raise ValueError("cluster needs nodes and cores")
        if self.memory_per_node < 1:
            raise ValueError("node memory must be positive")
        self.network.validate()
        self.lustre.validate()

    def scaled(self, scale: int, stripe_scale: Optional[int] = None) -> "ClusterSpec":
        """Apply the size/time dilation described in the module docstring.

        ``stripe_scale`` (default: ``scale``) divides the stripe/lock/segment
        granularity separately. Using a smaller divisor than ``scale`` keeps
        segments proportionally *larger* than at full size — "message-count
        compression": per-run flush/lock message counts shrink with the data
        while every bandwidth/capacity ratio stays intact (see DESIGN.md).
        """
        if scale < 1:
            raise ValueError("scale must be >= 1")
        if stripe_scale is None:
            stripe_scale = scale
        if not (1 <= stripe_scale <= scale):
            raise ValueError("stripe_scale must be in [1, scale]")
        if scale == 1:
            return self
        net = replace(
            self.network,
            latency=self.network.latency / scale,
            per_message_overhead=self.network.per_message_overhead / scale,
            connection_setup=self.network.connection_setup / scale,
            match_overhead=self.network.match_overhead / scale,
            match_queue_overhead=self.network.match_queue_overhead / scale,
            rma_epoch_overhead=self.network.rma_epoch_overhead / scale,
            rma_shared_epoch_overhead=self.network.rma_shared_epoch_overhead / scale,
            rma_message_overhead=self.network.rma_message_overhead / scale,
            eager_limit=max(1, self.network.eager_limit // stripe_scale),
        )
        fs = replace(
            self.lustre,
            stripe_size=max(1, self.lustre.stripe_size // stripe_scale),
            ost_write_overhead=self.lustre.ost_write_overhead / scale,
            ost_read_overhead=self.lustre.ost_read_overhead / scale,
            lock_latency=self.lustre.lock_latency / scale,
        )
        return replace(
            self,
            network=net,
            lustre=fs,
            memory_per_node=max(1, self.memory_per_node // scale),
            scale=self.scale * scale,
        )

    def sized_for(self, nranks: int) -> "ClusterSpec":
        """Shrink the node count to just fit *nranks* (keeps topology rules)."""
        needed = -(-nranks // self.cores_per_node)
        if needed > self.nodes:
            raise ValueError(f"{nranks} ranks exceed {self.capacity} cores")
        return replace(self, nodes=needed)

    def build_pfs(self, engine: "Engine", trace: Optional[TraceRecorder] = None) -> "Pfs":
        """Construct this cluster's parallel file system on *engine*."""
        from repro.pfs.filesystem import Pfs

        return Pfs(engine, self.lustre, n_client_nodes=self.nodes, trace=trace)
