"""Cluster descriptions (testbed presets) for simulated jobs."""

from repro.cluster.spec import ClusterSpec
from repro.cluster.lonestar import make_lonestar, LONESTAR_SCALE

__all__ = ["ClusterSpec", "make_lonestar", "LONESTAR_SCALE"]
