"""The paper's testbed: TACC Lonestar, as a calibrated scaled preset.

Lonestar 4 (Section V.A): 1,888 nodes x two 6-core processors (12
ranks/node), 24 GB/node, Mellanox InfiniBand QDR fat tree (40 Gbit/s
point-to-point), Lustre with 30 OSTs and 1 MB stripes.

Scaling and calibration
-----------------------
All *data sizes* are divided by ``LONESTAR_SCALE`` (4096): array lengths,
file sizes, node memory. The stripe/lock/segment granularity is divided by
only ``LONESTAR_STRIPE_SCALE`` (32) — "message-count compression" — so
per-run flush/lock/request counts stay laptop-tractable (DESIGN.md §2).

Because sizes and event counts shrink by *different* factors, fixed
per-event costs cannot be derived from full-scale hardware constants by any
single division: the same overhead would be 128x over- or under-weighted
depending on whether its event count scales with the data or with the
process count. The per-event constants below are therefore **calibrated in
the scaled world**: chosen so that the relative weight of each mechanism —
storage-transfer time, per-request storage overhead, two-sided matching
(linear and queue-pressure terms), one-sided epoch costs — reproduces the
orderings and crossovers of the paper's figures. Absolute throughputs are
not comparable to the paper's (and are not a reproduction target); who wins
where is.

``full_scale_lonestar`` keeps physically-grounded full-size constants for
tests of the dilation machinery itself.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.spec import ClusterSpec
from repro.netsim.model import NetworkSpec
from repro.pfs.spec import LustreSpec
from repro.util.units import GIB, KIB, MIB

#: The global data-size dilation used by all experiments.
LONESTAR_SCALE = 4096

#: The stripe/lock granularity divisor (message-count compression).
LONESTAR_STRIPE_SCALE = 32

#: Full-size testbed constants (physical; used by the dilation-rule tests).
_FULL = ClusterSpec(
    name="lonestar",
    nodes=1888,
    cores_per_node=12,
    memory_per_node=24 * GIB,
    network=NetworkSpec(
        link_bandwidth=3.2 * GIB,  # ~40 Gbit/s QDR, effective payload rate
        latency=2.0e-6,
        per_message_overhead=1.0e-6,
        connection_setup=150.0e-6,  # queue-pair establishment
        fabric_bandwidth=48.0 * GIB,  # shared core / IO-router bisection share
        memcpy_bandwidth=6.0 * GIB,
        eager_limit=12 * KIB,
        match_overhead=1.0e-6,
        match_queue_overhead=40.0e-9,
        rma_epoch_overhead=8.0e-6,
        rma_shared_epoch_overhead=2.0e-6,
        rma_message_overhead=0.2e-6,
    ),
    lustre=LustreSpec(
        n_osts=30,
        stripe_size=1 * MIB,
        default_stripe_count=1,
        ost_write_bandwidth=350.0 * MIB,
        ost_read_bandwidth=1200.0 * MIB,
        ost_write_overhead=8000.0e-6,
        ost_read_overhead=1000.0e-6,
        lock_latency=60.0e-6,
        client_bandwidth=1400.0 * MIB,
    ),
)

#: The calibrated scaled machine every experiment runs on (see module doc).
_CALIBRATED = ClusterSpec(
    name=f"lonestar/{LONESTAR_SCALE}",
    nodes=1888,
    cores_per_node=12,
    memory_per_node=(24 * GIB) // LONESTAR_SCALE,
    network=NetworkSpec(
        link_bandwidth=3.2 * GIB,
        latency=0.2e-6,
        per_message_overhead=0.08e-6,
        connection_setup=1.0e-6,
        fabric_bandwidth=48.0 * GIB,
        memcpy_bandwidth=6.0 * GIB,
        eager_limit=768,
        match_overhead=1.7e-6,
        match_queue_overhead=2.5e-9,
        rma_epoch_overhead=5.5e-6,
        rma_shared_epoch_overhead=0.1e-6,
        rma_message_overhead=0.005e-6,
    ),
    lustre=LustreSpec(
        n_osts=30,
        stripe_size=(1 * MIB) // LONESTAR_STRIPE_SCALE,
        # Shared experiment files stripe over every OST; the paper's Fig.
        # 9/10 discussion ("the number of I/O servers determines the
        # bandwidth of the file system") is about the aggregate.
        default_stripe_count=30,
        ost_write_bandwidth=350.0 * MIB,
        ost_read_bandwidth=1200.0 * MIB,
        ost_write_overhead=8.0e-6,
        ost_read_overhead=1.0e-6,
        lock_latency=0.5e-6,
        client_bandwidth=3.0 * GIB,
        ost_write_noise=0.4,
        ost_read_noise=0.4,
        ost_client_scaling=1.0 / 32.0,
        lock_contention_penalty=2.0e-6,
    ),
    scale=LONESTAR_SCALE,
)


def make_lonestar(
    *,
    nranks: Optional[int] = None,
    scale: int = LONESTAR_SCALE,
    stripe_scale: Optional[int] = None,
) -> ClusterSpec:
    """The calibrated scaled Lonestar preset, optionally sized to *nranks*.

    The default arguments return the calibrated machine. Passing a
    different ``scale``/``stripe_scale`` applies the generic dilation rule
    to the full-size constants instead (for scaling-rule tests).
    """
    if scale == LONESTAR_SCALE and stripe_scale in (None, LONESTAR_STRIPE_SCALE):
        spec = _CALIBRATED
    else:
        if stripe_scale is None:
            stripe_scale = min(scale, LONESTAR_STRIPE_SCALE)
        spec = _FULL.scaled(scale, stripe_scale)
    if nranks is not None:
        spec = spec.sized_for(nranks)
    return spec


def full_scale_lonestar() -> ClusterSpec:
    """The unscaled testbed (for unit tests of the scaling rule itself)."""
    return _FULL
