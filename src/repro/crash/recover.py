"""Offline crash recovery: replay committed journal epochs into the file.

After a fail-stop crash aborts a simulated job, the PFS image survives in
the :class:`~repro.simmpi.mpi.MpiRunResult` — this module rebuilds a
consistent data file from it, exactly like a restarting job would:

1. read the commit file; the largest valid mark gives the committed epoch
   and its eof,
2. replay every journal record of every rank with ``epoch <= committed``
   in epoch order (later epochs overwrite earlier ones; records within an
   epoch touch disjoint extents, one owner per segment),
3. truncate the data file to the committed eof (no commits at all means
   truncate to zero — TCIO write handles have fresh-file semantics, so an
   uncommitted first epoch recovers to the empty file).

Recovery is host-side and charges no simulated time: it models a restart
tool that runs after the job is gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.crash.journal import (
    commit_name,
    committed_state,
    is_journal_file,
    iter_records,
)
from repro.util.errors import PfsError, tag_job

if TYPE_CHECKING:  # pragma: no cover
    from repro.pfs.filesystem import Pfs


@dataclass
class RecoveryReport:
    """What one recovery pass did."""

    name: str
    committed_epoch: int
    eof: int
    replayed_records: int = 0
    replayed_bytes: int = 0
    #: Bytes that actually differed and were rewritten. Zero on a second
    #: pass (or after a clean shutdown): the idempotence witness.
    written_bytes: int = 0
    skipped_uncommitted: int = 0  # records of epochs past the last commit
    torn_records: int = 0  # torn tails discarded (never committed)
    journals: list[str] = field(default_factory=list)
    #: Owning job for multi-tenant runs (``None`` for solo recovery).
    job: "str | None" = None

    def summary(self) -> str:
        """One human-readable line."""
        jtag = f" [job {self.job}]" if self.job else ""
        return (
            f"recover {self.name}{jtag}: epoch {self.committed_epoch} "
            f"(eof {self.eof}), {self.replayed_records} records / "
            f"{self.replayed_bytes} bytes replayed, "
            f"{self.skipped_uncommitted} uncommitted skipped, "
            f"{self.torn_records} torn discarded"
        )


def recover(pfs: "Pfs", name: str, *, job: "str | None" = None) -> RecoveryReport:
    """Replay *name*'s journals into a consistent file image.

    Idempotent: running it twice (or after a clean shutdown) is harmless —
    committed records rewrite the bytes the file already holds. ``job``
    attributes the pass (and any error it raises) to one tenant of a
    shared PFS; pass it whenever recovering through a per-job namespace
    view (:class:`repro.tenancy.TenantPfs`).
    """
    if not pfs.exists(name):
        raise tag_job(PfsError(f"recover: no such file {name!r}"), job)
    data = pfs.lookup(name)
    committed, eof = (0, 0)
    if pfs.exists(commit_name(name)):
        committed, eof = committed_state(pfs.lookup(commit_name(name)).contents())
    report = RecoveryReport(name=name, committed_epoch=committed, eof=eof, job=job)

    replay = []  # (epoch, journal name, record) — sorted for determinism
    for fname in sorted(pfs.list_files()):
        if not is_journal_file(fname, name):
            continue
        report.journals.append(fname)
        for rec in iter_records(pfs.lookup(fname).contents()):
            if rec.torn:
                report.torn_records += 1
            elif rec.epoch > committed:
                report.skipped_uncommitted += 1
            else:
                replay.append((rec.epoch, fname, rec))
    replay.sort(key=lambda item: (item[0], item[1], item[2].gseg))
    for _epoch, _fname, rec in replay:
        for i, (lo, hi) in enumerate(rec.extents):
            piece = rec.piece(i)
            # Compare-before-write keeps the pass idempotent: a second
            # run (a failover retry path, or recovery after a clean
            # shutdown) must leave the file image untouched, not dirty
            # it with byte-identical rewrites.
            if data.read_bytes(lo, len(piece)) != piece:
                data.write_bytes(lo, piece)
                report.written_bytes += len(piece)
        report.replayed_records += 1
        report.replayed_bytes += rec.nbytes
    if data.size != eof:
        data.truncate(eof)
    return report
