"""The TCIO write-ahead journal format.

Epoched flushes (``TcioConfig.journal = "epoch"``) append one record per
owned dirty segment to a per-rank journal file before any in-place data
write, then mark the epoch with a commit record in a shared commit file.
This module owns the byte format; ``tcio/file.py`` writes it inside the
simulation, and :mod:`repro.crash.recover` / :mod:`repro.crash.fsck`
parse it back host-side after a crash.

Layout
------
``<name>.journal.<rank>`` — a sequence of records, each::

    header   <IqqiI   magic, epoch, segment id, n_extents, payload crc32
    extents  n * <qq  absolute [start, stop) file byte ranges
    payload  concatenated bytes of the extents, in order

The header+extents and the payload are two separate PFS writes (with a
crash point between them), so a mid-flush crash leaves a *torn* record:
header present, payload short or checksum-mismatched. Recovery discards
torn records — their epoch never committed, by construction.

``<name>.journal.commit`` — a sequence of commit marks, each::

    <IqqI   magic, epoch, eof at commit time, crc32 of (epoch, eof)

The largest epoch with a valid mark is the committed epoch; everything
journaled for later epochs is discarded on recovery.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

RECORD_MAGIC = 0x54434A52  # "TCJR"
COMMIT_MAGIC = 0x54434A43  # "TCJC"

_HEAD = struct.Struct("<IqqiI")  # magic, epoch, gseg, n_extents, payload crc
_EXTENT = struct.Struct("<qq")  # absolute [start, stop)
_COMMIT = struct.Struct("<IqqI")  # magic, epoch, eof, crc


def rank_journal(name: str, rank: int) -> str:
    """The per-rank journal file name for data file *name*."""
    return f"{name}.journal.{rank}"


def commit_name(name: str) -> str:
    """The shared commit-mark file name for data file *name*."""
    return f"{name}.journal.commit"


def is_journal_file(candidate: str, name: str) -> bool:
    """Whether *candidate* is one of *name*'s per-rank journal files."""
    prefix = f"{name}.journal."
    if not candidate.startswith(prefix):
        return False
    suffix = candidate[len(prefix):]
    return suffix.isdigit()


def pack_record_head(
    epoch: int, gseg: int, extents: list[tuple[int, int]], payload: bytes
) -> bytes:
    """Header + extent table of one journal record (write 1 of 2)."""
    head = _HEAD.pack(RECORD_MAGIC, epoch, gseg, len(extents), zlib.crc32(payload))
    return head + b"".join(_EXTENT.pack(lo, hi) for lo, hi in extents)


def pack_commit(epoch: int, eof: int) -> bytes:
    """One commit mark."""
    crc = zlib.crc32(struct.pack("<qq", epoch, eof))
    return _COMMIT.pack(COMMIT_MAGIC, epoch, eof, crc)


@dataclass
class JournalRecord:
    """One parsed journal record (possibly torn)."""

    epoch: int
    gseg: int
    extents: list[tuple[int, int]]
    crc: int
    payload: bytes
    torn: bool  # payload short/corrupt, or the extent table itself truncated

    @property
    def nbytes(self) -> int:
        """Bytes the record covers (sum of extent lengths)."""
        return sum(hi - lo for lo, hi in self.extents)

    def piece(self, index: int) -> bytes:
        """The payload slice belonging to ``extents[index]``."""
        base = sum(hi - lo for lo, hi in self.extents[:index])
        lo, hi = self.extents[index]
        return self.payload[base : base + (hi - lo)]


def iter_records(raw: bytes) -> list[JournalRecord]:
    """Parse a per-rank journal image into records, torn tail included.

    Parsing stops at the first corrupt header (a crash can only tear the
    *tail* — journals are append-only); a record whose payload is missing,
    short, or checksum-mismatched is yielded with ``torn=True``.
    """
    records: list[JournalRecord] = []
    pos = 0
    while pos + _HEAD.size <= len(raw):
        magic, epoch, gseg, n_extents, crc = _HEAD.unpack_from(raw, pos)
        if magic != RECORD_MAGIC or n_extents < 0:
            break
        pos += _HEAD.size
        if pos + n_extents * _EXTENT.size > len(raw):
            records.append(JournalRecord(epoch, gseg, [], crc, b"", torn=True))
            return records
        extents = [
            _EXTENT.unpack_from(raw, pos + i * _EXTENT.size)
            for i in range(n_extents)
        ]
        pos += n_extents * _EXTENT.size
        need = sum(hi - lo for lo, hi in extents)
        payload = raw[pos : pos + need]
        pos += need
        torn = len(payload) < need or zlib.crc32(payload) != crc
        records.append(JournalRecord(epoch, gseg, extents, crc, payload, torn))
        if torn:
            return records
    return records


def read_commits(raw: bytes) -> list[tuple[int, int]]:
    """Valid ``(epoch, eof)`` commit marks of a commit-file image.

    A torn trailing mark (short or checksum-mismatched) is ignored: its
    epoch simply never committed.
    """
    marks: list[tuple[int, int]] = []
    pos = 0
    while pos + _COMMIT.size <= len(raw):
        magic, epoch, eof, crc = _COMMIT.unpack_from(raw, pos)
        if magic != COMMIT_MAGIC:
            break
        if zlib.crc32(struct.pack("<qq", epoch, eof)) != crc:
            break
        marks.append((epoch, eof))
        pos += _COMMIT.size
    return marks


def committed_state(raw: bytes) -> tuple[int, int]:
    """The last committed ``(epoch, eof)`` — ``(0, 0)`` with no commits."""
    marks = read_commits(raw)
    if not marks:
        return (0, 0)
    return max(marks)
