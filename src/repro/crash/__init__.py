"""``repro.crash`` — fail-stop crashes, journaled durability, recovery.

The simulation side lives elsewhere (``sim.engine`` kills processes,
``simmpi`` surfaces dead peers as :class:`~repro.util.errors.RankUnreachable`,
``tcio/file.py`` runs the epoched journal protocol when
``TcioConfig.journal == "epoch"``). This package is the *offline* side:
the journal byte format, the recovery replayer, the fsck classifier, and
the crash-differential harness that ties them together. See
``docs/faults.md``.
"""

from repro.crash.fsck import CrashContext, FsckReport, fsck
from repro.crash.harness import (
    STEPS,
    CrashCell,
    CrashMatrixResult,
    crash_free_reference,
    run_crash_cell,
    run_crash_matrix,
    run_journal_off_cell,
    run_server_survive_cell,
    run_server_survive_matrix,
    run_survive_cell,
    run_survive_matrix,
)
from repro.crash.journal import (
    JournalRecord,
    commit_name,
    committed_state,
    is_journal_file,
    iter_records,
    rank_journal,
    read_commits,
)
from repro.crash.recover import RecoveryReport, recover

__all__ = [
    "CrashCell",
    "CrashContext",
    "CrashMatrixResult",
    "FsckReport",
    "JournalRecord",
    "RecoveryReport",
    "STEPS",
    "commit_name",
    "committed_state",
    "crash_free_reference",
    "fsck",
    "is_journal_file",
    "iter_records",
    "rank_journal",
    "read_commits",
    "recover",
    "run_crash_cell",
    "run_crash_matrix",
    "run_journal_off_cell",
    "run_server_survive_cell",
    "run_server_survive_matrix",
    "run_survive_cell",
    "run_survive_matrix",
]
