"""Post-crash file verification: classify every byte of a TCIO file.

``fsck(pfs, name)`` reads the surviving PFS image (data file + journals +
commit file) and accounts for every byte inside the committed eof:

* **committed** — covered by a committed journal record whose payload
  matches the file content,
* **torn** — covered by a committed record but the file disagrees (an
  in-place writeback that never finished and was not repaired; running
  :func:`repro.crash.recover.recover` first fixes these),
* **untracked** — inside the committed eof but covered by no committed
  record (with journaling on from the first write this means metadata
  corruption; a file is only *clean* with zero torn and zero untracked
  bytes).

Bytes journaled for epochs past the last commit are reported as
**uncommitted** — expected after a crash, discarded by recovery.

Passing a :class:`CrashContext` (the in-memory segment directory dug out
of an aborted run) additionally detects **lost** bytes: data some rank
deposited into level-2 volatile memory that reached neither a committed
journal record nor the file via the degraded direct-write fallback. This
is the only way to quantify loss with ``journal="off"`` — the PFS image
alone cannot tell what never arrived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.crash.journal import (
    commit_name,
    committed_state,
    is_journal_file,
    iter_records,
)
from repro.util.errors import PfsError, tag_job

if TYPE_CHECKING:  # pragma: no cover
    from repro.pfs.filesystem import Pfs
    from repro.simmpi.mpi import MpiWorld
    from repro.tcio.level2 import SegmentDirectory


@dataclass
class CrashContext:
    """In-memory TCIO state of an aborted run, for lost-byte detection."""

    directory: "SegmentDirectory"

    @classmethod
    def from_world(cls, world: "MpiWorld", name: str) -> Optional["CrashContext"]:
        """Dig the newest open generation's segment directory for *name*
        out of ``world.shared`` (survives the abort)."""
        best = None
        best_gen = -1
        for key, value in world.shared.items():
            if (
                isinstance(key, tuple)
                and len(key) == 3
                and key[0] == "tcio-dir"
                and key[1] == name
                and key[2] > best_gen
            ):
                best_gen, best = key[2], value
        return None if best is None else cls(directory=best)


@dataclass
class FsckReport:
    """Byte accounting of one fsck pass."""

    name: str
    committed_epoch: int
    eof: int  # committed eof (0 without commits)
    file_size: int
    committed_bytes: int = 0
    torn_bytes: int = 0
    untracked_bytes: int = 0
    uncommitted_bytes: int = 0  # journaled past the last commit (discarded)
    uncommitted_records: int = 0
    torn_records: int = 0  # torn journal tails (never committed; harmless)
    #: Bytes written straight to the PFS by the degraded direct-write
    #: fallback (unreachable segment owner). They bypass the journal, so
    #: only a CrashContext can account for them.
    fallback_bytes: int = 0
    lost_bytes: int = 0  # deposited to volatile memory, durable nowhere
    lost_extents: list[tuple[int, int]] = field(default_factory=list)
    journals: list[str] = field(default_factory=list)
    #: Owning job for multi-tenant runs (``None`` for solo fsck).
    job: "str | None" = None

    @property
    def clean(self) -> bool:
        """Every byte inside the committed eof is accounted for and
        matches its journal record. Lost/uncommitted bytes are *reported*
        separately — they are the expected cost of a crash, not
        corruption of the recovered image."""
        return self.torn_bytes == 0 and self.untracked_bytes == 0

    def summary(self) -> str:
        """One human-readable line."""
        state = "clean" if self.clean else "NOT CLEAN"
        jtag = f" [job {self.job}]" if self.job else ""
        return (
            f"fsck {self.name}{jtag}: {state} — epoch {self.committed_epoch} "
            f"(eof {self.eof}, file {self.file_size}b): "
            f"{self.committed_bytes} committed, {self.torn_bytes} torn, "
            f"{self.untracked_bytes} untracked; "
            f"{self.uncommitted_bytes}b/{self.uncommitted_records}r "
            f"uncommitted, {self.torn_records} torn records, "
            f"{self.fallback_bytes} fallback, {self.lost_bytes} lost"
        )


def _merge(extents: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Sorted, coalesced, non-empty intervals."""
    out: list[tuple[int, int]] = []
    for lo, hi in sorted(extents):
        if lo >= hi:
            continue
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def _subtract(
    base: list[tuple[int, int]], holes: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """``base`` minus ``holes`` (both interval lists)."""
    out: list[tuple[int, int]] = []
    for lo, hi in _merge(base):
        cur = lo
        for hlo, hhi in _merge(holes):
            if hhi <= cur or hlo >= hi:
                continue
            if hlo > cur:
                out.append((cur, hlo))
            cur = max(cur, hhi)
            if cur >= hi:
                break
        if cur < hi:
            out.append((cur, hi))
    return out


def fsck(
    pfs: "Pfs",
    name: str,
    *,
    context: Optional[CrashContext] = None,
    job: "str | None" = None,
) -> FsckReport:
    """Classify every byte of *name* against its journals (see module doc).

    ``job`` attributes the report (and any raised error) to one tenant of
    a shared PFS — see :func:`repro.crash.recover.recover`.
    """
    if not pfs.exists(name):
        raise tag_job(PfsError(f"fsck: no such file {name!r}"), job)
    data = pfs.lookup(name)
    committed, eof = (0, 0)
    if pfs.exists(commit_name(name)):
        committed, eof = committed_state(pfs.lookup(commit_name(name)).contents())
    report = FsckReport(
        name=name, committed_epoch=committed, eof=eof, file_size=data.size, job=job
    )

    commit_rows = []  # (epoch, journal name, record)
    for fname in sorted(pfs.list_files()):
        if not is_journal_file(fname, name):
            continue
        report.journals.append(fname)
        for rec in iter_records(pfs.lookup(fname).contents()):
            if rec.torn:
                report.torn_records += 1
            elif rec.epoch > committed:
                report.uncommitted_records += 1
                report.uncommitted_bytes += rec.nbytes
            else:
                commit_rows.append((rec.epoch, fname, rec))
    commit_rows.sort(key=lambda row: (row[0], row[1], row[2].gseg))

    # Build the expected image from committed records, later epochs last
    # (a re-dirtied segment is re-journaled; only the newest copy must
    # match the file). Without any journal state (``journal="off"``) the
    # per-byte classes don't apply — only context-based loss detection
    # can say anything about the file.
    journaled = bool(report.journals) or pfs.exists(commit_name(name))
    span = min(eof, data.size) if committed else (data.size if journaled else 0)
    expected = bytearray(span)
    covered = bytearray(span)
    for _epoch, _fname, rec in commit_rows:
        for i, (lo, hi) in enumerate(rec.extents):
            lo2, hi2 = max(lo, 0), min(hi, span)
            if lo2 >= hi2:
                continue
            piece = rec.piece(i)
            expected[lo2:hi2] = piece[lo2 - lo : hi2 - lo]
            covered[lo2:hi2] = b"\x01" * (hi2 - lo2)

    # Bytes the degraded direct-write fallback put straight in the file:
    # legitimately journal-free, but only the in-memory directory knows.
    fallback = bytearray(span)
    if context is not None and context.directory.segment_size > 0:
        seg = context.directory.segment_size
        for g, ranges in context.directory.fallback_ranges.items():
            for flo, fhi in ranges:
                lo2, hi2 = max(g * seg + flo, 0), min(g * seg + fhi, span)
                if lo2 < hi2:
                    fallback[lo2:hi2] = b"\x01" * (hi2 - lo2)

    actual = data.contents()[:span]
    for pos in range(span):
        if covered[pos]:
            if actual[pos] == expected[pos]:
                report.committed_bytes += 1
            else:
                report.torn_bytes += 1
        elif fallback[pos]:
            report.fallback_bytes += 1
        else:
            report.untracked_bytes += 1

    if context is not None:
        report.lost_bytes, report.lost_extents = _lost(report, context, covered)
    return report


def _lost(
    report: FsckReport, context: CrashContext, covered: bytearray
) -> tuple[int, list[tuple[int, int]]]:
    """Deposited-but-nowhere-durable extents, from the aborted run's
    in-memory directory.

    Data is *lost* when some rank deposited it into a level-2 slot
    (volatile memory) of a segment that was never written back
    (``dirty`` and not ``flushed``), and it is covered by neither a
    committed journal record nor a degraded direct PFS write
    (``fallback_ranges``). Only meaningful after an abort — a run that
    closed cleanly has flushed every dirty segment.
    """
    d = context.directory
    seg = d.segment_size
    if seg <= 0:
        return 0, []
    at_risk: list[tuple[int, int]] = []
    durable: list[tuple[int, int]] = [
        (pos, pos + 1) for pos in range(len(covered)) if covered[pos]
    ]
    for g in sorted(d.dirty - d.flushed):
        base = g * seg
        for disp, length, _src in d.deposited.get(g, ()):
            lo = base + disp
            hi = min(base + disp + length, d.eof)
            if lo < hi:
                at_risk.append((lo, hi))
        for flo, fhi in d.fallback_ranges.get(g, ()):
            durable.append((base + flo, base + fhi))
    lost = _subtract(at_risk, durable)
    return sum(hi - lo for lo, hi in lost), lost
