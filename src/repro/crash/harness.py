"""The crash-differential harness: kill a rank at every protocol step.

One *cell* of the matrix runs a fixed two-phase TCIO workload (phase 1
writes a low region, ``tcio_flush`` commits epoch 1, phase 2 writes a
disjoint higher region, ``tcio_close`` commits epoch 2), crashes one rank
at a chosen protocol step, recovers the surviving PFS image with
:func:`repro.crash.recover.recover`, and checks the result byte-for-byte
against a crash-free reference run:

* crash at ``pre-deposit`` / ``post-deposit`` / ``mid-flush`` /
  ``pre-commit`` (all during epoch 2, the last occurrence of the step)
  → the recovered file must equal the crash-free file truncated to the
  epoch-1 eof — phase 2 is gone, phase 1 is intact;
* crash at ``post-commit`` → epoch 2 committed first, so the recovered
  file must equal the full crash-free file.

Each cell also runs :func:`repro.crash.fsck.fsck` on the recovered image
and requires it *clean* (zero torn, zero untracked bytes).

Crashes are aimed deterministically: a crash-free *counting run* with an
idle :class:`~repro.faults.plan.FaultPlan` tallies how often the victim
rank reaches each step (``plan.step_hits``), and the armed run sets
``crash_after`` to that count — the last occurrence, which falls in the
close-time epoch. Same seed + same spec → same crash, every time.

A final ``journal="off"`` cell shows what the journal buys: the same
crash without it loses deposited bytes, and fsck (fed the aborted run's
in-memory directory as a :class:`~repro.crash.fsck.CrashContext`) must
detect and report them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.crash.fsck import CrashContext, FsckReport, fsck
from repro.crash.recover import RecoveryReport, recover

#: Every protocol step a crash point guards, in protocol order. The first
#: two bracket the level-1 deposit (they fire in any journal mode); the
#: last three exist only inside the epoched flush protocol.
STEPS = ("pre-deposit", "post-deposit", "mid-flush", "pre-commit", "post-commit")

#: Steps recovery discards phase 2 for (the crash lands before the
#: epoch-2 commit mark is durable).
ROLLBACK_STEPS = ("pre-deposit", "post-deposit", "mid-flush", "pre-commit")

SEGMENT = 64  # small segments: every rank owns several, deposits go remote
PER_RANK = 96  # per-rank bytes per phase; crosses a segment boundary


def _pattern(rank: int, phase: int, n: int) -> bytes:
    """Deterministic, rank/phase-distinct payload bytes."""
    start = (rank * 31 + phase * 101) % 251
    return bytes((start + i) % 251 + 1 for i in range(n))


def _make_config(nranks: int, journal: str, aggregation: str):
    from repro.tcio import TcioConfig

    total = 2 * nranks * PER_RANK
    base = TcioConfig.sized_for(total, nranks, SEGMENT)
    return replace(base, journal=journal, aggregation=aggregation)


def _make_main(name: str, config):
    """The two-phase workload body (one closure per run)."""
    from repro.tcio import TCIO_WRONLY, tcio_close, tcio_flush, tcio_open, tcio_write_at

    def main(env):
        nranks = env.size
        fh = yield from tcio_open(env, name, TCIO_WRONLY, config)
        yield from tcio_write_at(
            fh, env.rank * PER_RANK, _pattern(env.rank, 1, PER_RANK)
        )
        yield from tcio_flush(fh)  # epoch 1: phase-1 region durable
        base = nranks * PER_RANK
        yield from tcio_write_at(
            fh, base + env.rank * PER_RANK, _pattern(env.rank, 2, PER_RANK)
        )
        yield from tcio_close(fh)  # epoch 2: phase-2 region durable

    return main


def _run(name, config, nranks, cores_per_node, faults=None):
    from repro.experiments.topo_ablation import ablation_cluster
    from repro.simmpi import run_mpi

    return run_mpi(
        nranks,
        _make_main(name, config),
        cluster=ablation_cluster(nranks, cores_per_node),
        faults=faults,
    )


@dataclass
class CrashCell:
    """One (step, aggregation mode) differential result."""

    step: str
    aggregation: str
    journal: str
    ok: bool
    detail: str
    crash_after: int
    aborted: bool
    recovery: Optional[RecoveryReport] = None
    fsck: Optional[FsckReport] = None

    def summary(self) -> str:
        state = "ok" if self.ok else "FAIL"
        return (
            f"crash@{self.step:<12} {self.aggregation:<4} "
            f"journal={self.journal}: {state} — {self.detail}"
        )


@dataclass
class CrashMatrixResult:
    """All cells of one campaign."""

    nranks: int
    seed: int
    cells: list[CrashCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def render(self) -> str:
        lines = [f"crash matrix: {self.nranks} ranks, seed {self.seed}"]
        lines += ["  " + cell.summary() for cell in self.cells]
        lines.append(f"  => {'all clean' if self.ok else 'FAILURES'}")
        return "\n".join(lines)


def _count_step_hits(config, nranks, cores_per_node, seed, step, victim) -> int:
    """Crash-free counting run: how often *victim* reaches *step*."""
    from repro.faults import FaultPlan, FaultSpec

    plan = FaultPlan(FaultSpec(), seed, scope="crash-count")
    _run("count.dat", config, nranks, cores_per_node, faults=plan)
    return plan.step_hits[(step, victim)]


def run_crash_cell(
    step: str,
    *,
    aggregation: str = "flat",
    nranks: int = 4,
    cores_per_node: int = 2,
    seed: int = 7,
    victim: int = 1,
    reference: Optional[bytes] = None,
) -> CrashCell:
    """Run one journaled crash-differential cell (see module doc)."""
    from repro.faults import FaultPlan, FaultSpec

    name = "crash.dat"
    config = _make_config(nranks, "epoch", aggregation)
    if reference is None:
        reference = crash_free_reference(
            aggregation=aggregation, nranks=nranks, cores_per_node=cores_per_node
        )
    hits = _count_step_hits(config, nranks, cores_per_node, seed, step, victim)
    if hits == 0:
        return CrashCell(
            step, aggregation, "epoch", False,
            f"rank {victim} never reaches step", 0, False,
        )

    spec = FaultSpec(crash_rank=victim, crash_step=step, crash_after=hits)
    plan = FaultPlan(spec, seed, scope="crash")
    result = _run(name, config, nranks, cores_per_node, faults=plan)
    if result.aborted is None:
        return CrashCell(
            step, aggregation, "epoch", False, "job did not abort", hits, False
        )

    report = recover(result.pfs, name)
    check = fsck(
        result.pfs, name, context=CrashContext.from_world(result.world, name)
    )
    eof_phase1 = nranks * PER_RANK
    expected = reference[:eof_phase1] if step in ROLLBACK_STEPS else reference
    recovered = result.pfs.lookup(name).contents()
    ok = recovered == expected and check.clean
    if recovered != expected:
        detail = (
            f"recovered image mismatch ({len(recovered)}b vs "
            f"{len(expected)}b expected)"
        )
    elif not check.clean:
        detail = check.summary()
    else:
        detail = (
            f"epoch {report.committed_epoch} recovered, "
            f"{report.replayed_bytes}b replayed, "
            f"{report.skipped_uncommitted} uncommitted + "
            f"{report.torn_records} torn discarded, fsck clean"
        )
    return CrashCell(
        step, aggregation, "epoch", ok, detail, hits, True,
        recovery=report, fsck=check,
    )


def run_survive_cell(
    step: str,
    *,
    nranks: int = 4,
    cores_per_node: int = 2,
    seed: int = 7,
    victim: int = 1,
    reference: Optional[bytes] = None,
) -> CrashCell:
    """One survive-and-complete cell: same crash, ``TcioConfig.ft`` on.

    The differential flips: instead of abort→recover→compare, the job
    must *complete* (``aborted is None``) with the victim dead, the file
    must match the crash-free reference everywhere outside the victim's
    uncommitted region (inside it, a byte is either the reference value
    or zero — the victim's level-1-only data is legitimately lost), and
    fsck must come back clean with no offline recovery pass at all. A
    ``post-commit`` crash demands full byte-identity: the victim's
    records were committed, so the survivors replay them.
    """
    from repro.faults import FaultPlan, FaultSpec

    name = "survive.dat"
    config = replace(_make_config(nranks, "epoch", "flat"), ft=True)
    if reference is None:
        reference = crash_free_reference(
            aggregation="flat", nranks=nranks, cores_per_node=cores_per_node
        )
    hits = _count_step_hits(config, nranks, cores_per_node, seed, step, victim)
    if hits == 0:
        return CrashCell(
            step, "flat", "epoch+ft", False,
            f"rank {victim} never reaches step", 0, False,
        )

    spec = FaultSpec(crash_rank=victim, crash_step=step, crash_after=hits)
    plan = FaultPlan(spec, seed, scope="crash")
    result = _run(name, config, nranks, cores_per_node, faults=plan)
    if result.aborted is not None:
        return CrashCell(
            step, "flat", "epoch+ft", False,
            f"FT run aborted anyway: {result.aborted}", hits, True,
        )
    if result.dead_ranks != {victim}:
        return CrashCell(
            step, "flat", "epoch+ft", False,
            f"unexpected dead set {sorted(result.dead_ranks)}", hits, False,
        )
    check = fsck(
        result.pfs, name, context=CrashContext.from_world(result.world, name)
    )
    survived = result.pfs.lookup(name).contents()
    base = nranks * PER_RANK
    lo, hi = base + victim * PER_RANK, base + (victim + 1) * PER_RANK
    strict = step == "post-commit"
    bad = -1
    if len(survived) != len(reference):
        bad = min(len(survived), len(reference))
    else:
        for i in range(len(reference)):
            if survived[i] == reference[i]:
                continue
            if not strict and lo <= i < hi and survived[i] == 0:
                continue  # the victim's uncommitted data: lost, not corrupt
            bad = i
            break
    survives = int(result.trace.get("tcio.ft.survives").total)
    ok = bad < 0 and check.clean and survives >= 1
    if bad >= 0:
        detail = (
            f"survivor image diverges at byte {bad} "
            f"({len(survived)}b vs {len(reference)}b reference)"
        )
    elif not check.clean:
        detail = check.summary()
    elif survives < 1:
        detail = "run completed but no survive round was recorded"
    else:
        lost = sum(
            1 for i in range(lo, min(hi, len(survived))) if survived[i] == 0
        )
        detail = (
            f"completed degraded ({survives} survive round(s)), "
            f"{lost}b of the victim's uncommitted data lost, fsck clean"
        )
    return CrashCell(
        step, "flat", "epoch+ft", ok, detail, hits, False, fsck=check,
    )


def run_survive_matrix(
    *,
    steps=STEPS,
    nranks: int = 4,
    cores_per_node: int = 2,
    seed: int = 7,
    victim: int = 1,
) -> CrashMatrixResult:
    """The survive column: every protocol step, FT on, job must complete."""
    out = CrashMatrixResult(nranks=nranks, seed=seed)
    reference = crash_free_reference(
        aggregation="flat", nranks=nranks, cores_per_node=cores_per_node
    )
    for step in steps:
        out.cells.append(
            run_survive_cell(
                step, nranks=nranks, cores_per_node=cores_per_node,
                seed=seed, victim=victim, reference=reference,
            )
        )
    return out


def run_journal_off_cell(
    *,
    aggregation: str = "flat",
    nranks: int = 4,
    cores_per_node: int = 2,
    seed: int = 7,
    victim: int = 1,
) -> CrashCell:
    """The control cell: same crash, no journal — fsck must report loss."""
    from repro.faults import FaultPlan, FaultSpec

    name = "crash.dat"
    step = "post-deposit"  # the only close-time step that exists unjournaled
    config = _make_config(nranks, "off", aggregation)
    hits = _count_step_hits(config, nranks, cores_per_node, seed, step, victim)
    if hits == 0:
        return CrashCell(
            step, aggregation, "off", False,
            f"rank {victim} never reaches step", 0, False,
        )
    spec = FaultSpec(crash_rank=victim, crash_step=step, crash_after=hits)
    plan = FaultPlan(spec, seed, scope="crash")
    result = _run(name, config, nranks, cores_per_node, faults=plan)
    if result.aborted is None:
        return CrashCell(
            step, aggregation, "off", False, "job did not abort", hits, False
        )
    check = fsck(
        result.pfs, name, context=CrashContext.from_world(result.world, name)
    )
    ok = check.lost_bytes > 0
    detail = (
        f"{check.lost_bytes}b lost detected (no journal to recover from)"
        if ok
        else "expected lost bytes, fsck found none"
    )
    return CrashCell(step, aggregation, "off", ok, detail, hits, True, fsck=check)


def crash_free_reference(
    *, aggregation: str = "flat", nranks: int = 4, cores_per_node: int = 2
) -> bytes:
    """The full crash-free file image (journaled run, same workload)."""
    config = _make_config(nranks, "epoch", aggregation)
    result = _run("ref.dat", config, nranks, cores_per_node)
    if result.aborted is not None:
        raise RuntimeError(f"reference run aborted: {result.aborted}")
    return result.pfs.lookup("ref.dat").contents()


#: Server-mode protocol steps a delegate can die at: the service-loop
#: steps plus the journaled commit bracket that fires inside the
#: delegate's own TCIO flush. (``srv-close`` fires after the last epoch
#: committed, so like ``post-commit`` it must recover the full image.)
SERVER_STEPS = (
    "srv-admit", "srv-apply", "srv-flush", "pre-commit",
    "post-commit", "srv-close",
)

#: Server-mode steps whose last occurrence lands before the final
#: epoch's commit mark — recovery must roll back to the prior epoch.
SERVER_ROLLBACK_STEPS = ("srv-admit", "srv-apply", "srv-flush", "pre-commit")


def run_server_crash_cell(
    step: str,
    *,
    nclients: int = 6,
    nranks: int = 6,
    cores_per_node: int = 3,
    seed: int = 7,
    victim: Optional[int] = None,
    trace=None,
) -> CrashCell:
    """Kill a delegate at one service-loop (or commit) step; recover.

    Mirrors :func:`run_crash_cell` for ``repro.ioserver``: a crash-free
    counting run tallies how often the victim delegate reaches *step*,
    the armed run crashes there (last occurrence — during or after the
    final epoch), and the recovered image must equal the analytic
    :func:`~repro.ioserver.trace.expected_image` — full for post-commit
    steps, the prior epoch's prefix for rollback steps. fsck must come
    back clean and nothing may be flagged ``data_at_risk``.
    """
    from repro.faults import FaultPlan, FaultSpec
    from repro.ioserver import (
        IoServerConfig, expected_image, generate_trace, plan_for, run_ioserver,
    )

    if trace is None:
        # Writes only (a read phase would push the last srv-* hits past
        # every commit, degenerating the rollback cells) and dense (fsck
        # cannot tell a sparse hole from an untracked byte).
        trace = generate_trace(
            seed, nclients, epochs=2, writes_per_epoch=3,
            reads_per_client=0, dense=True,
        )
    config = IoServerConfig()
    placement = plan_for(trace, nranks, cores_per_node, config)
    if victim is None:
        victim = placement.delegates[-1]
    if victim not in placement.delegates:
        raise ValueError(f"victim rank {victim} is not a delegate")
    name = trace.file_name

    plan = FaultPlan(FaultSpec(), seed, scope="crash-count")
    run_ioserver(
        trace, nranks=nranks, cores_per_node=cores_per_node,
        config=config, faults=plan,
    )
    hits = plan.step_hits[(step, victim)]
    if hits == 0:
        return CrashCell(
            step, "server", "epoch", False,
            f"delegate {victim} never reaches step", 0, False,
        )

    spec = FaultSpec(crash_rank=victim, crash_step=step, crash_after=hits)
    armed = FaultPlan(spec, seed, scope="crash")
    result = run_ioserver(
        trace, nranks=nranks, cores_per_node=cores_per_node,
        config=config, faults=armed,
    )
    if result.aborted is None:
        return CrashCell(
            step, "server", "epoch", False, "job did not abort", hits, False
        )

    pfs, world = result.mpi.pfs, result.mpi.world
    report = recover(pfs, name)
    check = fsck(pfs, name, context=CrashContext.from_world(world, name))
    rollback = step in SERVER_ROLLBACK_STEPS
    expected = expected_image(trace, epochs=trace.epochs - 1 if rollback else None)
    recovered = pfs.lookup(name).contents() if pfs.exists(name) else b""
    at_risk = result.mpi.trace.get("faults.data_at_risk").total
    ok = recovered == expected and check.clean and at_risk == 0
    if recovered != expected:
        detail = (
            f"recovered image mismatch ({len(recovered)}b vs "
            f"{len(expected)}b expected)"
        )
    elif not check.clean:
        detail = check.summary()
    elif at_risk:
        detail = f"{int(at_risk)}b flagged data_at_risk in a journaled crash"
    else:
        detail = (
            f"epoch {report.committed_epoch} recovered, "
            f"{report.replayed_bytes}b replayed, "
            f"{report.skipped_uncommitted} uncommitted + "
            f"{report.torn_records} torn discarded, fsck clean"
        )
    return CrashCell(
        step, "server", "epoch", ok, detail, hits, True,
        recovery=report, fsck=check,
    )


def run_server_crash_matrix(
    *,
    steps=SERVER_STEPS,
    nclients: int = 6,
    nranks: int = 6,
    cores_per_node: int = 3,
    seed: int = 7,
) -> CrashMatrixResult:
    """The server-mode campaign: one cell per service-loop step."""
    from repro.ioserver import generate_trace

    trace = generate_trace(
        seed, nclients, epochs=2, writes_per_epoch=3,
        reads_per_client=0, dense=True,
    )
    out = CrashMatrixResult(nranks=nranks, seed=seed)
    for step in steps:
        out.cells.append(
            run_server_crash_cell(
                step, nclients=nclients, nranks=nranks,
                cores_per_node=cores_per_node, seed=seed, trace=trace,
            )
        )
    return out


def run_server_survive_cell(
    step: str,
    *,
    nclients: int = 6,
    nranks: int = 6,
    cores_per_node: int = 3,
    seed: int = 7,
    victim: Optional[int] = None,
    trace=None,
) -> CrashCell:
    """Kill a delegate at one service-loop step with failover armed.

    The survive column of the server matrix: same aimed crash as
    :func:`run_server_crash_cell`, but ``IoServerConfig.failover`` is on,
    so the job must *complete* — the dead delegate's clients redirect to
    the standby and replay their acked-but-uncommitted writes, the
    surviving delegates shrink the shared TCIO handle and flush on.
    Unlike bare-TCIO survival (:func:`run_survive_cell`), client-side
    replay means **nothing** is legitimately lost: the final image must
    equal the full analytic :func:`~repro.ioserver.trace.expected_image`
    byte-for-byte at *every* step, with fsck clean and no offline
    recovery pass at all.
    """
    from repro.faults import FaultPlan, FaultSpec
    from repro.ioserver import (
        IoServerConfig, expected_image, generate_trace, plan_for, run_ioserver,
    )

    if trace is None:
        trace = generate_trace(
            seed, nclients, epochs=2, writes_per_epoch=3,
            reads_per_client=0, dense=True,
        )
    config = IoServerConfig(failover=True)
    placement = plan_for(trace, nranks, cores_per_node, config)
    if victim is None:
        victim = placement.delegates[-1]
    if victim not in placement.delegates:
        raise ValueError(f"victim rank {victim} is not a delegate")
    name = trace.file_name

    plan = FaultPlan(FaultSpec(), seed, scope="crash-count")
    run_ioserver(
        trace, nranks=nranks, cores_per_node=cores_per_node,
        config=config, faults=plan,
    )
    hits = plan.step_hits[(step, victim)]
    if hits == 0:
        return CrashCell(
            step, "server", "epoch+ft", False,
            f"delegate {victim} never reaches step", 0, False,
        )

    spec = FaultSpec(crash_rank=victim, crash_step=step, crash_after=hits)
    armed = FaultPlan(spec, seed, scope="crash")
    result = run_ioserver(
        trace, nranks=nranks, cores_per_node=cores_per_node,
        config=config, faults=armed,
    )
    if result.aborted is not None:
        return CrashCell(
            step, "server", "epoch+ft", False,
            f"failover run aborted anyway: {result.aborted}", hits, True,
        )
    if result.mpi.dead_ranks != {victim}:
        return CrashCell(
            step, "server", "epoch+ft", False,
            f"unexpected dead set {sorted(result.mpi.dead_ranks)}", hits, False,
        )
    pfs, world = result.mpi.pfs, result.mpi.world
    check = fsck(pfs, name, context=CrashContext.from_world(world, name))
    expected = expected_image(trace)
    survived = pfs.lookup(name).contents() if pfs.exists(name) else b""
    survives = int(result.mpi.trace.get("tcio.ft.survives").total)
    redirects = int(result.mpi.trace.get("ioserver.failover.redirects").total)
    ok = survived == expected and check.clean and survives >= 1
    if survived != expected:
        bad = next(
            (
                i
                for i in range(min(len(survived), len(expected)))
                if survived[i] != expected[i]
            ),
            min(len(survived), len(expected)),
        )
        detail = (
            f"survivor image diverges at byte {bad} "
            f"({len(survived)}b vs {len(expected)}b expected)"
        )
    elif not check.clean:
        detail = check.summary()
    elif survives < 1:
        detail = "run completed but no survive round was recorded"
    else:
        replayed = int(
            result.mpi.trace.get("ioserver.failover.replayed_bytes").total
        )
        detail = (
            f"completed degraded ({survives} survive round(s), "
            f"{redirects} redirect(s), {replayed}b replayed by clients), "
            f"image exact, fsck clean"
        )
    return CrashCell(
        step, "server", "epoch+ft", ok, detail, hits, False, fsck=check,
    )


def run_server_survive_matrix(
    *,
    steps=SERVER_STEPS,
    nclients: int = 6,
    nranks: int = 6,
    cores_per_node: int = 3,
    seed: int = 7,
) -> CrashMatrixResult:
    """The server survive column: every step, failover on, zero loss."""
    from repro.ioserver import generate_trace

    trace = generate_trace(
        seed, nclients, epochs=2, writes_per_epoch=3,
        reads_per_client=0, dense=True,
    )
    out = CrashMatrixResult(nranks=nranks, seed=seed)
    for step in steps:
        out.cells.append(
            run_server_survive_cell(
                step, nclients=nclients, nranks=nranks,
                cores_per_node=cores_per_node, seed=seed, trace=trace,
            )
        )
    return out


def run_crash_matrix(
    *,
    steps=STEPS,
    modes=("flat", "node"),
    nranks: int = 4,
    cores_per_node: int = 2,
    seed: int = 7,
    victim: int = 1,
    include_journal_off: bool = True,
) -> CrashMatrixResult:
    """The full campaign: every step × every aggregation mode."""
    out = CrashMatrixResult(nranks=nranks, seed=seed)
    for mode in modes:
        reference = crash_free_reference(
            aggregation=mode, nranks=nranks, cores_per_node=cores_per_node
        )
        for step in steps:
            out.cells.append(
                run_crash_cell(
                    step,
                    aggregation=mode,
                    nranks=nranks,
                    cores_per_node=cores_per_node,
                    seed=seed,
                    victim=victim,
                    reference=reference,
                )
            )
    if include_journal_off:
        out.cells.append(
            run_journal_off_cell(
                nranks=nranks, cores_per_node=cores_per_node,
                seed=seed, victim=victim,
            )
        )
    return out
