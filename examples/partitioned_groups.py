"""Partitioned collective I/O: independent TCIO groups via MPI_Comm_split.

Section II discusses ParColl, which fights the "collective wall" by
splitting processes and files into disjoint groups that perform their
aggregation independently. TCIO composes with that idea out of the box:
every group runs its own transparent collective I/O on its own file over a
sub-communicator — no code changes in the library.

This example splits 16 ranks into 4 groups, each writing its own
interleaved shared file through TCIO, then verifies all four files and
compares against one global 16-rank group. Run with::

    python examples/partitioned_groups.py
"""

from __future__ import annotations

import numpy as np

from repro.simmpi import comm_split, run_mpi
from repro.simmpi.mpi import RankEnv
from repro.tcio import TCIO_WRONLY, TcioConfig, TcioFile
from repro.util.units import MIB

NRANKS = 16
GROUPS = 4
BLOCK = 256
BLOCKS_PER_RANK = 32


def payload(world_rank: int, i: int) -> bytes:
    return bytes([(world_rank * 37 + i * 11) % 251 + 1]) * BLOCK


def write_group_file(env: RankEnv, comm, name: str):
    """The Fig. 2 interleaved pattern inside one (sub)communicator."""
    total = BLOCK * BLOCKS_PER_RANK * comm.size
    cfg = TcioConfig.sized_for(total, comm.size, env.pfs.spec.stripe_size)
    fh = yield from TcioFile.open(env, name, TCIO_WRONLY, cfg, comm=comm)
    world_rank = comm.world_rank(comm.rank)
    for i in range(BLOCKS_PER_RANK):
        offset = (i * comm.size + comm.rank) * BLOCK
        yield from fh.write_at(offset, payload(world_rank, i))
    yield from fh.close()


def partitioned(env: RankEnv):
    group_id = env.rank % GROUPS
    sub = yield from comm_split(env.comm, color=group_id)
    yield from write_group_file(env, sub, f"group{group_id}.dat")


def monolithic(env: RankEnv):
    yield from write_group_file(env, env.comm, "global.dat")


def expected_group_file(group_id: int) -> bytes:
    members = [r for r in range(NRANKS) if r % GROUPS == group_id]
    out = bytearray()
    for i in range(BLOCKS_PER_RANK):
        for world_rank in members:
            out += payload(world_rank, i)
    return bytes(out)


def main() -> None:
    part = run_mpi(NRANKS, partitioned)
    for g in range(GROUPS):
        data = part.pfs.lookup(f"group{g}.dat").contents()
        assert data == expected_group_file(g), f"group {g} mismatch"
    mono = run_mpi(NRANKS, monolithic)

    bytes_total = BLOCK * BLOCKS_PER_RANK * NRANKS
    print(f"{NRANKS} ranks, {bytes_total / MIB:.2f} MB total")
    print(
        f"partitioned ({GROUPS} groups, 4 files): "
        f"{bytes_total / part.elapsed / MIB:9.1f} MB/s   all files verified"
    )
    print(
        f"monolithic  (1 group, 1 file):          "
        f"{bytes_total / mono.elapsed / MIB:9.1f} MB/s"
    )


if __name__ == "__main__":
    main()
