"""Figure 1's motivation: a 3D computing volume mapped to one file.

"Many applications need to map their multidimensional computing volume to
one-dimensional file blocks in the eventual file order before performing
I/O" — SCEC slices its volume into slabs, S3D into cubes; written cell by
cell in x,y,z order each process owns many small noncontiguous blocks.

This example decomposes a 16x16x16 volume into slabs (one per process) and
writes the canonical x,y,z-ordered file three ways:

* OCIO: an ``MPI_Type_create_subarray`` file view + one collective write,
* TCIO: plain positional writes of each contiguous run — no view at all,
* vanilla MPI-IO: one independent write per run.

All three files are verified identical against the numpy reference. Run::

    python examples/volume_decomposition.py
"""

from __future__ import annotations

import numpy as np

from repro.mpiio import MpiFile
from repro.simmpi import DOUBLE, Subarray, run_mpi
from repro.tcio import TCIO_WRONLY, TcioConfig, TcioFile
from repro.util.units import MIB

N = 16  # volume is N^3 cells of one double each
NRANKS = 4  # each process owns an N/NRANKS-thick slab in the *middle* axis


def local_slab(rank: int) -> np.ndarray:
    """The rank's slab of cell values (deterministic, verifiable)."""
    thickness = N // NRANKS
    x, y, z = np.meshgrid(
        np.arange(N),
        np.arange(rank * thickness, (rank + 1) * thickness),
        np.arange(N),
        indexing="ij",
    )
    return (x * N * N + y * N + z).astype(np.float64)


def reference_volume() -> bytes:
    """The full volume in canonical x,y,z file order."""
    x, y, z = np.meshgrid(np.arange(N), np.arange(N), np.arange(N), indexing="ij")
    return (x * N * N + y * N + z).astype(np.float64).tobytes()


def write_ocio(env):
    """Subarray file view + collective write: Program-2-style."""
    thickness = N // NRANKS
    filetype = Subarray(
        sizes=[N, N, N],
        subsizes=[N, thickness, N],
        starts=[0, env.rank * thickness, 0],
        base=DOUBLE,
    )
    fh = yield from MpiFile.open(env, "volume_ocio.dat")
    yield from fh.set_view(0, DOUBLE, filetype)
    yield from fh.write_all(local_slab(env.rank))
    yield from fh.close()


def write_tcio(env):
    """Positional writes of each contiguous x-row run: no view needed."""
    thickness = N // NRANKS
    slab = local_slab(env.rank)
    cfg = TcioConfig.sized_for(N * N * N * 8, env.size, env.pfs.spec.stripe_size)
    fh = yield from TcioFile.open(env, "volume_tcio.dat", TCIO_WRONLY, cfg)
    for x in range(N):
        for local_y in range(thickness):
            y = env.rank * thickness + local_y
            offset = (x * N * N + y * N) * 8  # start of this z-run
            yield from fh.write_at(offset, slab[x, local_y, :])
    yield from fh.close()


def write_vanilla(env):
    thickness = N // NRANKS
    slab = local_slab(env.rank)
    fh = yield from MpiFile.open(env, "volume_mpiio.dat")
    for x in range(N):
        for local_y in range(thickness):
            y = env.rank * thickness + local_y
            yield from fh.write_at((x * N * N + y * N) * 8, slab[x, local_y, :])
    yield from fh.close()


def main() -> None:
    expected = reference_volume()
    print(
        f"volume: {N}^3 doubles ({len(expected) / MIB:.2f} MB), "
        f"{NRANKS} slab-decomposed processes\n"
    )
    for name, writer, fname in (
        ("OCIO (subarray view + write_all)", write_ocio, "volume_ocio.dat"),
        ("TCIO (plain positional writes)", write_tcio, "volume_tcio.dat"),
        ("vanilla MPI-IO (independent)", write_vanilla, "volume_mpiio.dat"),
    ):
        result = run_mpi(NRANKS, writer)
        data = result.pfs.lookup(fname).contents()
        status = "verified" if data == expected else "MISMATCH"
        rate = len(expected) / result.elapsed / MIB
        print(f"{name:36s} {rate:9.1f} MB/s   file {status}")


if __name__ == "__main__":
    main()
