"""Quickstart: transparent collective I/O in a dozen lines per rank.

Four simulated MPI ranks write interleaved records to one shared file with
plain POSIX-like calls — no file views, no derived datatypes, no combine
buffers — then read them back lazily. Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.simmpi import run_mpi
from repro.tcio import (
    TCIO_RDONLY,
    TCIO_WRONLY,
    tcio_close,
    tcio_fetch,
    tcio_open,
    tcio_read_at,
    tcio_write_at,
)

NRANKS = 4
RECORDS_PER_RANK = 8
RECORD_BYTES = 64


def record_payload(rank: int, i: int) -> bytes:
    """A recognizable record: rank and index repeated."""
    return np.full(RECORD_BYTES // 8, rank * 1000 + i, dtype=np.int64).tobytes()


def main(env):
    rank, nranks = env.rank, env.size

    # ---- write: each rank drops its records round-robin in the file ----
    # Rank programs are coroutines: every blocking call is a `yield from`.
    # The collective close drains level-2 buffers to the file system.
    fh = yield from tcio_open(env, "quickstart.dat", TCIO_WRONLY)
    for i in range(RECORDS_PER_RANK):
        offset = (i * nranks + rank) * RECORD_BYTES
        yield from tcio_write_at(fh, offset, record_payload(rank, i))
    yield from tcio_close(fh)

    # ---- read: lazy records, fetched in one shot -----------------------
    dests = []
    fh = yield from tcio_open(env, "quickstart.dat", TCIO_RDONLY)
    for i in range(RECORDS_PER_RANK):
        offset = (i * nranks + rank) * RECORD_BYTES
        buf = bytearray(RECORD_BYTES)
        yield from tcio_read_at(fh, offset, buf)  # records metadata only
        dests.append((i, buf))
    yield from tcio_fetch(fh)  # data actually moves here
    yield from tcio_close(fh)

    for i, buf in dests:
        assert bytes(buf) == record_payload(rank, i), f"rank {rank} record {i}"
    return f"rank {rank}: {RECORDS_PER_RANK} records verified"


if __name__ == "__main__":
    result = run_mpi(NRANKS, main)
    for line in result.returns:
        print(line)
    f = result.pfs.lookup("quickstart.dat")
    print(f"shared file: {f.size} bytes on a {f.layout.stripe_count}-OST layout")
    print(f"simulated wall time: {result.elapsed * 1e6:.1f} us")
