"""The paper's Fig. 2 workload through all three I/O paths.

Each of 16 processes owns an int array and a double array; same-index
elements interleave into 12-byte blocks placed round-robin in one shared
file. The example runs the workload through OCIO (Program 2), TCIO
(Program 3) and vanilla independent MPI-IO, verifies the file is
byte-identical each time, and prints write/read throughput. Run with::

    python examples/interleaved_arrays.py
"""

from __future__ import annotations

from repro.bench import BenchConfig, Method, run_benchmark
from repro.util.units import MIB

NRANKS = 16
LEN_ARRAY = 512  # elements per array per process


def main() -> None:
    print(
        f"workload: {NRANKS} procs x 2 arrays (int32, float64) x "
        f"{LEN_ARRAY} elements -> shared file of "
        f"{NRANKS * LEN_ARRAY * 12 / MIB:.2f} MB\n"
    )
    print(f"{'method':8s} {'write MB/s':>12s} {'read MB/s':>12s}  notes")
    for method in (Method.OCIO, Method.TCIO, Method.MPIIO):
        cfg = BenchConfig(
            method=method,
            num_arrays=2,
            type_codes="i,d",
            len_array=LEN_ARRAY,
            size_access=1,
            nprocs=NRANKS,
            file_name=f"interleaved_{method.name}.dat",
        )
        result = run_benchmark(cfg)  # verifies file contents byte-exactly
        note = {
            Method.OCIO: "combine buffer + file view + write_all",
            Method.TCIO: "plain tcio_write_at calls",
            Method.MPIIO: "one independent write per block",
        }[method]
        print(
            f"{method.name:8s} {result.write_throughput / MIB:12.1f} "
            f"{result.read_throughput / MIB:12.1f}  {note}"
        )
    print("\nall three shared files verified byte-identical to the reference")


if __name__ == "__main__":
    main()
