"""ART cosmology snapshots: dump and restart a forest of dynamic FTTs.

Builds the Table IV workload at reduced size (normal-distributed segment
lengths, round-robin over ranks), serializes every fully-threaded tree in
the self-describing Fig. 8 record format, and compares TCIO against vanilla
MPI-IO — the case where classic collective I/O cannot even be applied,
because each tree is a run of many small arrays of dynamic sizes. Restart
re-reads every record and verifies tree-by-tree equality. Run with::

    python examples/cosmology_art.py
"""

from __future__ import annotations

from repro.art import ArtConfig, ArtIoMethod, ArtWorkload, run_art
from repro.art.layout import FttRecordLayout
from repro.util.units import MIB

NRANKS = 8
SEGMENTS = 48


def main() -> None:
    workload = ArtWorkload(n_segments=SEGMENTS, cell_scale=64)
    layout = FttRecordLayout()
    sample = workload.build_tree(0)
    print(
        f"workload: {SEGMENTS} FTT segments over {NRANKS} ranks; sample tree: "
        f"depth {sample.depth}, {sample.total_cells} cells, "
        f"{layout.array_count(sample)} arrays, "
        f"{layout.record_nbytes(sample)} bytes"
    )
    print(f"{'method':8s} {'dump MB/s':>12s} {'restart MB/s':>14s} {'snapshot':>10s}")
    results = {}
    for method in (ArtIoMethod.TCIO, ArtIoMethod.MPIIO):
        cfg = ArtConfig(
            workload=workload,
            method=method,
            nprocs=NRANKS,
            file_name=f"art_{method.value}.dat",
            verify=True,  # restart checks tree equality against the originals
        )
        res = run_art(cfg)
        results[method] = res
        print(
            f"{method.value:8s} {res.dump_throughput / MIB:12.2f} "
            f"{res.restart_throughput / MIB:14.2f} "
            f"{res.snapshot_bytes / 1024:9.1f}K"
        )
    speedup_w = results[ArtIoMethod.TCIO].dump_throughput / results[
        ArtIoMethod.MPIIO
    ].dump_throughput
    speedup_r = results[ArtIoMethod.TCIO].restart_throughput / results[
        ArtIoMethod.MPIIO
    ].restart_throughput
    print(
        f"\nTCIO speedup over vanilla MPI-IO: {speedup_w:.1f}x write, "
        f"{speedup_r:.1f}x read (all restarts verified)"
    )


if __name__ == "__main__":
    main()
